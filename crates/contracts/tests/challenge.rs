//! End-to-end tests for the submit/challenge extension: representative
//! submission, challenge window, and security-deposit penalties.

use sc_chain::{Testnet, Wallet};
use sc_contracts::challenge::{
    security_deposit, stake, ChallengeContracts, CHALLENGE_DEPLOYED_ADDR_SLOT,
};
use sc_contracts::{BetSecrets, Timeline};
use sc_crypto::ecdsa::PrivateKey;
use sc_crypto::keccak256;
use sc_primitives::{ether, Address, U256};

const WINDOW: u64 = 1800;

struct Setup {
    net: Testnet,
    alice: Wallet,
    bob: Wallet,
    cc: ChallengeContracts,
    onchain: Address,
    bytecode: Vec<u8>,
    secrets: BetSecrets,
}

fn sign(key: &PrivateKey, code: &[u8]) -> sc_crypto::Signature {
    key.sign(keccak256(code))
}

/// Deploys the challenge contract, makes both deposits, and moves the
/// clock past T2 so results can be submitted.
fn setup() -> Setup {
    let mut net = Testnet::new();
    let alice = net.funded_wallet("alice", ether(1000));
    let bob = net.funded_wallet("bob", ether(1000));
    let tl = Timeline::starting_at(net.now(), 3600);
    let mut secrets = BetSecrets {
        secret_a: U256::from_u64(5),
        secret_b: U256::from_u64(6),
        weight: 32,
    };
    while !secrets.winner_is_bob() {
        secrets.secret_a = secrets.secret_a.wrapping_add(U256::ONE);
    }
    let cc = ChallengeContracts::new();
    let onchain = net
        .deploy(
            &alice,
            cc.onchain_initcode(alice.address, bob.address, tl, WINDOW),
            U256::ZERO,
            7_000_000,
        )
        .unwrap()
        .contract_address
        .expect("challenge contract deploys");
    let pay = stake().wrapping_add(security_deposit());
    for w in [&alice, &bob] {
        let r = net.execute(w, onchain, pay, cc.deposit(), 400_000).unwrap();
        assert!(r.success, "deposit: {:?}", r.failure);
    }
    let bytecode = cc.offchain_initcode(alice.address, bob.address, secrets);
    // Past T2.
    let now = net.now();
    net.advance_time(tl.t2 - now + 60);
    Setup {
        net,
        alice,
        bob,
        cc,
        onchain,
        bytecode,
        secrets,
    }
}

#[test]
fn deposit_requires_stake_plus_security() {
    let mut net = Testnet::new();
    let alice = net.funded_wallet("alice", ether(10));
    let bob = Wallet::from_seed("bob");
    let tl = Timeline::starting_at(net.now(), 3600);
    let cc = ChallengeContracts::new();
    let onchain = net
        .deploy(
            &alice,
            cc.onchain_initcode(alice.address, bob.address, tl, WINDOW),
            U256::ZERO,
            7_000_000,
        )
        .unwrap()
        .contract_address
        .unwrap();
    // Bare 1 ether (no security deposit) is rejected.
    let r = net
        .execute(&alice, onchain, ether(1), cc.deposit(), 400_000)
        .unwrap();
    assert!(!r.success, "stake without security deposit rejected");
    let r = net
        .execute(
            &alice,
            onchain,
            stake().wrapping_add(security_deposit()),
            cc.deposit(),
            400_000,
        )
        .unwrap();
    assert!(r.success);
}

#[test]
fn truthful_submission_finalizes_after_window() {
    let mut s = setup();
    assert!(s.secrets.winner_is_bob());
    // Bob (the true winner) submits honestly.
    let r = s
        .net
        .execute(
            &s.bob,
            s.onchain,
            U256::ZERO,
            s.cc.submit_result(true),
            400_000,
        )
        .unwrap();
    assert!(r.success, "submit: {:?}", r.failure);
    // Finalize before the window closes is rejected.
    let r = s
        .net
        .execute(&s.bob, s.onchain, U256::ZERO, s.cc.finalize(), 400_000)
        .unwrap();
    assert!(!r.success, "finalize inside the window must wait");
    // After the window it pays out: Bob gets pot + his security deposit,
    // Alice gets her security deposit back.
    s.net.advance_time(WINDOW + 60);
    let bob_before = s.net.balance_of(s.bob.address);
    let alice_before = s.net.balance_of(s.alice.address);
    let r = s
        .net
        .execute(&s.bob, s.onchain, U256::ZERO, s.cc.finalize(), 600_000)
        .unwrap();
    assert!(r.success, "finalize: {:?}", r.failure);
    assert_eq!(
        s.net.balance_of(s.bob.address),
        bob_before
            .wrapping_add(ether(2))
            .wrapping_add(security_deposit())
            .wrapping_sub(U256::from_u64(r.gas_used).wrapping_mul(sc_primitives::gwei(1))),
    );
    assert_eq!(
        s.net.balance_of(s.alice.address),
        alice_before.wrapping_add(security_deposit()),
        "honest loser's security deposit returned"
    );
    assert_eq!(s.net.balance_of(s.onchain), U256::ZERO);
}

#[test]
fn false_submission_is_challenged_and_penalized() {
    let mut s = setup();
    assert!(s.secrets.winner_is_bob());
    // Alice (the true loser) submits a LIE: "Alice wins" (winner=false).
    let r = s
        .net
        .execute(
            &s.alice,
            s.onchain,
            U256::ZERO,
            s.cc.submit_result(false),
            400_000,
        )
        .unwrap();
    assert!(r.success);
    // Bob challenges within the window using the signed copy.
    let sig_a = sign(&s.alice.key, &s.bytecode);
    let sig_b = sign(&s.bob.key, &s.bytecode);
    let r = s
        .net
        .execute(
            &s.bob,
            s.onchain,
            U256::ZERO,
            s.cc.challenge(&s.bytecode, &sig_a, &sig_b),
            7_900_000,
        )
        .unwrap();
    assert!(r.success, "challenge: {:?}", r.failure);
    let instance = Address::from_u256(
        s.net
            .storage_at(s.onchain, U256::from_u64(CHALLENGE_DEPLOYED_ADDR_SLOT)),
    );
    assert!(!instance.is_zero(), "verified instance created");

    // The instance recomputes reveal() and enforces the truth + penalty.
    let bob_before = s.net.balance_of(s.bob.address);
    let r = s
        .net
        .execute(
            &s.bob,
            instance,
            U256::ZERO,
            s.cc.return_dispute_resolution(s.onchain),
            7_900_000,
        )
        .unwrap();
    assert!(r.success, "resolution: {:?}", r.failure);
    // Bob receives pot + BOTH security deposits (Alice's is the penalty
    // compensating his dispute gas).
    let gas_cost = U256::from_u64(r.gas_used).wrapping_mul(sc_primitives::gwei(1));
    assert_eq!(
        s.net.balance_of(s.bob.address),
        bob_before
            .wrapping_add(ether(2))
            .wrapping_add(security_deposit().wrapping_mul(U256::from_u64(2)))
            .wrapping_sub(gas_cost)
    );
    // The liar lost stake AND security deposit.
    assert!(s.net.balance_of(s.alice.address) < ether(999));
    // Finalizing the lie afterwards is impossible.
    s.net.advance_time(WINDOW + 60);
    let r = s
        .net
        .execute(&s.alice, s.onchain, U256::ZERO, s.cc.finalize(), 600_000)
        .unwrap();
    assert!(!r.success, "settled flag blocks the stale proposal");
}

#[test]
fn challenge_after_window_is_rejected() {
    let mut s = setup();
    let r = s
        .net
        .execute(
            &s.bob,
            s.onchain,
            U256::ZERO,
            s.cc.submit_result(true),
            400_000,
        )
        .unwrap();
    assert!(r.success);
    s.net.advance_time(WINDOW + 60);
    let sig_a = sign(&s.alice.key, &s.bytecode);
    let sig_b = sign(&s.bob.key, &s.bytecode);
    let r = s
        .net
        .execute(
            &s.alice,
            s.onchain,
            U256::ZERO,
            s.cc.challenge(&s.bytecode, &sig_a, &sig_b),
            7_900_000,
        )
        .unwrap();
    assert!(!r.success, "the challenge window is closed");
}

#[test]
fn challenge_with_forged_bytecode_rejected() {
    let mut s = setup();
    let r = s
        .net
        .execute(
            &s.bob,
            s.onchain,
            U256::ZERO,
            s.cc.submit_result(true),
            400_000,
        )
        .unwrap();
    assert!(r.success);
    let mut forged = s.bytecode.clone();
    let n = forged.len();
    forged[n - 1] ^= 0xff;
    let sig_a = sign(&s.alice.key, &forged);
    let sig_b = sign(&s.bob.key, &s.bytecode); // Bob never signed the forgery
    let r = s
        .net
        .execute(
            &s.alice,
            s.onchain,
            U256::ZERO,
            s.cc.challenge(&forged, &sig_a, &sig_b),
            7_900_000,
        )
        .unwrap();
    assert!(!r.success, "forged copies cannot open a dispute");
}

#[test]
fn double_submission_rejected() {
    let mut s = setup();
    assert!(
        s.net
            .execute(
                &s.bob,
                s.onchain,
                U256::ZERO,
                s.cc.submit_result(true),
                400_000
            )
            .unwrap()
            .success
    );
    let r = s
        .net
        .execute(
            &s.alice,
            s.onchain,
            U256::ZERO,
            s.cc.submit_result(false),
            400_000,
        )
        .unwrap();
    assert!(!r.success, "only one proposal per game");
}

#[test]
fn submission_requires_t2() {
    // Fresh setup without advancing time.
    let mut net = Testnet::new();
    let alice = net.funded_wallet("alice", ether(10));
    let bob = net.funded_wallet("bob", ether(10));
    let tl = Timeline::starting_at(net.now(), 3600);
    let cc = ChallengeContracts::new();
    let onchain = net
        .deploy(
            &alice,
            cc.onchain_initcode(alice.address, bob.address, tl, WINDOW),
            U256::ZERO,
            7_000_000,
        )
        .unwrap()
        .contract_address
        .unwrap();
    let pay = stake().wrapping_add(security_deposit());
    for w in [&alice, &bob] {
        assert!(
            net.execute(w, onchain, pay, cc.deposit(), 400_000)
                .unwrap()
                .success
        );
    }
    let r = net
        .execute(&bob, onchain, U256::ZERO, cc.submit_result(true), 400_000)
        .unwrap();
    assert!(!r.success, "submission before T2 rejected");
}

#[test]
fn outsiders_cannot_submit_or_challenge() {
    let mut s = setup();
    let carol = s.net.funded_wallet("carol", ether(10));
    let r = s
        .net
        .execute(
            &carol,
            s.onchain,
            U256::ZERO,
            s.cc.submit_result(true),
            400_000,
        )
        .unwrap();
    assert!(!r.success);
}
