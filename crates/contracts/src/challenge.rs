//! The submit/challenge variant of the on-chain contract (extension).
//!
//! The paper's third stage describes a mechanism the published contracts
//! (Algorithms 2–6) do not actually implement: "a representative of the
//! participants \[submits\] the result … leaving a challenge period …
//! during which all other participants can challenge the result with the
//! signed copy of the off-chain contract", plus the remark that heavy
//! `reveal()` functions make security deposits "mandatory … so that the
//! honest participant paying for dispute resolution can receive
//! compensation from dishonest participants."
//!
//! This module ships that design as a MiniSol contract:
//!
//! * deposits are `1 ether` stake + `0.1 ether` security deposit;
//! * after T2 either participant may `submitResult(winner)`;
//! * an unchallenged result can be `finalize()`d after the challenge
//!   window, refunding both security deposits;
//! * during the window, the counterparty can `challenge()` with the
//!   signed copy — the verified instance recomputes `reveal()` and
//!   `enforceChallengedResolution` compares it with the submission: a
//!   false submitter forfeits their security deposit to the challenger
//!   (compensating the dispute gas), an honest submitter keeps theirs;
//! * if no result is ever submitted (the representative crashed), either
//!   participant may, one full challenge window past T2, `challenge()`
//!   anyway to force the dispute resolution, or `reclaimNoSubmission()`
//!   to simply take back their own stake + security deposit.

use crate::{BetSecrets, Timeline};
use sc_lang::{compile, CompiledContract};
use sc_primitives::abi::Value;
use sc_primitives::{Address, U256};

/// MiniSol source of the challenge-period on-chain contract.
pub const CHALLENGE_ONCHAIN_SRC: &str = r#"
pragma solidity ^0.4.24;

contract onChainChallenge {
    address[2] participant;
    mapping(address => uint256) accountBalance;
    mapping(address => uint256) securityDeposit;
    uint256 T1;
    uint256 T2;
    uint256 challengeWindow;
    address public deployedAddr;

    // Result proposal state.
    bool proposed;
    bool proposedWinner;
    address proposer;
    uint256 proposedAt;
    bool settled;

    constructor(address a, address b, uint256 t1, uint256 t2, uint256 window) public {
        participant[0] = a;
        participant[1] = b;
        T1 = t1;
        T2 = t2;
        challengeWindow = window;
    }

    modifier certifiedparticipantOnly {
        require(msg.sender == participant[0] || msg.sender == participant[1]);
        _;
    }
    modifier beforeT1 { require(block.timestamp < T1); _; }
    modifier afterT2 { require(block.timestamp >= T2); _; }
    modifier amountMet {
        require(accountBalance[participant[0]] == 1 ether && accountBalance[participant[1]] == 1 ether);
        _;
    }
    modifier notSettled { require(!settled); _; }
    modifier deployedAddrOnly { require(msg.sender == deployedAddr); _; }

    // Stake (1 ether) + security deposit (0.1 ether) in one payment.
    function deposit() public payable beforeT1 certifiedparticipantOnly {
        require(msg.value == 1100000000000000000);
        require(accountBalance[msg.sender] == 0);
        accountBalance[msg.sender] = 1 ether;
        securityDeposit[msg.sender] = 100000000000000000;
    }

    function refundRoundOne() public beforeT1 certifiedparticipantOnly {
        uint256 amt = accountBalance[msg.sender] + securityDeposit[msg.sender];
        require(amt > 0);
        accountBalance[msg.sender] = 0;
        securityDeposit[msg.sender] = 0;
        msg.sender.transfer(amt);
    }

    // The representative submits the off-chain result; the challenge
    // window opens.
    function submitResult(bool winner) public afterT2 certifiedparticipantOnly amountMet notSettled {
        require(!proposed);
        proposed = true;
        proposedWinner = winner;
        proposer = msg.sender;
        proposedAt = block.timestamp;
    }

    // Unchallenged after the window: pay out and refund both security
    // deposits.
    function finalize() public certifiedparticipantOnly notSettled {
        require(proposed);
        require(block.timestamp >= proposedAt + challengeWindow);
        settled = true;
        uint256 total = accountBalance[participant[0]] + accountBalance[participant[1]];
        accountBalance[participant[0]] = 0;
        accountBalance[participant[1]] = 0;
        uint256 sd0 = securityDeposit[participant[0]];
        uint256 sd1 = securityDeposit[participant[1]];
        securityDeposit[participant[0]] = 0;
        securityDeposit[participant[1]] = 0;
        if (proposedWinner == true) {
            participant[1].transfer(total + sd1);
        } else {
            participant[0].transfer(total + sd0);
        }
        if (proposedWinner == true) {
            if (sd0 > 0) { participant[0].transfer(sd0); }
        } else {
            if (sd1 > 0) { participant[1].transfer(sd1); }
        }
    }

    // Funds are stuck only while a proposal could still arrive. Once the
    // representative has been silent for a full challenge window past T2,
    // either side may walk away with their own stake + security deposit.
    function reclaimNoSubmission() public certifiedparticipantOnly notSettled {
        require(!proposed);
        require(block.timestamp >= T2 + challengeWindow);
        uint256 amt = accountBalance[msg.sender] + securityDeposit[msg.sender];
        require(amt > 0);
        accountBalance[msg.sender] = 0;
        securityDeposit[msg.sender] = 0;
        msg.sender.transfer(amt);
    }

    // A challenger reveals the signed copy. Two openings: during the
    // window after a submission (disputing its content), or after the
    // no-submission deadline when the representative went silent (forcing
    // resolution instead of merely reclaiming).
    function challenge(bytes memory bytecode, uint8 va, bytes32 ra, bytes32 sa, uint8 vb, bytes32 rb, bytes32 sb) public certifiedparticipantOnly amountMet notSettled {
        if (proposed) {
            require(block.timestamp < proposedAt + challengeWindow);
        } else {
            require(block.timestamp >= T2 + challengeWindow);
        }
        bytes32 h_bytecode = keccak256(bytecode);
        address a = ecrecover(h_bytecode, va, ra, sa);
        address b = ecrecover(h_bytecode, vb, rb, sb);
        require(a == participant[0] && b == participant[1]);
        address addr = create(bytecode);
        require(addr != address(0));
        deployedAddr = addr;
    }

    // Called back by the verified instance with the recomputed truth.
    // Penalty rule: once the dispute machinery runs, the truth-loser
    // forfeits their security deposit to the truth-winner — whether they
    // caused the dispute by lying as the submitter or by challenging a
    // truthful submission. This funds the honest party's dispute gas,
    // the compensation the paper calls for.
    function enforceChallengedResolution(bool winner) external deployedAddrOnly notSettled {
        settled = true;
        uint256 total = accountBalance[participant[0]] + accountBalance[participant[1]];
        accountBalance[participant[0]] = 0;
        accountBalance[participant[1]] = 0;
        uint256 sds = securityDeposit[participant[0]] + securityDeposit[participant[1]];
        securityDeposit[participant[0]] = 0;
        securityDeposit[participant[1]] = 0;
        if (winner == true) {
            participant[1].transfer(total + sds);
        } else {
            participant[0].transfer(total + sds);
        }
    }
}
"#;

/// MiniSol source of the off-chain contract matching the challenge
/// variant (same `reveal()`, different callback name).
pub const CHALLENGE_OFFCHAIN_SRC: &str = r#"
pragma solidity ^0.4.24;

interface OnChainChallengeContract {
    function enforceChallengedResolution(bool winner) external;
}

contract offChainChallenge {
    address[2] participant;
    uint256 secretA;
    uint256 secretB;
    uint256 weight;

    constructor(address a, address b, uint256 sa, uint256 sb, uint256 w) public {
        participant[0] = a;
        participant[1] = b;
        secretA = sa;
        secretB = sb;
        weight = w;
    }

    modifier certifiedparticipantOnly {
        require(msg.sender == participant[0] || msg.sender == participant[1]);
        _;
    }

    function reveal() private returns (bool) {
        uint256 acc = secretA + secretB;
        uint256 i = 0;
        while (i < weight) {
            acc = acc * 2654435761 + i;
            i = i + 1;
        }
        return acc % 2 == 1;
    }

    function returnDisputeResolution(address addr) public certifiedparticipantOnly {
        OnChainChallengeContract(addr).enforceChallengedResolution(reveal());
    }
}
"#;

/// The stake every participant locks (1 ether).
pub fn stake() -> U256 {
    sc_primitives::ether(1)
}

/// The security deposit (0.1 ether) that funds dispute compensation.
pub fn security_deposit() -> U256 {
    U256::from_u128(100_000_000_000_000_000)
}

/// Storage slot of `deployedAddr` in the challenge contract
/// (participants 0–1, two mappings 2–3, T1 4, T2 5, window 6).
pub const CHALLENGE_DEPLOYED_ADDR_SLOT: u64 = 7;

/// Compiled challenge-period contract pair with calldata builders.
#[derive(Clone)]
pub struct ChallengeContracts {
    /// The on-chain side.
    pub onchain: CompiledContract,
    /// The off-chain side (what gets signed).
    pub offchain: CompiledContract,
}

impl ChallengeContracts {
    /// Compiles both sides.
    pub fn new() -> Self {
        ChallengeContracts {
            onchain: compile(CHALLENGE_ONCHAIN_SRC, "onChainChallenge")
                .expect("challenge onchain compiles"),
            offchain: compile(CHALLENGE_OFFCHAIN_SRC, "offChainChallenge")
                .expect("challenge offchain compiles"),
        }
    }

    /// On-chain initcode. `window` is the challenge period in seconds.
    pub fn onchain_initcode(
        &self,
        alice: Address,
        bob: Address,
        tl: Timeline,
        window: u64,
    ) -> Vec<u8> {
        self.onchain
            .initcode(&[
                Value::Address(alice),
                Value::Address(bob),
                Value::Uint(U256::from_u64(tl.t1)),
                Value::Uint(U256::from_u64(tl.t2)),
                Value::Uint(U256::from_u64(window)),
            ])
            .expect("ctor args")
    }

    /// Off-chain initcode (the artifact the participants sign).
    pub fn offchain_initcode(&self, alice: Address, bob: Address, secrets: BetSecrets) -> Vec<u8> {
        self.offchain
            .initcode(&[
                Value::Address(alice),
                Value::Address(bob),
                Value::Uint(secrets.secret_a),
                Value::Uint(secrets.secret_b),
                Value::Uint(U256::from_u64(secrets.weight)),
            ])
            .expect("ctor args")
    }

    /// `deposit()` calldata (send `stake() + security_deposit()`).
    pub fn deposit(&self) -> Vec<u8> {
        self.onchain.calldata("deposit", &[]).expect("abi")
    }

    /// `submitResult(winner)` calldata.
    pub fn submit_result(&self, winner_is_bob: bool) -> Vec<u8> {
        self.onchain
            .calldata("submitResult", &[Value::Bool(winner_is_bob)])
            .expect("abi")
    }

    /// `finalize()` calldata.
    pub fn finalize(&self) -> Vec<u8> {
        self.onchain.calldata("finalize", &[]).expect("abi")
    }

    /// `reclaimNoSubmission()` calldata.
    pub fn reclaim_no_submission(&self) -> Vec<u8> {
        self.onchain
            .calldata("reclaimNoSubmission", &[])
            .expect("abi")
    }

    /// `challenge(bytecode, sigs…)` calldata.
    pub fn challenge(
        &self,
        bytecode: &[u8],
        sig_a: &sc_crypto::Signature,
        sig_b: &sc_crypto::Signature,
    ) -> Vec<u8> {
        self.onchain
            .calldata(
                "challenge",
                &[
                    Value::Bytes(bytecode.to_vec()),
                    Value::Uint(U256::from_u64(sig_a.v as u64)),
                    Value::Bytes32(sig_a.r),
                    Value::Bytes32(sig_a.s),
                    Value::Uint(U256::from_u64(sig_b.v as u64)),
                    Value::Bytes32(sig_b.r),
                    Value::Bytes32(sig_b.s),
                ],
            )
            .expect("abi")
    }

    /// `returnDisputeResolution(onchain)` calldata for the instance.
    pub fn return_dispute_resolution(&self, onchain: Address) -> Vec<u8> {
        self.offchain
            .calldata("returnDisputeResolution", &[Value::Address(onchain)])
            .expect("abi")
    }
}

impl Default for ChallengeContracts {
    fn default() -> Self {
        Self::new()
    }
}
