//! The paper's betting contracts, compiled from MiniSol, with typed
//! wrappers for building deployments and calldata.
//!
//! * [`OnChainContract`] — Algorithm 2 (+ extra functions of Algorithms
//!   5–6): deposits, refunds, reassignment, `deployVerifiedInstance`,
//!   `enforceDisputeResolution`.
//! * [`OffChainContract`] — Algorithm 3: the private `reveal()` plus
//!   `returnDisputeResolution`. Its **initcode** (with the participants,
//!   secrets and workload weight baked in) is what the participants sign.
//! * [`MonolithicContract`] — the all-on-chain baseline used by the
//!   Fig. 1 model-comparison experiment.

#![warn(missing_docs)]

pub mod challenge;
pub mod confidential;
pub mod gen;
pub mod sources;

use sc_lang::{compile, CompiledContract};
use sc_primitives::abi::Value;
use sc_primitives::{Address, U256};

pub use sources::{MONOLITHIC_SRC, OFFCHAIN_SRC, ONCHAIN_SRC};

/// The betting-window timestamps of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeline {
    /// Deposit deadline.
    pub t1: u64,
    /// Refund-round-two deadline.
    pub t2: u64,
    /// Voluntary-reassign deadline; disputes open after this.
    pub t3: u64,
}

impl Timeline {
    /// A timeline with the given phase length starting at `t0`.
    pub fn starting_at(t0: u64, phase: u64) -> Timeline {
        Timeline {
            t1: t0 + phase,
            t2: t0 + 2 * phase,
            t3: t0 + 3 * phase,
        }
    }

    /// Which contract window `now` falls in. Edges mirror the contract
    /// modifiers exactly: `beforeT1` is `now < T1`, `T1toT2` is
    /// `T1 <= now < T2`, `T2toT3` is `T2 <= now < T3`, `afterT3` is
    /// `now >= T3` — so a driver can decide what is still landable
    /// without re-deriving the comparisons inline.
    pub fn window_at(&self, now: u64) -> TimelineWindow {
        if now < self.t1 {
            TimelineWindow::BeforeT1
        } else if now < self.t2 {
            TimelineWindow::T1ToT2
        } else if now < self.t3 {
            TimelineWindow::T2ToT3
        } else {
            TimelineWindow::AfterT3
        }
    }
}

/// The four windows the on-chain contract's modifiers carve out of time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TimelineWindow {
    /// `block.timestamp < T1`: deposits and round-one refunds.
    BeforeT1,
    /// `T1 <= block.timestamp < T2`: round-two refunds.
    T1ToT2,
    /// `T2 <= block.timestamp < T3`: voluntary `reassign`.
    T2ToT3,
    /// `block.timestamp >= T3`: `deployVerifiedInstance` disputes.
    AfterT3,
}

/// The private betting rule: secrets contributed by each party plus the
/// computational weight of `reveal()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BetSecrets {
    /// Alice's secret input.
    pub secret_a: U256,
    /// Bob's secret input.
    pub secret_b: U256,
    /// Iterations of the mixing loop (the "heavy" in heavy/private).
    pub weight: u64,
}

impl BetSecrets {
    /// Reference (native Rust) implementation of the contract's
    /// `reveal()`: `true` means participant 1 (Bob) wins.
    pub fn winner_is_bob(&self) -> bool {
        let mut acc = self.secret_a.wrapping_add(self.secret_b);
        let mult = U256::from_u64(2_654_435_761);
        for i in 0..self.weight {
            acc = acc.wrapping_mul(mult).wrapping_add(U256::from_u64(i));
        }
        acc.bit(0)
    }
}

/// Compiled on-chain contract with calldata builders.
#[derive(Clone)]
pub struct OnChainContract {
    /// The compiled artifact.
    pub compiled: CompiledContract,
}

/// Storage slot of `deployedAddr` in the on-chain contract
/// (participant\[2\] → slots 0–1, mapping → 2, T1–T3 → 3–5).
pub const DEPLOYED_ADDR_SLOT: u64 = 6;

impl OnChainContract {
    /// Compiles the on-chain contract.
    pub fn new() -> Self {
        OnChainContract {
            compiled: compile(ONCHAIN_SRC, "onChain").expect("onChain source compiles"),
        }
    }

    /// Initcode deploying the contract for two participants and a
    /// timeline.
    pub fn initcode(&self, alice: Address, bob: Address, tl: Timeline) -> Vec<u8> {
        self.compiled
            .initcode(&[
                Value::Address(alice),
                Value::Address(bob),
                Value::Uint(U256::from_u64(tl.t1)),
                Value::Uint(U256::from_u64(tl.t2)),
                Value::Uint(U256::from_u64(tl.t3)),
            ])
            .expect("constructor args match")
    }

    /// `deposit()` calldata.
    pub fn deposit(&self) -> Vec<u8> {
        self.compiled.calldata("deposit", &[]).expect("abi")
    }

    /// `refundRoundOne()` calldata.
    pub fn refund_round_one(&self) -> Vec<u8> {
        self.compiled.calldata("refundRoundOne", &[]).expect("abi")
    }

    /// `refundRoundTwo()` calldata.
    pub fn refund_round_two(&self) -> Vec<u8> {
        self.compiled.calldata("refundRoundTwo", &[]).expect("abi")
    }

    /// `reassign()` calldata.
    pub fn reassign(&self) -> Vec<u8> {
        self.compiled.calldata("reassign", &[]).expect("abi")
    }

    /// `deployVerifiedInstance(bytecode, va, ra, sa, vb, rb, sb)` calldata
    /// from the signed copy.
    pub fn deploy_verified_instance(
        &self,
        bytecode: &[u8],
        sig_a: &sc_crypto::Signature,
        sig_b: &sc_crypto::Signature,
    ) -> Vec<u8> {
        self.compiled
            .calldata(
                "deployVerifiedInstance",
                &[
                    Value::Bytes(bytecode.to_vec()),
                    Value::Uint(U256::from_u64(sig_a.v as u64)),
                    Value::Bytes32(sig_a.r),
                    Value::Bytes32(sig_a.s),
                    Value::Uint(U256::from_u64(sig_b.v as u64)),
                    Value::Bytes32(sig_b.r),
                    Value::Bytes32(sig_b.s),
                ],
            )
            .expect("abi")
    }
}

impl Default for OnChainContract {
    fn default() -> Self {
        Self::new()
    }
}

/// Compiled off-chain contract with builders for the signed copy.
#[derive(Clone)]
pub struct OffChainContract {
    /// The compiled artifact.
    pub compiled: CompiledContract,
}

impl OffChainContract {
    /// Compiles the off-chain contract.
    pub fn new() -> Self {
        OffChainContract {
            compiled: compile(OFFCHAIN_SRC, "offChain").expect("offChain source compiles"),
        }
    }

    /// The initcode that the participants sign: contract code with the
    /// participants, secrets and weight baked in.
    pub fn initcode(&self, alice: Address, bob: Address, secrets: BetSecrets) -> Vec<u8> {
        self.compiled
            .initcode(&[
                Value::Address(alice),
                Value::Address(bob),
                Value::Uint(secrets.secret_a),
                Value::Uint(secrets.secret_b),
                Value::Uint(U256::from_u64(secrets.weight)),
            ])
            .expect("constructor args match")
    }

    /// `returnDisputeResolution(onChainAddr)` calldata.
    pub fn return_dispute_resolution(&self, onchain: Address) -> Vec<u8> {
        self.compiled
            .calldata("returnDisputeResolution", &[Value::Address(onchain)])
            .expect("abi")
    }
}

impl Default for OffChainContract {
    fn default() -> Self {
        Self::new()
    }
}

/// Compiled all-on-chain baseline.
#[derive(Clone)]
pub struct MonolithicContract {
    /// The compiled artifact.
    pub compiled: CompiledContract,
}

impl MonolithicContract {
    /// Compiles the baseline contract.
    pub fn new() -> Self {
        MonolithicContract {
            compiled: compile(MONOLITHIC_SRC, "monolithic").expect("monolithic source compiles"),
        }
    }

    /// Initcode with timeline and (publicly visible!) secrets + weight.
    pub fn initcode(
        &self,
        alice: Address,
        bob: Address,
        tl: Timeline,
        secrets: BetSecrets,
    ) -> Vec<u8> {
        self.compiled
            .initcode(&[
                Value::Address(alice),
                Value::Address(bob),
                Value::Uint(U256::from_u64(tl.t1)),
                Value::Uint(U256::from_u64(tl.t2)),
                Value::Uint(U256::from_u64(tl.t3)),
                Value::Uint(secrets.secret_a),
                Value::Uint(secrets.secret_b),
                Value::Uint(U256::from_u64(secrets.weight)),
            ])
            .expect("constructor args match")
    }

    /// `deposit()` calldata.
    pub fn deposit(&self) -> Vec<u8> {
        self.compiled.calldata("deposit", &[]).expect("abi")
    }

    /// `settle()` calldata — miners recompute `reveal()` here.
    pub fn settle(&self) -> Vec<u8> {
        self.compiled.calldata("settle", &[]).expect("abi")
    }

    /// `refundRoundOne()` calldata.
    pub fn refund_round_one(&self) -> Vec<u8> {
        self.compiled.calldata("refundRoundOne", &[]).expect("abi")
    }

    /// `refundRoundTwo()` calldata.
    pub fn refund_round_two(&self) -> Vec<u8> {
        self.compiled.calldata("refundRoundTwo", &[]).expect("abi")
    }
}

impl Default for MonolithicContract {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_chain::{Testnet, Wallet};
    use sc_primitives::ether;

    fn setup() -> (Testnet, Wallet, Wallet, Timeline) {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(100));
        let bob = net.funded_wallet("bob", ether(100));
        let tl = Timeline::starting_at(net.now(), 3600);
        (net, alice, bob, tl)
    }

    #[test]
    fn window_at_matches_contract_modifier_edges() {
        let tl = Timeline {
            t1: 100,
            t2: 200,
            t3: 300,
        };
        assert_eq!(tl.window_at(0), TimelineWindow::BeforeT1);
        assert_eq!(tl.window_at(99), TimelineWindow::BeforeT1);
        // T1 itself is already out of the deposit window (`< T1`).
        assert_eq!(tl.window_at(100), TimelineWindow::T1ToT2);
        assert_eq!(tl.window_at(199), TimelineWindow::T1ToT2);
        // T2 itself is already out of the refund window (`< T2`).
        assert_eq!(tl.window_at(200), TimelineWindow::T2ToT3);
        assert_eq!(tl.window_at(299), TimelineWindow::T2ToT3);
        // T3 itself opens disputes (`>= T3`).
        assert_eq!(tl.window_at(300), TimelineWindow::AfterT3);
        assert_eq!(tl.window_at(u64::MAX), TimelineWindow::AfterT3);
        // Windows are ordered, so drivers can compare progress.
        assert!(TimelineWindow::BeforeT1 < TimelineWindow::AfterT3);
    }

    #[test]
    fn all_three_sources_compile() {
        let on = OnChainContract::new();
        let off = OffChainContract::new();
        let mono = MonolithicContract::new();
        assert!(!on.compiled.runtime.is_empty());
        assert!(!off.compiled.runtime.is_empty());
        assert!(!mono.compiled.runtime.is_empty());
    }

    #[test]
    fn deposit_and_refund_round_one() {
        let (mut net, alice, bob, tl) = setup();
        let on = OnChainContract::new();
        let r = net
            .deploy(
                &alice,
                on.initcode(alice.address, bob.address, tl),
                U256::ZERO,
                3_000_000,
            )
            .unwrap();
        assert!(r.success, "{:?}", r.failure);
        let addr = r.contract_address.unwrap();

        let r = net
            .execute(&alice, addr, ether(1), on.deposit(), 300_000)
            .unwrap();
        assert!(r.success, "{:?}", r.failure);
        assert_eq!(net.balance_of(addr), ether(1));

        // Wrong amount rejected.
        let r = net
            .execute(&bob, addr, ether(2), on.deposit(), 300_000)
            .unwrap();
        assert!(!r.success);

        // Refund before T1 works.
        let r = net
            .execute(&alice, addr, U256::ZERO, on.refund_round_one(), 300_000)
            .unwrap();
        assert!(r.success, "{:?}", r.failure);
        assert_eq!(net.balance_of(addr), U256::ZERO);
    }

    #[test]
    fn outsiders_are_rejected() {
        let (mut net, alice, bob, tl) = setup();
        let carol = net.funded_wallet("carol", ether(100));
        let on = OnChainContract::new();
        let addr = net
            .deploy(
                &alice,
                on.initcode(alice.address, bob.address, tl),
                U256::ZERO,
                3_000_000,
            )
            .unwrap()
            .contract_address
            .unwrap();
        let r = net
            .execute(&carol, addr, ether(1), on.deposit(), 300_000)
            .unwrap();
        assert!(!r.success, "non-participant deposit must revert");
    }

    #[test]
    fn deposit_after_t1_rejected_and_refund_round_two() {
        let (mut net, alice, bob, tl) = setup();
        let on = OnChainContract::new();
        let addr = net
            .deploy(
                &alice,
                on.initcode(alice.address, bob.address, tl),
                U256::ZERO,
                3_000_000,
            )
            .unwrap()
            .contract_address
            .unwrap();
        // Only Alice deposits before T1.
        assert!(
            net.execute(&alice, addr, ether(1), on.deposit(), 300_000)
                .unwrap()
                .success
        );
        // Jump past T1.
        net.advance_time(3700);
        let r = net
            .execute(&bob, addr, ether(1), on.deposit(), 300_000)
            .unwrap();
        assert!(!r.success, "deposit after T1 must revert");
        // Amounts not met → Alice can refund in round two.
        let before = net.balance_of(alice.address);
        let r = net
            .execute(&alice, addr, U256::ZERO, on.refund_round_two(), 300_000)
            .unwrap();
        assert!(r.success, "{:?}", r.failure);
        assert!(net.balance_of(alice.address) > before);
    }

    #[test]
    fn reassign_pays_the_winner() {
        let (mut net, alice, bob, tl) = setup();
        let on = OnChainContract::new();
        let addr = net
            .deploy(
                &alice,
                on.initcode(alice.address, bob.address, tl),
                U256::ZERO,
                3_000_000,
            )
            .unwrap()
            .contract_address
            .unwrap();
        for w in [&alice, &bob] {
            assert!(
                net.execute(w, addr, ether(1), on.deposit(), 300_000)
                    .unwrap()
                    .success
            );
        }
        // Move into (T2, T3): loser Alice concedes.
        net.advance_time(2 * 3600 + 60);
        let bob_before = net.balance_of(bob.address);
        let r = net
            .execute(&alice, addr, U256::ZERO, on.reassign(), 300_000)
            .unwrap();
        assert!(r.success, "{:?}", r.failure);
        assert_eq!(
            net.balance_of(bob.address),
            bob_before.wrapping_add(ether(2)),
            "winner receives both deposits"
        );
        assert_eq!(net.balance_of(addr), U256::ZERO);
    }

    #[test]
    fn reassign_requires_full_deposits() {
        let (mut net, alice, bob, tl) = setup();
        let on = OnChainContract::new();
        let addr = net
            .deploy(
                &alice,
                on.initcode(alice.address, bob.address, tl),
                U256::ZERO,
                3_000_000,
            )
            .unwrap()
            .contract_address
            .unwrap();
        assert!(
            net.execute(&alice, addr, ether(1), on.deposit(), 300_000)
                .unwrap()
                .success
        );
        net.advance_time(2 * 3600 + 60);
        let r = net
            .execute(&alice, addr, U256::ZERO, on.reassign(), 300_000)
            .unwrap();
        assert!(!r.success, "amountMet must gate reassign");
    }

    #[test]
    fn monolithic_settles_on_chain() {
        let (mut net, alice, bob, tl) = setup();
        let secrets = BetSecrets {
            secret_a: U256::from_u64(1234),
            secret_b: U256::from_u64(5678),
            weight: 100,
        };
        let mono = MonolithicContract::new();
        let addr = net
            .deploy(
                &alice,
                mono.initcode(alice.address, bob.address, tl, secrets),
                U256::ZERO,
                5_000_000,
            )
            .unwrap()
            .contract_address
            .unwrap();
        for w in [&alice, &bob] {
            assert!(
                net.execute(w, addr, ether(1), mono.deposit(), 300_000)
                    .unwrap()
                    .success
            );
        }
        net.advance_time(2 * 3600 + 60);
        let alice_before = net.balance_of(alice.address);
        let bob_before = net.balance_of(bob.address);
        let r = net
            .execute(&alice, addr, U256::ZERO, mono.settle(), 2_000_000)
            .unwrap();
        assert!(r.success, "{:?}", r.failure);
        // The on-chain result matches the native reference implementation.
        if secrets.winner_is_bob() {
            assert_eq!(
                net.balance_of(bob.address),
                bob_before.wrapping_add(ether(2))
            );
        } else {
            assert!(net.balance_of(alice.address) > alice_before);
        }
    }

    #[test]
    fn monolithic_settle_gas_grows_with_weight() {
        let (mut net, alice, bob, _) = setup();
        let mono = MonolithicContract::new();
        let mut gas = Vec::new();
        for weight in [0u64, 1000] {
            let tl = Timeline::starting_at(net.now(), 3600);
            let secrets = BetSecrets {
                secret_a: U256::from_u64(1),
                secret_b: U256::from_u64(2),
                weight,
            };
            let addr = net
                .deploy(
                    &alice,
                    mono.initcode(alice.address, bob.address, tl, secrets),
                    U256::ZERO,
                    5_000_000,
                )
                .unwrap()
                .contract_address
                .unwrap();
            for w in [&alice, &bob] {
                assert!(
                    net.execute(w, addr, ether(1), mono.deposit(), 300_000)
                        .unwrap()
                        .success
                );
            }
            net.advance_time(2 * 3600 + 60);
            let r = net
                .execute(&alice, addr, U256::ZERO, mono.settle(), 7_000_000)
                .unwrap();
            assert!(r.success, "{:?}", r.failure);
            gas.push(r.gas_used);
        }
        assert!(
            gas[1] > gas[0] + 10_000,
            "reveal weight must dominate: {gas:?}"
        );
    }

    #[test]
    fn reference_reveal_matches_secret_parity_for_zero_weight() {
        // weight 0: winner = parity of secretA + secretB.
        let s = BetSecrets {
            secret_a: U256::from_u64(2),
            secret_b: U256::from_u64(3),
            weight: 0,
        };
        assert!(s.winner_is_bob());
        let s = BetSecrets {
            secret_a: U256::from_u64(2),
            secret_b: U256::from_u64(4),
            weight: 0,
        };
        assert!(!s.winner_is_bob());
    }

    #[test]
    fn offchain_initcode_is_deterministic_and_distinct_per_params() {
        let off = OffChainContract::new();
        let a = Address([1; 20]);
        let b = Address([2; 20]);
        let s1 = BetSecrets {
            secret_a: U256::ONE,
            secret_b: U256::ONE,
            weight: 5,
        };
        let code1 = off.initcode(a, b, s1);
        let code2 = off.initcode(a, b, s1);
        assert_eq!(code1, code2, "signing requires byte-identical code");
        let s2 = BetSecrets {
            secret_a: U256::ONE,
            secret_b: U256::ONE,
            weight: 6,
        };
        assert_ne!(code1, off.initcode(a, b, s2));
    }
}
