//! Programmatic contract generators for the ablation studies.
//!
//! * [`padded_offchain_source`] — the off-chain contract with `k` extra
//!   public functions, inflating its bytecode to measure how dispute cost
//!   scales with code size (ablation A1).
//! * [`nparty_onchain_source`] — an n-participant generalization of
//!   `deployVerifiedInstance`, to measure signature-verification scaling
//!   (ablation A2). The paper fixes n = 2; the mechanism generalizes to
//!   one `ecrecover` per participant.

use sc_crypto::Signature;
use sc_primitives::abi::Value;
use sc_primitives::{Address, U256};

/// The off-chain contract with `k` additional public padding functions.
///
/// Padding functions are dispatchable (public) so they occupy real
/// bytecode: dead private functions would be inlined away.
pub fn padded_offchain_source(k: usize) -> String {
    let mut padding = String::new();
    for i in 0..k {
        padding.push_str(&format!(
            "    function pad{i}() public returns (uint256) {{\n        \
             uint256 x = {v} + block.timestamp;\n        \
             return x * {m};\n    }}\n",
            v = 1000 + i,
            m = 7 + i
        ));
    }
    format!(
        r#"
pragma solidity ^0.4.24;

interface OnChainContract {{
    function enforceDisputeResolution(bool winner) external;
}}

contract offChain {{
    address[2] participant;
    uint256 secretA;
    uint256 secretB;
    uint256 weight;

    constructor(address a, address b, uint256 sa, uint256 sb, uint256 w) public {{
        participant[0] = a;
        participant[1] = b;
        secretA = sa;
        secretB = sb;
        weight = w;
    }}

    modifier certifiedparticipantOnly {{
        require(msg.sender == participant[0] || msg.sender == participant[1]);
        _;
    }}

{padding}
    function reveal() private returns (bool) {{
        uint256 acc = secretA + secretB;
        uint256 i = 0;
        while (i < weight) {{
            acc = acc * 2654435761 + i;
            i = i + 1;
        }}
        return acc % 2 == 1;
    }}

    function returnDisputeResolution(address addr) public certifiedparticipantOnly {{
        OnChainContract(addr).enforceDisputeResolution(reveal());
    }}
}}
"#
    )
}

/// An n-participant on-chain verifier: `deployVerifiedInstance` with one
/// `(v, r, s)` triple per participant.
///
/// State: participants as individual `address` vars (`p0`, `p1`, …) so the
/// generated contract stays within MiniSol's fixed-index arrays.
pub fn nparty_onchain_source(n: usize) -> String {
    assert!(n >= 1, "need at least one participant");
    let mut state = String::new();
    let mut ctor_params = Vec::new();
    let mut ctor_body = String::new();
    for i in 0..n {
        state.push_str(&format!("    address p{i};\n"));
        ctor_params.push(format!("address a{i}"));
        ctor_body.push_str(&format!("        p{i} = a{i};\n"));
    }
    let mut fn_params = vec!["bytes memory bytecode".to_string()];
    let mut checks = String::new();
    for i in 0..n {
        fn_params.push(format!("uint8 v{i}"));
        fn_params.push(format!("bytes32 r{i}"));
        fn_params.push(format!("bytes32 s{i}"));
        checks.push_str(&format!(
            "        require(ecrecover(h, v{i}, r{i}, s{i}) == p{i});\n"
        ));
    }
    format!(
        r#"
pragma solidity ^0.4.24;

contract verifierN {{
{state}    address public deployedAddr;

    constructor({ctor_params}) public {{
{ctor_body}    }}

    function deployVerifiedInstance({fn_params}) public {{
        bytes32 h = keccak256(bytecode);
{checks}        address addr = create(bytecode);
        require(addr != address(0));
        deployedAddr = addr;
    }}
}}
"#,
        ctor_params = ctor_params.join(", "),
        fn_params = fn_params.join(", "),
    )
}

/// Storage slot of `deployedAddr` in the n-party verifier (after the n
/// participant slots).
pub fn nparty_deployed_addr_slot(n: usize) -> u64 {
    n as u64
}

/// ABI values for the n-party constructor.
pub fn nparty_ctor_args(participants: &[Address]) -> Vec<Value> {
    participants.iter().map(|a| Value::Address(*a)).collect()
}

/// ABI values for the n-party `deployVerifiedInstance` call.
pub fn nparty_deploy_args(bytecode: &[u8], sigs: &[Signature]) -> Vec<Value> {
    let mut out = vec![Value::Bytes(bytecode.to_vec())];
    for sig in sigs {
        out.push(Value::Uint(U256::from_u64(sig.v as u64)));
        out.push(Value::Bytes32(sig.r));
        out.push(Value::Bytes32(sig.s));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_lang::compile;

    #[test]
    fn padded_sources_compile_and_grow() {
        let mut sizes = Vec::new();
        for k in [0usize, 4, 16] {
            let src = padded_offchain_source(k);
            let c = compile(&src, "offChain").expect("padded source compiles");
            sizes.push(c.runtime.len());
        }
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
    }

    #[test]
    fn padded_zero_matches_canonical_shape() {
        // k = 0 keeps the same public interface as the canonical source.
        let src = padded_offchain_source(0);
        let c = compile(&src, "offChain").unwrap();
        assert!(c.analyzed.selector_of("returnDisputeResolution").is_some());
    }

    #[test]
    fn nparty_sources_compile_for_various_n() {
        for n in [1usize, 2, 4, 8] {
            let src = nparty_onchain_source(n);
            let c = compile(&src, "verifierN").unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert!(c.analyzed.selector_of("deployVerifiedInstance").is_some());
        }
    }

    #[test]
    fn nparty_signature_shape() {
        // n=3 → bytes + 9 sig words.
        let src = nparty_onchain_source(3);
        let p = sc_lang::parse(&src).unwrap();
        let f = p.contracts[0]
            .functions
            .iter()
            .find(|f| f.name == "deployVerifiedInstance")
            .unwrap();
        assert_eq!(f.params.len(), 1 + 9);
        assert_eq!(
            f.signature(),
            "deployVerifiedInstance(bytes,uint8,bytes32,bytes32,uint8,bytes32,bytes32,uint8,bytes32,bytes32)"
        );
    }
}
