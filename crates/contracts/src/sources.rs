//! The paper's contracts, in MiniSol.
//!
//! Three artifacts:
//!
//! * [`ONCHAIN_SRC`] — the on-chain betting contract of Algorithm 2, with
//!   the extra functions of Algorithms 5 and 6.
//! * [`OFFCHAIN_SRC`] — the off-chain contract of Algorithm 3 with a
//!   workload-parameterized `reveal()`.
//! * [`MONOLITHIC_SRC`] — the all-on-chain baseline (Fig. 1 left): the
//!   whole contract, `reveal()` included, executed by miners.
//!
//! Note on Algorithm 6: the paper's listing zeroes both `accountBalance`
//! entries *before* summing them for the transfer, which would always
//! transfer 0 wei. We implement the evidently intended behaviour (sum
//! first, then zero) and record the discrepancy in EXPERIMENTS.md.

/// On-chain contract: light/public functions + dispute extra functions.
pub const ONCHAIN_SRC: &str = r#"
pragma solidity ^0.4.24;

contract onChain {
    address[2] participant;
    mapping(address => uint256) accountBalance;
    uint256 T1;
    uint256 T2;
    uint256 T3;
    address public deployedAddr;

    constructor(address a, address b, uint256 t1, uint256 t2, uint256 t3) public {
        participant[0] = a;
        participant[1] = b;
        T1 = t1;
        T2 = t2;
        T3 = t3;
    }

    modifier certifiedparticipantOnly {
        require(msg.sender == participant[0] || msg.sender == participant[1]);
        _;
    }
    modifier beforeT1 { require(block.timestamp < T1); _; }
    modifier T1toT2 { require(block.timestamp >= T1 && block.timestamp < T2); _; }
    modifier T2toT3 { require(block.timestamp >= T2 && block.timestamp < T3); _; }
    modifier afterT3 { require(block.timestamp >= T3); _; }
    modifier amountMet {
        require(accountBalance[participant[0]] == 1 ether && accountBalance[participant[1]] == 1 ether);
        _;
    }
    modifier amountNotMet {
        require(accountBalance[participant[0]] != 1 ether || accountBalance[participant[1]] != 1 ether);
        _;
    }
    modifier deployedAddrOnly { require(msg.sender == deployedAddr); _; }

    // ---- light/public functions ----

    function deposit() public payable beforeT1 certifiedparticipantOnly {
        require(msg.value == 1 ether);
        require(accountBalance[msg.sender] == 0);
        accountBalance[msg.sender] = accountBalance[msg.sender] + msg.value;
    }

    function refundRoundOne() public beforeT1 certifiedparticipantOnly {
        uint256 amt = accountBalance[msg.sender];
        require(amt > 0);
        accountBalance[msg.sender] = 0;
        msg.sender.transfer(amt);
    }

    function refundRoundTwo() public T1toT2 certifiedparticipantOnly amountNotMet {
        uint256 amt = accountBalance[msg.sender];
        require(amt > 0);
        accountBalance[msg.sender] = 0;
        msg.sender.transfer(amt);
    }

    // The loser concedes: both deposits go to the other participant.
    function reassign() public T2toT3 certifiedparticipantOnly amountMet {
        uint256 total = accountBalance[participant[0]] + accountBalance[participant[1]];
        accountBalance[participant[0]] = 0;
        accountBalance[participant[1]] = 0;
        if (msg.sender == participant[0]) {
            participant[1].transfer(total);
        } else {
            participant[0].transfer(total);
        }
    }

    // ---- extra functions (dispute/resolve stage) ----

    function deployVerifiedInstance(bytes memory bytecode, uint8 va, bytes32 ra, bytes32 sa, uint8 vb, bytes32 rb, bytes32 sb) public afterT3 certifiedparticipantOnly amountMet {
        // Verify signatures: both participants signed this exact bytecode.
        bytes32 h_bytecode = keccak256(bytecode);
        address a = ecrecover(h_bytecode, va, ra, sa);
        address b = ecrecover(h_bytecode, vb, rb, sb);
        require(a == participant[0] && b == participant[1]);
        // Create the verified instance from the signed bytecode.
        address addr = create(bytecode);
        require(addr != address(0));
        deployedAddr = addr;
    }

    function enforceDisputeResolution(bool winner) external deployedAddrOnly {
        uint256 total = accountBalance[participant[0]] + accountBalance[participant[1]];
        accountBalance[participant[0]] = 0;
        accountBalance[participant[1]] = 0;
        if (winner == true) {
            participant[1].transfer(total);
        } else {
            participant[0].transfer(total);
        }
    }
}
"#;

/// Off-chain contract: the heavy/private `reveal()` plus the extra
/// function returning the dispute resolution.
///
/// `reveal()`'s cost is tunable through the constructor's `weight`
/// argument (iterations of a mixing loop), standing in for "an arbitrary
/// amount of computational cost" and "customized betting rules that are
/// private to the participants". The secrets and weight are baked into
/// the signed initcode, so they stay off-chain until a dispute.
pub const OFFCHAIN_SRC: &str = r#"
pragma solidity ^0.4.24;

interface OnChainContract {
    function enforceDisputeResolution(bool winner) external;
}

contract offChain {
    address[2] participant;
    uint256 secretA;
    uint256 secretB;
    uint256 weight;

    constructor(address a, address b, uint256 sa, uint256 sb, uint256 w) public {
        participant[0] = a;
        participant[1] = b;
        secretA = sa;
        secretB = sb;
        weight = w;
    }

    modifier certifiedparticipantOnly {
        require(msg.sender == participant[0] || msg.sender == participant[1]);
        _;
    }

    // The heavy/private function: the participants' private betting rule.
    // Winner = parity of an iterated mix of both secrets; `weight` scales
    // the computational cost.
    function reveal() private returns (bool) {
        uint256 acc = secretA + secretB;
        uint256 i = 0;
        while (i < weight) {
            acc = acc * 2654435761 + i;
            i = i + 1;
        }
        return acc % 2 == 1;
    }

    // Extra function: send the true result back to the on-chain contract.
    function returnDisputeResolution(address addr) public certifiedparticipantOnly {
        OnChainContract(addr).enforceDisputeResolution(reveal());
    }
}
"#;

/// The all-on-chain baseline: the *whole* contract deployed on-chain, so
/// miners execute `reveal()` too and the betting rule is public.
pub const MONOLITHIC_SRC: &str = r#"
pragma solidity ^0.4.24;

contract monolithic {
    address[2] participant;
    mapping(address => uint256) accountBalance;
    uint256 T1;
    uint256 T2;
    uint256 T3;
    uint256 secretA;
    uint256 secretB;
    uint256 weight;

    constructor(address a, address b, uint256 t1, uint256 t2, uint256 t3, uint256 sa, uint256 sb, uint256 w) public {
        participant[0] = a;
        participant[1] = b;
        T1 = t1;
        T2 = t2;
        T3 = t3;
        secretA = sa;
        secretB = sb;
        weight = w;
    }

    modifier certifiedparticipantOnly {
        require(msg.sender == participant[0] || msg.sender == participant[1]);
        _;
    }
    modifier beforeT1 { require(block.timestamp < T1); _; }
    modifier T1toT2 { require(block.timestamp >= T1 && block.timestamp < T2); _; }
    modifier afterT2 { require(block.timestamp >= T2); _; }
    modifier amountMet {
        require(accountBalance[participant[0]] == 1 ether && accountBalance[participant[1]] == 1 ether);
        _;
    }
    modifier amountNotMet {
        require(accountBalance[participant[0]] != 1 ether || accountBalance[participant[1]] != 1 ether);
        _;
    }

    function deposit() public payable beforeT1 certifiedparticipantOnly {
        require(msg.value == 1 ether);
        require(accountBalance[msg.sender] == 0);
        accountBalance[msg.sender] = accountBalance[msg.sender] + msg.value;
    }

    function refundRoundOne() public beforeT1 certifiedparticipantOnly {
        uint256 amt = accountBalance[msg.sender];
        require(amt > 0);
        accountBalance[msg.sender] = 0;
        msg.sender.transfer(amt);
    }

    function refundRoundTwo() public T1toT2 certifiedparticipantOnly amountNotMet {
        uint256 amt = accountBalance[msg.sender];
        require(amt > 0);
        accountBalance[msg.sender] = 0;
        msg.sender.transfer(amt);
    }

    // The heavy function, executed by every miner in this model.
    function reveal() private returns (bool) {
        uint256 acc = secretA + secretB;
        uint256 i = 0;
        while (i < weight) {
            acc = acc * 2654435761 + i;
            i = i + 1;
        }
        return acc % 2 == 1;
    }

    // Settlement computes the winner on-chain: anyone certified can call.
    function settle() public afterT2 certifiedparticipantOnly amountMet {
        bool winner = reveal();
        uint256 total = accountBalance[participant[0]] + accountBalance[participant[1]];
        accountBalance[participant[0]] = 0;
        accountBalance[participant[1]] = 0;
        if (winner == true) {
            participant[1].transfer(total);
        } else {
            participant[0].transfer(total);
        }
    }
}
"#;
