//! The confidential-deposit contract: committed balances, co-signed
//! settle-later vouchers, and a nullifier registry.
//!
//! The public contracts of the paper put every amount in calldata. This
//! variant keeps the *split* private: the pot (channel capacity) is
//! funded publicly, but each party's claim on it lives only inside a
//! Pedersen commitment. The lifecycle is
//!
//! 1. both parties `fund()` their public stake (in scaled units);
//! 2. both register an input commitment with a range proof
//!    (`depositCommitted`) — no amount appears in calldata;
//! 3. `activate(sx, sy)` checks the two commitments sum to
//!    `potUnits·G` (blindings cancel: `r_a + r_b ≡ 0 mod n`), pinning
//!    conservation for every later settlement;
//! 4. off-chain, the parties agree on output commitments and co-sign a
//!    [`SettlementVoucher`](sc_confidential::SettlementVoucher); either
//!    party — including one that crashed and came back — submits it via
//!    `settle(...)`. The contract recomputes the voucher digest with its
//!    `hash2` builtin, verifies both signatures, checks conservation
//!    against the activated sum, and burns the voucher's nullifier so
//!    the first submission wins and every replay reverts;
//! 5. each party `withdraw(v, r)`s by opening their own output
//!    commitment (revealing only their own final balance), or
//!    `reclaim()`s their stake after the deadline if no voucher ever
//!    landed. Settle and reclaim are mutually exclusive — `settle`
//!    reverts once any stake was reclaimed, `reclaim` reverts once
//!    settled — so no party can ever be paid on both paths.
//!
//! Outputs carry no range proofs at `settle` time: a voucher is only
//! valid with both signatures, and each party validates the other's
//! opening before signing — the on-chain sum check then rules out any
//! split that doesn't conserve the pot.

use sc_confidential::SignedVoucher;
use sc_lang::{compile, CompiledContract};
use sc_primitives::abi::Value;
use sc_primitives::{Address, U256};

/// `keccak256("sc-settle-voucher-v1")` — the domain constant baked into
/// the contract source. Pinned against the Rust side in tests.
pub const VOUCHER_DOMAIN_HASH_HEX: &str =
    "0x6bed7fd1f16e0d873651ce893f1825c929b7e11319971859f43998f0d5b310bb";

/// MiniSol source of the confidential-deposit contract.
pub const CONFIDENTIAL_SRC: &str = r#"
pragma solidity ^0.4.24;

contract confidentialDeposit {
    address[2] participant;
    mapping(address => uint256) stakeUnits;
    uint256 potUnits;
    uint256 unitScale;
    uint256 rangeBits;
    uint256 deadline;

    mapping(address => bool) funded;
    uint256 inAX; uint256 inAY;
    uint256 inBX; uint256 inBY;
    mapping(address => bool) committed;
    bool active;
    uint256 sumX; uint256 sumY;

    bool settled;
    uint256 outAX; uint256 outAY;
    uint256 outBX; uint256 outBY;
    mapping(bytes32 => bool) nullifierUsed;
    mapping(address => bool) withdrawn;
    mapping(address => bool) reclaimed;

    constructor(address a, address b, uint256 unitsA, uint256 unitsB,
                uint256 scale, uint256 bits, uint256 dl) public {
        participant[0] = a;
        participant[1] = b;
        stakeUnits[a] = unitsA;
        stakeUnits[b] = unitsB;
        potUnits = unitsA + unitsB;
        unitScale = scale;
        rangeBits = bits;
        deadline = dl;
    }

    modifier participantOnly {
        require(msg.sender == participant[0] || msg.sender == participant[1]);
        _;
    }

    // Public channel funding: the pot capacity is visible, the split
    // never is.
    function fund() public payable participantOnly {
        require(!funded[msg.sender]);
        require(msg.value == stakeUnits[msg.sender] * unitScale);
        funded[msg.sender] = true;
    }

    // Register a committed claim on the pot. Calldata carries only the
    // commitment and a range proof — never the amount.
    function depositCommitted(uint256 cx, uint256 cy, uint256 bits,
                              bytes memory proof) public participantOnly {
        require(!active);
        require(!committed[msg.sender]);
        require(bits == rangeBits);
        require(range_verify(cx, cy, bits, proof));
        if (msg.sender == participant[0]) {
            inAX = cx; inAY = cy;
        } else {
            inBX = cx; inBY = cy;
        }
        committed[msg.sender] = true;
    }

    // Both stakes in, both commitments in: check the commitments sum to
    // potUnits*G (so the blindings cancel) and freeze that sum as the
    // conservation anchor for settlement.
    function activate(uint256 sx, uint256 sy) public participantOnly {
        require(!active);
        require(funded[participant[0]] && funded[participant[1]]);
        require(committed[participant[0]] && committed[participant[1]]);
        require(commit_add_check(inAX, inAY, inBX, inBY, sx, sy));
        require(commit_verify(sx, sy, potUnits, 0));
        sumX = sx;
        sumY = sy;
        active = true;
    }

    // The digest the parties co-sign off-chain, recomputed word by word:
    // hash2(hash2(hash2(DOMAIN, this), hash2(cax, cay)), hash2(cbx, cby)).
    function voucherDigest(uint256 cax, uint256 cay, uint256 cbx, uint256 cby)
        public returns (bytes32)
    {
        bytes32 d1 = hash2(0x6bed7fd1f16e0d873651ce893f1825c929b7e11319971859f43998f0d5b310bb,
                           bytes32(this));
        bytes32 da = hash2(bytes32(cax), bytes32(cay));
        bytes32 db = hash2(bytes32(cbx), bytes32(cby));
        return hash2(hash2(d1, da), db);
    }

    // Settle-later: either party submits the co-signed voucher whenever
    // they come back online. First nullifier wins; replays revert. The
    // settle and reclaim paths are mutually exclusive: once any stake
    // has been reclaimed the pot no longer covers the voucher, so a
    // voucher can never land after a reclaim (and reclaim() requires
    // !settled for the converse) — otherwise a party could reclaim its
    // stake after the deadline and then still cash the voucher.
    function settle(uint256 cax, uint256 cay, uint256 cbx, uint256 cby,
                    uint8 va, bytes32 ra, bytes32 sa,
                    uint8 vb, bytes32 rb, bytes32 sb) public participantOnly {
        require(active);
        require(!settled);
        require(!reclaimed[participant[0]] && !reclaimed[participant[1]]);
        bytes32 digest = voucherDigest(cax, cay, cbx, cby);
        require(ecrecover(digest, va, ra, sa) == participant[0]);
        require(ecrecover(digest, vb, rb, sb) == participant[1]);
        require(commit_add_check(cax, cay, cbx, cby, sumX, sumY));
        bytes32 nul = nullifier(digest);
        require(!nullifierUsed[nul]);
        nullifierUsed[nul] = true;
        outAX = cax; outAY = cay;
        outBX = cbx; outBY = cby;
        settled = true;
    }

    // Open your own output commitment; only your final balance is
    // revealed, and only to withdraw it.
    function withdraw(uint256 v, uint256 r) public participantOnly {
        require(settled);
        require(!withdrawn[msg.sender]);
        require(!reclaimed[msg.sender]);
        if (msg.sender == participant[0]) {
            require(commit_verify(outAX, outAY, v, r));
        } else {
            require(commit_verify(outBX, outBY, v, r));
        }
        require(v <= potUnits);
        withdrawn[msg.sender] = true;
        msg.sender.transfer(v * unitScale);
    }

    // No voucher ever landed: after the deadline each side takes back
    // exactly what it staked.
    function reclaim() public participantOnly {
        require(!settled);
        require(block.timestamp >= deadline);
        require(funded[msg.sender]);
        require(!reclaimed[msg.sender]);
        reclaimed[msg.sender] = true;
        msg.sender.transfer(stakeUnits[msg.sender] * unitScale);
    }
}
"#;

/// Static parameters of one confidential channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfidentialParams {
    /// Party A's stake in units.
    pub units_a: u64,
    /// Party B's stake in units.
    pub units_b: u64,
    /// Wei per unit.
    pub unit_scale: U256,
    /// Range-proof width every deposit commitment must carry.
    pub range_bits: u32,
    /// Reclaim deadline (absolute timestamp).
    pub deadline: u64,
}

impl ConfidentialParams {
    /// Total pot in units.
    pub fn pot_units(&self) -> u64 {
        self.units_a + self.units_b
    }

    /// A party's stake in wei.
    pub fn stake_wei(&self, units: u64) -> U256 {
        U256::from_u64(units).wrapping_mul(self.unit_scale)
    }
}

/// Compiled confidential-deposit contract with calldata builders.
#[derive(Clone)]
pub struct ConfidentialContracts {
    /// The compiled on-chain artifact.
    pub deposit: CompiledContract,
}

impl ConfidentialContracts {
    /// Compiles the contract.
    pub fn new() -> Self {
        ConfidentialContracts {
            deposit: compile(CONFIDENTIAL_SRC, "confidentialDeposit")
                .expect("confidentialDeposit compiles"),
        }
    }

    /// Deployment initcode for two participants and channel parameters.
    pub fn initcode(&self, alice: Address, bob: Address, p: ConfidentialParams) -> Vec<u8> {
        self.deposit
            .initcode(&[
                Value::Address(alice),
                Value::Address(bob),
                Value::Uint(U256::from_u64(p.units_a)),
                Value::Uint(U256::from_u64(p.units_b)),
                Value::Uint(p.unit_scale),
                Value::Uint(U256::from_u64(p.range_bits as u64)),
                Value::Uint(U256::from_u64(p.deadline)),
            ])
            .expect("ctor args")
    }

    /// `fund()` calldata (send `stake_wei` along).
    pub fn fund(&self) -> Vec<u8> {
        self.deposit.calldata("fund", &[]).expect("abi")
    }

    /// `depositCommitted(cx, cy, bits, proof)` calldata.
    pub fn deposit_committed(
        &self,
        c: &sc_confidential::Commitment,
        bits: u32,
        proof: &[u8],
    ) -> Vec<u8> {
        self.deposit
            .calldata(
                "depositCommitted",
                &[
                    Value::Uint(c.x()),
                    Value::Uint(c.y()),
                    Value::Uint(U256::from_u64(bits as u64)),
                    Value::Bytes(proof.to_vec()),
                ],
            )
            .expect("abi")
    }

    /// `activate(sx, sy)` calldata from the homomorphic sum of the two
    /// deposit commitments.
    pub fn activate(&self, sum: &sc_confidential::Commitment) -> Vec<u8> {
        self.deposit
            .calldata("activate", &[Value::Uint(sum.x()), Value::Uint(sum.y())])
            .expect("abi")
    }

    /// `settle(...)` calldata from a co-signed voucher.
    pub fn settle(&self, v: &SignedVoucher) -> Vec<u8> {
        self.deposit
            .calldata(
                "settle",
                &[
                    Value::Uint(v.voucher.out_a.x()),
                    Value::Uint(v.voucher.out_a.y()),
                    Value::Uint(v.voucher.out_b.x()),
                    Value::Uint(v.voucher.out_b.y()),
                    Value::Uint(U256::from_u64(v.sig_a.v as u64)),
                    Value::Bytes32(v.sig_a.r),
                    Value::Bytes32(v.sig_a.s),
                    Value::Uint(U256::from_u64(v.sig_b.v as u64)),
                    Value::Bytes32(v.sig_b.r),
                    Value::Bytes32(v.sig_b.s),
                ],
            )
            .expect("abi")
    }

    /// `withdraw(v, r)` calldata opening the caller's output commitment.
    pub fn withdraw(&self, value: U256, blinding: U256) -> Vec<u8> {
        self.deposit
            .calldata("withdraw", &[Value::Uint(value), Value::Uint(blinding)])
            .expect("abi")
    }

    /// `reclaim()` calldata.
    pub fn reclaim(&self) -> Vec<u8> {
        self.deposit.calldata("reclaim", &[]).expect("abi")
    }
}

impl Default for ConfidentialContracts {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_chain::{Testnet, Wallet};
    use sc_confidential::{CommitmentBackend, PedersenBackend, SettlementVoucher, VOUCHER_DOMAIN};
    use sc_crypto::keccak256;
    use sc_primitives::ether;

    fn params(net: &Testnet) -> ConfidentialParams {
        ConfidentialParams {
            units_a: 30,
            units_b: 12,
            unit_scale: U256::from_u64(1_000_000_000), // 1 gwei per unit
            range_bits: 16,
            deadline: net.now() + 3600,
        }
    }

    /// Blindings that cancel: r_b = n - r_a, so C_a + C_b = pot·G.
    fn cancelling_blindings(r_a: u64) -> (U256, U256) {
        let ra = U256::from_u64(r_a);
        (ra, sc_crypto::secp256k1::n().wrapping_sub(ra))
    }

    struct Channel {
        net: Testnet,
        alice: Wallet,
        bob: Wallet,
        addr: Address,
        cc: ConfidentialContracts,
        p: ConfidentialParams,
    }

    /// Drives the channel through fund + deposit + activate.
    fn activated_channel() -> Channel {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("conf-alice", ether(100));
        let bob = net.funded_wallet("conf-bob", ether(100));
        let p = params(&net);
        let cc = ConfidentialContracts::new();
        let addr = net
            .deploy(
                &alice,
                cc.initcode(alice.address, bob.address, p),
                U256::ZERO,
                5_000_000,
            )
            .unwrap()
            .contract_address
            .unwrap();
        let backend = PedersenBackend;
        let (r_a, r_b) = cancelling_blindings(7777);
        let c_a = backend.commit(U256::from_u64(p.units_a), r_a);
        let c_b = backend.commit(U256::from_u64(p.units_b), r_b);
        for (w, units, c, r) in [(&alice, p.units_a, &c_a, r_a), (&bob, p.units_b, &c_b, r_b)] {
            let r1 = net
                .execute(w, addr, p.stake_wei(units), cc.fund(), 300_000)
                .unwrap();
            assert!(r1.success, "fund: {:?}", r1.failure);
            let proof = backend
                .prove_range(U256::from_u64(units), r, p.range_bits)
                .unwrap();
            let r2 = net
                .execute(
                    w,
                    addr,
                    U256::ZERO,
                    cc.deposit_committed(c, p.range_bits, proof.as_bytes()),
                    5_000_000,
                )
                .unwrap();
            assert!(r2.success, "deposit: {:?}", r2.failure);
        }
        let sum = backend.add(&c_a, &c_b);
        let r = net
            .execute(&alice, addr, U256::ZERO, cc.activate(&sum), 1_000_000)
            .unwrap();
        assert!(r.success, "activate: {:?}", r.failure);
        Channel {
            net,
            alice,
            bob,
            addr,
            cc,
            p,
        }
    }

    /// A voucher moving `delta` units from Alice to Bob, with output
    /// blindings that still cancel.
    fn voucher_for(ch: &Channel, delta: u64) -> (SignedVoucher, u64, U256, u64, U256) {
        let backend = PedersenBackend;
        let va = ch.p.units_a - delta;
        let vb = ch.p.units_b + delta;
        let (ra, rb) = cancelling_blindings(4242);
        let out_a = backend.commit(U256::from_u64(va), ra);
        let out_b = backend.commit(U256::from_u64(vb), rb);
        let voucher = SettlementVoucher {
            contract: ch.addr,
            out_a,
            out_b,
        };
        let signed = voucher.co_sign(&ch.alice.key, &ch.bob.key);
        (signed, va, ra, vb, rb)
    }

    #[test]
    fn domain_hash_constant_matches_rust() {
        assert_eq!(
            format!("{:?}", keccak256(VOUCHER_DOMAIN)),
            VOUCHER_DOMAIN_HASH_HEX,
            "contract's baked-in domain hash must track VOUCHER_DOMAIN"
        );
        assert!(CONFIDENTIAL_SRC.contains(&VOUCHER_DOMAIN_HASH_HEX[2..]));
    }

    #[test]
    fn contract_digest_matches_rust_voucher_digest() {
        let mut ch = activated_channel();
        let (signed, ..) = voucher_for(&ch, 5);
        let data = ch
            .cc
            .deposit
            .calldata(
                "voucherDigest",
                &[
                    Value::Uint(signed.voucher.out_a.x()),
                    Value::Uint(signed.voucher.out_a.y()),
                    Value::Uint(signed.voucher.out_b.x()),
                    Value::Uint(signed.voucher.out_b.y()),
                ],
            )
            .unwrap();
        let r = ch
            .net
            .execute(&ch.alice, ch.addr, U256::ZERO, data, 1_000_000)
            .unwrap();
        assert!(r.success, "{:?}", r.failure);
        assert_eq!(r.output, signed.voucher.digest().as_bytes());
    }

    #[test]
    fn full_confidential_lifecycle_settles_and_withdraws() {
        let mut ch = activated_channel();
        let (signed, va, ra, vb, rb) = voucher_for(&ch, 9);
        // Bob (say Alice went offline) submits the voucher later.
        let r = ch
            .net
            .execute(
                &ch.bob,
                ch.addr,
                U256::ZERO,
                ch.cc.settle(&signed),
                2_000_000,
            )
            .unwrap();
        assert!(r.success, "settle: {:?}", r.failure);
        // Replay by the other party reverts: nullifier burned.
        let r = ch
            .net
            .execute(
                &ch.alice,
                ch.addr,
                U256::ZERO,
                ch.cc.settle(&signed),
                2_000_000,
            )
            .unwrap();
        assert!(!r.success, "replayed voucher must revert");
        // Each side withdraws by opening its own commitment.
        for (w, v, r_open) in [(&ch.alice, va, ra), (&ch.bob, vb, rb)] {
            let pot_before = ch.net.balance_of(ch.addr);
            let r = ch
                .net
                .execute(
                    w,
                    ch.addr,
                    U256::ZERO,
                    ch.cc.withdraw(U256::from_u64(v), r_open),
                    1_000_000,
                )
                .unwrap();
            assert!(r.success, "withdraw: {:?}", r.failure);
            assert_eq!(
                ch.net.balance_of(ch.addr),
                pot_before.wrapping_sub(ch.p.stake_wei(v)),
                "withdrawal must pay out {v} units"
            );
        }
        assert_eq!(ch.net.balance_of(ch.addr), U256::ZERO, "pot fully drained");
    }

    #[test]
    fn wrong_opening_and_double_withdraw_revert() {
        let mut ch = activated_channel();
        let (signed, va, ra, ..) = voucher_for(&ch, 3);
        assert!(
            ch.net
                .execute(
                    &ch.alice,
                    ch.addr,
                    U256::ZERO,
                    ch.cc.settle(&signed),
                    2_000_000
                )
                .unwrap()
                .success
        );
        // Opening with the wrong value or blinding reverts.
        let bad = ch
            .net
            .execute(
                &ch.alice,
                ch.addr,
                U256::ZERO,
                ch.cc.withdraw(U256::from_u64(va + 1), ra),
                1_000_000,
            )
            .unwrap();
        assert!(!bad.success, "wrong value must revert");
        // Correct opening succeeds once, then the flag blocks it.
        assert!(
            ch.net
                .execute(
                    &ch.alice,
                    ch.addr,
                    U256::ZERO,
                    ch.cc.withdraw(U256::from_u64(va), ra),
                    1_000_000,
                )
                .unwrap()
                .success
        );
        let again = ch
            .net
            .execute(
                &ch.alice,
                ch.addr,
                U256::ZERO,
                ch.cc.withdraw(U256::from_u64(va), ra),
                1_000_000,
            )
            .unwrap();
        assert!(!again.success, "double withdraw must revert");
    }

    #[test]
    fn non_conserving_voucher_rejected() {
        let mut ch = activated_channel();
        let backend = PedersenBackend;
        // Outputs that sum to pot+1: both signatures valid, sum check fails.
        let (ra, rb) = cancelling_blindings(999);
        let voucher = SettlementVoucher {
            contract: ch.addr,
            out_a: backend.commit(U256::from_u64(ch.p.units_a), ra),
            out_b: backend.commit(U256::from_u64(ch.p.units_b + 1), rb),
        };
        let signed = voucher.co_sign(&ch.alice.key, &ch.bob.key);
        let r = ch
            .net
            .execute(
                &ch.bob,
                ch.addr,
                U256::ZERO,
                ch.cc.settle(&signed),
                2_000_000,
            )
            .unwrap();
        assert!(!r.success, "inflating voucher must revert");
    }

    #[test]
    fn half_signed_voucher_rejected() {
        let mut ch = activated_channel();
        let (mut signed, ..) = voucher_for(&ch, 2);
        // Replace Bob's signature with Alice's: recovery won't match B.
        signed.sig_b = signed.sig_a;
        let r = ch
            .net
            .execute(
                &ch.alice,
                ch.addr,
                U256::ZERO,
                ch.cc.settle(&signed),
                2_000_000,
            )
            .unwrap();
        assert!(!r.success, "voucher without both signatures must revert");
    }

    #[test]
    fn activation_requires_cancelling_blindings() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("conf-alice2", ether(100));
        let bob = net.funded_wallet("conf-bob2", ether(100));
        let p = params(&net);
        let cc = ConfidentialContracts::new();
        let addr = net
            .deploy(
                &alice,
                cc.initcode(alice.address, bob.address, p),
                U256::ZERO,
                5_000_000,
            )
            .unwrap()
            .contract_address
            .unwrap();
        let backend = PedersenBackend;
        // Blindings that do NOT cancel.
        let (r_a, r_b) = (U256::from_u64(1), U256::from_u64(2));
        let c_a = backend.commit(U256::from_u64(p.units_a), r_a);
        let c_b = backend.commit(U256::from_u64(p.units_b), r_b);
        for (w, units, c, r) in [(&alice, p.units_a, &c_a, r_a), (&bob, p.units_b, &c_b, r_b)] {
            assert!(
                net.execute(w, addr, p.stake_wei(units), cc.fund(), 300_000)
                    .unwrap()
                    .success
            );
            let proof = backend
                .prove_range(U256::from_u64(units), r, p.range_bits)
                .unwrap();
            assert!(
                net.execute(
                    w,
                    addr,
                    U256::ZERO,
                    cc.deposit_committed(c, p.range_bits, proof.as_bytes()),
                    5_000_000,
                )
                .unwrap()
                .success
            );
        }
        // The sum still has an H component; commit_verify(S, pot, 0) fails.
        let sum = backend.add(&c_a, &c_b);
        let r = net
            .execute(&alice, addr, U256::ZERO, cc.activate(&sum), 1_000_000)
            .unwrap();
        assert!(!r.success, "non-cancelling blindings must fail activation");
    }

    #[test]
    fn settle_and_withdraw_blocked_after_reclaim() {
        let mut ch = activated_channel();
        let (signed, _, _, vb, rb) = voucher_for(&ch, 9);
        ch.net.advance_time(4000);
        // Alice takes her stake back after the deadline...
        let r = ch
            .net
            .execute(&ch.alice, ch.addr, U256::ZERO, ch.cc.reclaim(), 300_000)
            .unwrap();
        assert!(r.success, "reclaim: {:?}", r.failure);
        // ...so the still-valid co-signed voucher must no longer land —
        // from either party — or Alice would be paid twice and Bob's
        // withdraw would hit an insolvent pot.
        for w in [&ch.alice, &ch.bob] {
            let r = ch
                .net
                .execute(w, ch.addr, U256::ZERO, ch.cc.settle(&signed), 2_000_000)
                .unwrap();
            assert!(!r.success, "settle after a reclaim must revert");
        }
        // And with settlement impossible, the voucher opening pays nobody.
        let r = ch
            .net
            .execute(
                &ch.bob,
                ch.addr,
                U256::ZERO,
                ch.cc.withdraw(U256::from_u64(vb), rb),
                1_000_000,
            )
            .unwrap();
        assert!(!r.success, "withdraw without settlement must revert");
        // Bob's recourse is his own stake; the pot ends exactly empty.
        let r = ch
            .net
            .execute(&ch.bob, ch.addr, U256::ZERO, ch.cc.reclaim(), 300_000)
            .unwrap();
        assert!(r.success, "reclaim: {:?}", r.failure);
        assert_eq!(ch.net.balance_of(ch.addr), U256::ZERO, "pot conserved");
    }

    #[test]
    fn reclaim_after_deadline_without_settlement() {
        let mut ch = activated_channel();
        // Too early.
        let r = ch
            .net
            .execute(&ch.alice, ch.addr, U256::ZERO, ch.cc.reclaim(), 300_000)
            .unwrap();
        assert!(!r.success, "reclaim before deadline must revert");
        ch.net.advance_time(4000);
        for (w, units) in [(&ch.alice, ch.p.units_a), (&ch.bob, ch.p.units_b)] {
            let pot_before = ch.net.balance_of(ch.addr);
            let r = ch
                .net
                .execute(w, ch.addr, U256::ZERO, ch.cc.reclaim(), 300_000)
                .unwrap();
            assert!(r.success, "reclaim: {:?}", r.failure);
            assert_eq!(
                ch.net.balance_of(ch.addr),
                pot_before.wrapping_sub(ch.p.stake_wei(units)),
                "reclaim must return the {units}-unit stake"
            );
        }
        assert_eq!(ch.net.balance_of(ch.addr), U256::ZERO);
    }
}
