//! Off-chain settlement vouchers and their nullifiers.
//!
//! A voucher fixes the outcome of an off-chain session as a pair of
//! output commitments, co-signed by both participants. Either party can
//! submit it on-chain later; the contract derives one nullifier per
//! voucher digest and records it, so the first submission wins and
//! every replay reverts — a nullifier-instead-of-nonce design that
//! keeps settlement order-independent across nodes.
//!
//! The digest is a chain of two-word keccaks ([`hash2`]) rather than
//! one hash over a concatenation, because MiniSol has no byte-string
//! concatenation: the contract recomputes the exact same chain with its
//! `hash2` builtin, word by word.

use crate::pedersen::Commitment;
use sc_crypto::ecdsa::{recover_address, PrivateKey, Signature};
use sc_crypto::keccak::keccak256;
use sc_primitives::{Address, H256};

/// Domain tag mixed into every voucher digest.
pub const VOUCHER_DOMAIN: &[u8] = b"sc-settle-voucher-v1";

/// Domain tag prefixed to every nullifier preimage.
pub const NULLIFIER_DOMAIN: &[u8] = b"sc-nullifier-v1";

/// `keccak256(a ‖ b)` over two 32-byte words — the primitive the
/// MiniSol `hash2` builtin exposes, used here so Rust and contract
/// digests agree bit for bit.
pub fn hash2(a: H256, b: H256) -> H256 {
    let mut buf = [0u8; 64];
    buf[..32].copy_from_slice(a.as_bytes());
    buf[32..].copy_from_slice(b.as_bytes());
    keccak256(&buf)
}

/// The domain-separated nullifier of arbitrary input — what the
/// `NULLIFIER` precompile computes over its calldata.
pub fn nullifier(data: &[u8]) -> H256 {
    let mut buf = Vec::with_capacity(NULLIFIER_DOMAIN.len() + data.len());
    buf.extend_from_slice(NULLIFIER_DOMAIN);
    buf.extend_from_slice(data);
    keccak256(&buf)
}

/// An unsigned settlement voucher: the session's contract and the two
/// output commitments the parties agreed on off-chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SettlementVoucher {
    /// The `ConfidentialDeposit` instance being settled.
    pub contract: Address,
    /// Party A's output commitment.
    pub out_a: Commitment,
    /// Party B's output commitment.
    pub out_b: Commitment,
}

impl SettlementVoucher {
    /// The signing digest: a [`hash2`] chain over the domain tag, the
    /// contract address and both commitments' coordinates, mirrored
    /// exactly by the contract's `voucherDigest`.
    pub fn digest(&self) -> H256 {
        let domain = keccak256(VOUCHER_DOMAIN);
        let d1 = hash2(domain, H256::from_u256(self.contract.to_u256()));
        let d2 = hash2(
            H256::from_u256(self.out_a.x()),
            H256::from_u256(self.out_a.y()),
        );
        let d3 = hash2(
            H256::from_u256(self.out_b.x()),
            H256::from_u256(self.out_b.y()),
        );
        hash2(hash2(d1, d2), d3)
    }

    /// Signs the digest with a participant key.
    pub fn sign(&self, key: &PrivateKey) -> Signature {
        key.sign(self.digest())
    }

    /// Co-signs with both keys, producing a submittable voucher.
    pub fn co_sign(self, key_a: &PrivateKey, key_b: &PrivateKey) -> SignedVoucher {
        SignedVoucher {
            sig_a: self.sign(key_a),
            sig_b: self.sign(key_b),
            voucher: self,
        }
    }
}

/// A voucher carrying both participants' signatures — everything either
/// party needs to settle on-chain, whenever they come back online.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SignedVoucher {
    /// The voucher body.
    pub voucher: SettlementVoucher,
    /// Party A's signature over the digest.
    pub sig_a: Signature,
    /// Party B's signature over the digest.
    pub sig_b: Signature,
}

impl SignedVoucher {
    /// The voucher's nullifier: one per digest, so one settlement per
    /// voucher no matter who submits or how often.
    pub fn nullifier(&self) -> H256 {
        nullifier(self.voucher.digest().as_bytes())
    }

    /// True iff both signatures recover to the expected participants.
    pub fn verify(&self, party_a: Address, party_b: Address) -> bool {
        let digest = self.voucher.digest();
        recover_address(digest, &self.sig_a).is_ok_and(|a| a == party_a)
            && recover_address(digest, &self.sig_b).is_ok_and(|b| b == party_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommitmentBackend, PedersenBackend};
    use sc_primitives::U256;

    fn sample() -> SettlementVoucher {
        let b = PedersenBackend;
        SettlementVoucher {
            contract: Address::from_u256(U256::from_u64(0xc0ffee)),
            out_a: b.commit(U256::from_u64(30), U256::from_u64(5)),
            out_b: b.commit(U256::from_u64(12), U256::from_u64(6)),
        }
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        let v = sample();
        assert_eq!(v.digest(), v.digest());
        let mut w = v;
        w.contract = Address::from_u256(U256::from_u64(0xdead));
        assert_ne!(v.digest(), w.digest());
        let mut x = v;
        x.out_a = x.out_b;
        assert_ne!(v.digest(), x.digest());
    }

    #[test]
    fn co_sign_verifies_and_binds_parties() {
        let ka = PrivateKey::from_seed("voucher-alice");
        let kb = PrivateKey::from_seed("voucher-bob");
        let signed = sample().co_sign(&ka, &kb);
        assert!(signed.verify(ka.address(), kb.address()));
        assert!(!signed.verify(kb.address(), ka.address()));
    }

    #[test]
    fn nullifier_is_digest_scoped() {
        let ka = PrivateKey::from_seed("voucher-alice");
        let kb = PrivateKey::from_seed("voucher-bob");
        let signed = sample().co_sign(&ka, &kb);
        assert_eq!(
            signed.nullifier(),
            nullifier(signed.voucher.digest().as_bytes())
        );
        let mut other = sample();
        other.out_a = PedersenBackend.commit(U256::from_u64(31), U256::from_u64(5));
        assert_ne!(signed.nullifier(), nullifier(other.digest().as_bytes()));
    }
}
