//! A bounded range argument: the committed value lies in `[0, 2^bits)`.
//!
//! Classic bit-decomposition construction. The prover commits to each
//! bit, `C_i = b_i·G + r_i·H`, choosing the bit blindings so that
//! `Σ 2^i·C_i = C`; the verifier re-checks that linear relation, which
//! leaves only "each `C_i` hides 0 or 1" to prove. That disjunction is
//! a per-bit Chaum-Pedersen OR proof (CDS composition): the prover
//! simulates the false branch, answers the true branch honestly, and
//! splits a Fiat-Shamir challenge `e = e_0 + e_1` between them — the
//! verifier checks `z_j·H == A_j + e_j·Y_j` with `Y_0 = C_i` and
//! `Y_1 = C_i − G`.
//!
//! The proof is a fixed 288 bytes per bit
//! (`C_i ‖ A_0 ‖ A_1 ‖ e_0 ‖ z_0 ‖ z_1`), so calldata cost scales
//! linearly with the bound — which is why deposits use scaled units and
//! a 16-bit default rather than full 64-bit amounts.

use crate::pedersen::{
    decode_point, encode_point, generator_h, points_equal, scalar_sub, Commitment, PedersenBackend,
};
use sc_crypto::keccak::keccak256;
use sc_crypto::secp256k1::{n, scalar, Point};
use sc_primitives::U256;

/// Serialized size of one per-bit entry.
pub const BYTES_PER_BIT: usize = 288;

/// Largest supported bit width.
pub const MAX_BITS: u32 = 64;

/// Default bit width for deposits (values are in scaled units).
pub const DEFAULT_BITS: u32 = 16;

/// A serialized range proof for a specific bit width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeProof {
    bits: u32,
    bytes: Vec<u8>,
}

impl RangeProof {
    /// The bit width this proof was produced for.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The wire bytes (what goes into calldata).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the proof into its wire bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Deterministic hash-to-scalar for prover-side nonces and simulated
/// branch values. These only need to be unpredictable to outsiders, and
/// determinism keeps every fixture and golden vector reproducible.
fn h2s(tag: &[u8], r: U256, i: u64) -> U256 {
    let mut buf = Vec::with_capacity(tag.len() + 40);
    buf.extend_from_slice(tag);
    buf.extend_from_slice(&r.to_be_bytes());
    buf.extend_from_slice(&i.to_be_bytes());
    scalar::reduce(keccak256(&buf).to_u256())
}

/// The per-bit Fiat-Shamir challenge, bound to the *full* per-bit
/// statement: the outer commitment, the proof width, the bit index, the
/// per-bit commitment `C_i` and both first-round messages. Binding
/// `C_i` is soundness-critical — if the challenge were independent of
/// `C_i`, a prover could fix `e` first and then solve either branch for
/// a `C_i` of its choosing (e.g. `e_0 = 0`, `A_0 = z_0·H` makes branch
/// 0 hold for *any* `C_i`), forging per-bit proofs for non-bit values.
fn challenge(c: &Commitment, bits: u32, i: u64, ci: &Point, a0: &Point, a1: &Point) -> U256 {
    let mut buf = Vec::with_capacity(16 + 64 + 4 + 8 + 64 * 3);
    buf.extend_from_slice(b"sc-range-chal-v2");
    buf.extend_from_slice(&c.to_bytes());
    buf.extend_from_slice(&bits.to_be_bytes());
    buf.extend_from_slice(&i.to_be_bytes());
    buf.extend_from_slice(&encode_point(ci));
    buf.extend_from_slice(&encode_point(a0));
    buf.extend_from_slice(&encode_point(a1));
    scalar::reduce(keccak256(&buf).to_u256())
}

/// Produces a proof that `commit(value, blinding)` hides a value in
/// `[0, 2^bits)`. Returns `None` for unsupported widths or out-of-range
/// values.
pub fn prove(
    backend: &PedersenBackend,
    value: U256,
    blinding: U256,
    bits: u32,
) -> Option<RangeProof> {
    use crate::CommitmentBackend;

    if bits == 0 || bits > MAX_BITS || value.bits() > bits {
        return None;
    }
    let r = scalar::reduce(blinding);
    let c = backend.commit(value, r);
    let g = Point::generator();
    let h = generator_h();

    // Bit blindings: r_1..r_{bits-1} are hash-derived, r_0 closes the
    // linear relation Σ 2^i·r_i = r.
    let mut bit_r = vec![U256::ZERO; bits as usize];
    let mut acc = U256::ZERO;
    for (i, slot) in bit_r.iter_mut().enumerate().skip(1) {
        let ri = h2s(b"sc-range-blind-v1", r, i as u64);
        *slot = ri;
        let pow2 = U256::ONE.shl_bits(i as u32);
        acc = scalar::add(acc, scalar::mul(pow2, ri));
    }
    bit_r[0] = scalar_sub(r, acc);

    let mut bytes = Vec::with_capacity(bits as usize * BYTES_PER_BIT);
    for (i, &ri) in bit_r.iter().enumerate() {
        let b = value.bit(i as u32);
        let ci = {
            let rh = h.mul_scalar(ri);
            if b {
                g.add(&rh)
            } else {
                rh
            }
        };

        // Simulate the false branch, then answer the true one.
        let e_sim = h2s(b"sc-range-sim-e-v1", ri, i as u64);
        let z_sim = h2s(b"sc-range-sim-z-v1", ri, i as u64);
        let y_sim = if b { ci } else { ci.add(&g.negate()) };
        let a_sim = h.mul_scalar(z_sim).add(&y_sim.mul_scalar(e_sim).negate());
        let k = h2s(b"sc-range-nonce-v1", ri, i as u64);
        let a_real = h.mul_scalar(k);

        let (a0, a1) = if b { (a_sim, a_real) } else { (a_real, a_sim) };
        let e = challenge(&c, bits, i as u64, &ci, &a0, &a1);
        let e_real = scalar_sub(e, e_sim);
        let z_real = scalar::add(k, scalar::mul(e_real, ri));
        let (e0, z0, z1) = if b {
            (e_sim, z_sim, z_real)
        } else {
            (e_real, z_real, z_sim)
        };

        bytes.extend_from_slice(&encode_point(&ci));
        bytes.extend_from_slice(&encode_point(&a0));
        bytes.extend_from_slice(&encode_point(&a1));
        bytes.extend_from_slice(&e0.to_be_bytes());
        bytes.extend_from_slice(&z0.to_be_bytes());
        bytes.extend_from_slice(&z1.to_be_bytes());
    }
    Some(RangeProof { bits, bytes })
}

/// Verifies a serialized range proof against a commitment. Rejects any
/// malformed input (wrong length, off-curve or non-canonical points,
/// non-canonical scalars) — never panics. This is the routine the
/// `RANGE_VERIFY` precompile runs on raw calldata.
pub fn verify(c: &Commitment, bits: u32, proof: &[u8]) -> bool {
    if bits == 0 || bits > MAX_BITS {
        return false;
    }
    if proof.len() != bits as usize * BYTES_PER_BIT {
        return false;
    }
    let g_neg = Point::generator().negate();
    let h = generator_h();
    let mut acc = Point::INFINITY;
    for i in 0..bits as usize {
        let entry = &proof[i * BYTES_PER_BIT..(i + 1) * BYTES_PER_BIT];
        let Ok(ci) = decode_point(&entry[..64]) else {
            return false;
        };
        let Ok(a0) = decode_point(&entry[64..128]) else {
            return false;
        };
        let Ok(a1) = decode_point(&entry[128..192]) else {
            return false;
        };
        let e0 = U256::from_be_slice(&entry[192..224]);
        let z0 = U256::from_be_slice(&entry[224..256]);
        let z1 = U256::from_be_slice(&entry[256..288]);
        if e0 >= n() || z0 >= n() || z1 >= n() {
            return false;
        }
        let e = challenge(c, bits, i as u64, &ci, &a0, &a1);
        let e1 = scalar_sub(e, e0);

        // Branch 0: C_i hides 0, i.e. C_i = r·H.
        if !points_equal(&h.mul_scalar(z0), &a0.add(&ci.mul_scalar(e0))) {
            return false;
        }
        // Branch 1: C_i hides 1, i.e. C_i − G = r·H.
        let y1 = ci.add(&g_neg);
        if !points_equal(&h.mul_scalar(z1), &a1.add(&y1.mul_scalar(e1))) {
            return false;
        }

        acc = acc.add(&ci.mul_scalar(U256::ONE.shl_bits(i as u32)));
    }
    points_equal(&acc, &c.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CommitmentBackend;

    #[test]
    fn roundtrip_various_values() {
        let b = PedersenBackend;
        for (v, r, bits) in [
            (0u64, 1u64, 8u32),
            (1, 2, 8),
            (255, 3, 8),
            (42, 7, 16),
            (65535, 11, 16),
        ] {
            let v = U256::from_u64(v);
            let r = U256::from_u64(r);
            let proof = b.prove_range(v, r, bits).unwrap();
            let c = b.commit(v, r);
            assert!(
                b.verify_range(&c, bits, proof.as_bytes()),
                "v fits {bits} bits"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_value_at_prove_time() {
        let b = PedersenBackend;
        assert!(b.prove_range(U256::from_u64(256), U256::ONE, 8).is_none());
        assert!(b.prove_range(U256::ONE, U256::ONE, 0).is_none());
        assert!(b.prove_range(U256::ONE, U256::ONE, 65).is_none());
    }

    #[test]
    fn challenge_binding_blocks_per_bit_forgery() {
        // Regression for weak Fiat-Shamir: before `C_i` was bound into
        // the challenge, a prover could set `e0 = 0` with `A0 = z0·H`
        // (branch 0 then holds for ANY `C_i`), fix `A1 = u·G + a·H`,
        // learn `e`, and back-solve branch 1 with
        //   `C_i = (1 − u/e)·G + ((z1 − a)/e)·H`,
        // a per-bit "proof" of the attacker-known non-bit value
        // `1 − u/e`; a k-list match on the sum relation then stitches
        // such entries into a passing proof for an out-of-range
        // commitment. With `C_i` hashed the back-solve is circular:
        // the `C_i` the equations accept changes the challenge it was
        // solved against.
        let backend = PedersenBackend;
        let g = Point::generator();
        let h = generator_h();
        let bits = 2u32;

        // Target: C hides 5, outside [0, 4).
        let r_c = U256::from_u64(77);
        let c = backend.commit(U256::from_u64(5), r_c);

        // Honest entry for bit index 1 (bit value 1, blinding r1).
        let r1 = U256::from_u64(33);
        let ci1 = g.add(&h.mul_scalar(r1));
        let (e0_1, z0_1) = (U256::from_u64(11), U256::from_u64(22));
        let a0_1 = h.mul_scalar(z0_1).add(&ci1.mul_scalar(e0_1).negate());
        let k = U256::from_u64(44);
        let a1_1 = h.mul_scalar(k);
        let e_1 = challenge(&c, bits, 1, &ci1, &a0_1, &a1_1);
        let z1_1 = scalar::add(k, scalar::mul(scalar_sub(e_1, e0_1), r1));

        // The sum relation then forces entry 0 to commit to 3:
        // C_0 = C − 2·C_1.
        let ci0_needed = c.0.add(&ci1.mul_scalar(U256::from_u64(2)).negate());

        // Forge entry 0 the pre-fix way.
        let z0_f = U256::from_u64(55);
        let a0_f = h.mul_scalar(z0_f);
        let (u, a) = (U256::from_u64(66), U256::from_u64(88));
        let a1_f = g.mul_scalar(u).add(&h.mul_scalar(a));
        let z1_f = U256::from_u64(99);

        // The attacker now needs `e` before choosing `C_0` — but `C_0`
        // is hashed. Guess the point the sum check needs, then
        // back-solve branch 1 under that challenge.
        let e_f = challenge(&c, bits, 0, &ci0_needed, &a0_f, &a1_f);
        let e_inv = scalar::inv(e_f);
        let v_solved = scalar_sub(U256::ONE, scalar::mul(u, e_inv));
        let rho = scalar::mul(scalar_sub(z1_f, a), e_inv);
        let ci0_solved = g.mul_scalar(v_solved).add(&h.mul_scalar(rho));

        // The circle does not close: the accepted point differs from
        // the guessed one, so re-hashing it shifts the challenge.
        assert!(!points_equal(&ci0_solved, &ci0_needed));
        assert_ne!(
            challenge(&c, bits, 0, &ci0_solved, &a0_f, &a1_f),
            e_f,
            "substituting the solved C_0 must shift the challenge"
        );

        // Either spelling of the forged entry fails verification.
        for ci0 in [ci0_needed, ci0_solved] {
            let mut proof = Vec::with_capacity(2 * BYTES_PER_BIT);
            for pt in [&ci0, &a0_f, &a1_f] {
                proof.extend_from_slice(&encode_point(pt));
            }
            proof.extend_from_slice(&U256::ZERO.to_be_bytes()); // e0 = 0
            proof.extend_from_slice(&z0_f.to_be_bytes());
            proof.extend_from_slice(&z1_f.to_be_bytes());
            for pt in [&ci1, &a0_1, &a1_1] {
                proof.extend_from_slice(&encode_point(pt));
            }
            proof.extend_from_slice(&e0_1.to_be_bytes());
            proof.extend_from_slice(&z0_1.to_be_bytes());
            proof.extend_from_slice(&z1_1.to_be_bytes());
            assert!(!verify(&c, bits, &proof), "forged proof must be rejected");
        }
    }

    #[test]
    fn rejects_wrong_commitment_and_tampered_proof() {
        let b = PedersenBackend;
        let (v, r) = (U256::from_u64(42), U256::from_u64(9));
        let proof = b.prove_range(v, r, 8).unwrap();
        let other = b.commit(U256::from_u64(43), r);
        assert!(!b.verify_range(&other, 8, proof.as_bytes()));

        // Any single flipped byte must invalidate the proof.
        let c = b.commit(v, r);
        let mut tampered = proof.as_bytes().to_vec();
        tampered[100] ^= 1;
        assert!(!b.verify_range(&c, 8, &tampered));

        // Truncated / oversized / wrong-width inputs fail cleanly.
        assert!(!b.verify_range(&c, 8, &proof.as_bytes()[..proof.as_bytes().len() - 1]));
        assert!(!b.verify_range(&c, 16, proof.as_bytes()));
        assert!(!b.verify_range(&c, 8, &[]));
    }
}
