//! Confidential values for on/off-chain contracts: Pedersen commitments
//! over the stack's own secp256k1, a bounded bit-decomposition range
//! argument, and co-signed settlement vouchers whose nullifiers make
//! "settle later" replay-safe.
//!
//! The crate is deliberately split along the trust boundary:
//!
//! * [`pedersen`] — the commitment scheme itself: a nothing-up-my-sleeve
//!   second generator `H`, `C = v·G + r·H`, homomorphic add/sub, and the
//!   canonical 64-byte point wire encoding shared with the EVM
//!   precompiles.
//! * [`range`] — a Σ-protocol range argument (per-bit Chaum-Pedersen OR
//!   proofs, Fiat-Shamir) bounding committed deposits below `2^bits`.
//! * [`voucher`] — off-chain settlement artifacts: the voucher digest
//!   (mirrored bit-for-bit by the MiniSol `hash2` chain), ECDSA
//!   co-signing, and the domain-separated nullifier.
//!
//! Everything verifiable on-chain goes through [`CommitmentBackend`], so
//! a real SNARK verifier could replace the sigma-protocol backend
//! without touching the contracts or sessions that consume it.

pub mod pedersen;
pub mod range;
pub mod voucher;

use sc_primitives::U256;

pub use pedersen::{decode_point, encode_point, Commitment, DecodeError, PedersenBackend};
pub use range::RangeProof;
pub use voucher::{
    hash2, nullifier, SettlementVoucher, SignedVoucher, NULLIFIER_DOMAIN, VOUCHER_DOMAIN,
};

/// The pluggable verifier boundary: everything a contract-facing
/// verifier (today the precompiles, tomorrow a SNARK circuit) needs
/// from a commitment scheme. Proving-side helpers live on the concrete
/// backend; this trait is the verification surface plus the homomorphic
/// algebra both sides share.
pub trait CommitmentBackend {
    /// Commits to `value` under `blinding` (both taken mod the group
    /// order).
    fn commit(&self, value: U256, blinding: U256) -> Commitment;

    /// True iff `c` opens to `(value, blinding)`.
    fn verify_opening(&self, c: &Commitment, value: U256, blinding: U256) -> bool;

    /// Homomorphic sum: `commit(v1+v2, r1+r2)`.
    fn add(&self, a: &Commitment, b: &Commitment) -> Commitment;

    /// Homomorphic difference: `commit(v1-v2, r1-r2)`.
    fn sub(&self, a: &Commitment, b: &Commitment) -> Commitment;

    /// True iff `a + b == total` as group elements (the conservation
    /// check contracts run at activation and settlement).
    fn verify_sum(&self, a: &Commitment, b: &Commitment, total: &Commitment) -> bool {
        self.add(a, b) == *total
    }

    /// Produces a range proof that the committed value lies in
    /// `[0, 2^bits)`; `None` if the value is out of range or `bits` is
    /// unsupported.
    fn prove_range(&self, value: U256, blinding: U256, bits: u32) -> Option<RangeProof>;

    /// Verifies a serialized range proof against a commitment. Must
    /// reject malformed bytes cleanly — this is the exact routine the
    /// `RANGE_VERIFY` precompile exposes to untrusted calldata.
    fn verify_range(&self, c: &Commitment, bits: u32, proof: &[u8]) -> bool;
}
