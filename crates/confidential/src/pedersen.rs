//! Pedersen commitments `C = v·G + r·H` on secp256k1.
//!
//! `H` is derived nothing-up-my-sleeve by try-and-increment hash-to-curve:
//! keccak a domain tag plus a counter until the digest is the x
//! coordinate of a curve point, then take the even-`y` lift. Nobody
//! knows `log_G H`, so commitments are binding; `r` uniform makes them
//! hiding.

use std::sync::OnceLock;

use crate::CommitmentBackend;
use sc_crypto::keccak::keccak256;
use sc_crypto::secp256k1::{n, p, scalar, Affine, Point};
use sc_primitives::U256;

/// Domain tag for the try-and-increment derivation of `H`.
pub const H_DOMAIN: &[u8] = b"sc-pedersen-H-v1";

/// The second generator `H`, derived deterministically from [`H_DOMAIN`].
pub fn generator_h() -> Point {
    static H: OnceLock<Affine> = OnceLock::new();
    let a = H.get_or_init(|| {
        for ctr in 0u64.. {
            let mut buf = Vec::with_capacity(H_DOMAIN.len() + 8);
            buf.extend_from_slice(H_DOMAIN);
            buf.extend_from_slice(&ctr.to_be_bytes());
            let x = keccak256(&buf).to_u256();
            if let Some(a) = Affine::lift_x(x, false) {
                return a;
            }
        }
        unreachable!("try-and-increment terminates with overwhelming probability")
    });
    Point::from_affine(*a)
}

/// A Pedersen commitment — a point on secp256k1 (possibly the identity,
/// e.g. `commit(0, 0)`).
#[derive(Clone, Copy, Debug)]
pub struct Commitment(pub Point);

impl PartialEq for Commitment {
    fn eq(&self, other: &Self) -> bool {
        points_equal(&self.0, &other.0)
    }
}
impl Eq for Commitment {}

/// Jacobian-coordinate-independent point equality.
pub(crate) fn points_equal(a: &Point, b: &Point) -> bool {
    a.to_affine() == b.to_affine()
}

impl Commitment {
    /// The identity commitment (`commit(0, 0)`).
    pub const ZERO: Commitment = Commitment(Point::INFINITY);

    /// Canonical 64-byte wire encoding `x || y`; the identity encodes
    /// as all zeros.
    pub fn to_bytes(&self) -> [u8; 64] {
        encode_point(&self.0)
    }

    /// Decodes and validates a 64-byte encoding.
    pub fn from_bytes(bytes: &[u8]) -> Result<Commitment, DecodeError> {
        decode_point(bytes).map(Commitment)
    }

    /// The affine x coordinate (0 for the identity).
    pub fn x(&self) -> U256 {
        self.0.to_affine().map_or(U256::ZERO, |a| a.x)
    }

    /// The affine y coordinate (0 for the identity).
    pub fn y(&self) -> U256 {
        self.0.to_affine().map_or(U256::ZERO, |a| a.y)
    }
}

/// Why a 64-byte point encoding was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input is not exactly 64 bytes; carries the actual length.
    Length(usize),
    /// A coordinate is `>= p` — a non-canonical field encoding.
    NonCanonical,
    /// The coordinates do not satisfy the curve equation.
    NotOnCurve,
}

/// Encodes a point as `x || y` (64 bytes); the identity as all zeros.
pub fn encode_point(pt: &Point) -> [u8; 64] {
    let mut out = [0u8; 64];
    if let Some(a) = pt.to_affine() {
        out[..32].copy_from_slice(&a.x.to_be_bytes());
        out[32..].copy_from_slice(&a.y.to_be_bytes());
    }
    out
}

/// Decodes a 64-byte `x || y` encoding, enforcing canonical field
/// elements and curve membership. All-zeros decodes to the identity.
pub fn decode_point(bytes: &[u8]) -> Result<Point, DecodeError> {
    if bytes.len() != 64 {
        return Err(DecodeError::Length(bytes.len()));
    }
    let x = U256::from_be_slice(&bytes[..32]);
    let y = U256::from_be_slice(&bytes[32..]);
    if x.is_zero() && y.is_zero() {
        return Ok(Point::INFINITY);
    }
    if x >= p() || y >= p() {
        return Err(DecodeError::NonCanonical);
    }
    let a = Affine { x, y };
    if !a.is_on_curve() {
        return Err(DecodeError::NotOnCurve);
    }
    Ok(Point::from_affine(a))
}

/// `(a - b) mod n` over the scalar field.
pub(crate) fn scalar_sub(a: U256, b: U256) -> U256 {
    scalar::add(a, n().wrapping_sub(scalar::reduce(b)))
}

/// The sigma-protocol Pedersen backend — the concrete
/// [`CommitmentBackend`] the precompiles and benches use.
#[derive(Clone, Copy, Debug, Default)]
pub struct PedersenBackend;

impl CommitmentBackend for PedersenBackend {
    fn commit(&self, value: U256, blinding: U256) -> Commitment {
        let v = scalar::reduce(value);
        let r = scalar::reduce(blinding);
        let vg = Point::generator().mul_scalar(v);
        let rh = generator_h().mul_scalar(r);
        Commitment(vg.add(&rh))
    }

    fn verify_opening(&self, c: &Commitment, value: U256, blinding: U256) -> bool {
        self.commit(value, blinding) == *c
    }

    fn add(&self, a: &Commitment, b: &Commitment) -> Commitment {
        Commitment(a.0.add(&b.0))
    }

    fn sub(&self, a: &Commitment, b: &Commitment) -> Commitment {
        Commitment(a.0.add(&b.0.negate()))
    }

    fn prove_range(&self, value: U256, blinding: U256, bits: u32) -> Option<crate::RangeProof> {
        crate::range::prove(self, value, blinding, bits)
    }

    fn verify_range(&self, c: &Commitment, bits: u32, proof: &[u8]) -> bool {
        crate::range::verify(c, bits, proof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_is_on_curve_and_independent_of_g() {
        let h = generator_h().to_affine().unwrap();
        assert!(h.is_on_curve());
        let g = Point::generator().to_affine().unwrap();
        assert_ne!(h.x, g.x, "H must not share an x coordinate with G");
        assert!(!h.y.bit(0), "derivation takes the even-y lift");
    }

    #[test]
    fn commit_is_binding_on_inputs() {
        let b = PedersenBackend;
        let c = b.commit(U256::from_u64(42), U256::from_u64(7));
        assert!(b.verify_opening(&c, U256::from_u64(42), U256::from_u64(7)));
        assert!(!b.verify_opening(&c, U256::from_u64(43), U256::from_u64(7)));
        assert!(!b.verify_opening(&c, U256::from_u64(42), U256::from_u64(8)));
    }

    #[test]
    fn homomorphic_add_and_sub() {
        let b = PedersenBackend;
        let c1 = b.commit(U256::from_u64(10), U256::from_u64(111));
        let c2 = b.commit(U256::from_u64(32), U256::from_u64(222));
        let sum = b.commit(U256::from_u64(42), U256::from_u64(333));
        assert_eq!(b.add(&c1, &c2), sum);
        assert!(b.verify_sum(&c1, &c2, &sum));
        assert_eq!(b.sub(&sum, &c2), c1);
    }

    #[test]
    fn encoding_round_trips_and_rejects_junk() {
        let b = PedersenBackend;
        let c = b.commit(U256::from_u64(5), U256::from_u64(6));
        let bytes = c.to_bytes();
        assert_eq!(Commitment::from_bytes(&bytes).unwrap(), c);
        assert_eq!(
            Commitment::from_bytes(&bytes[..63]),
            Err(DecodeError::Length(63))
        );
        assert_eq!(Commitment::ZERO.to_bytes(), [0u8; 64]);
        assert_eq!(
            Commitment::from_bytes(&[0u8; 64]).unwrap(),
            Commitment::ZERO
        );

        // Off-curve: valid x, y+1.
        let mut bad = bytes;
        bad[63] = bad[63].wrapping_add(1);
        assert_eq!(Commitment::from_bytes(&bad), Err(DecodeError::NotOnCurve));

        // Non-canonical: x = p (on-curve x + p would not fit, but p itself
        // must be rejected before any curve check).
        let mut noncanon = [0u8; 64];
        noncanon[..32].copy_from_slice(&p().to_be_bytes());
        noncanon[63] = 1;
        assert_eq!(
            Commitment::from_bytes(&noncanon),
            Err(DecodeError::NonCanonical)
        );
    }

    #[test]
    fn blinding_wraps_mod_n() {
        let b = PedersenBackend;
        let r = U256::from_u64(99);
        let c1 = b.commit(U256::from_u64(1), r);
        let c2 = b.commit(U256::from_u64(1), r.wrapping_add(n()));
        assert_eq!(c1, c2);
    }
}
