//! Golden vectors pinning the confidential subsystem's wire artifacts:
//! the derived generator `H`, commitment bytes for fixed `(v, r)`,
//! voucher digests and nullifier hashes. These values are consensus —
//! contracts store commitments by these exact coordinates and registry
//! keys are these exact nullifiers — so any drift is a hard break, not
//! a refactor.
//!
//! Plus a proptest oracle for the homomorphism: the sum of commitments
//! is the commitment of the sums.

use proptest::prelude::*;
use sc_confidential::pedersen::generator_h;
use sc_confidential::{nullifier, CommitmentBackend, PedersenBackend, SettlementVoucher};
use sc_crypto::ecdsa::PrivateKey;
use sc_crypto::secp256k1::scalar;
use sc_primitives::{Address, H256, U256};

fn u(hex: &str) -> U256 {
    U256::from_hex_str(hex).unwrap()
}

#[test]
fn golden_generator_h() {
    let h = generator_h().to_affine().unwrap();
    assert_eq!(
        h.x,
        u("ef96f4af945747f025e5ed9c092d0edf332fadb677c6ce66b898f199b3dbf9aa")
    );
    assert_eq!(
        h.y,
        u("12925d27420cbaa4cbf15bec4fcdd7e373dd6eff2cf1a5093446c3a0cf41d434")
    );
}

#[test]
fn golden_commitment_bytes() {
    let b = PedersenBackend;
    let c = b.commit(U256::from_u64(42), U256::from_u64(7));
    assert_eq!(
        c.x(),
        u("c8e962bae3e994e21b089585e5966390f6d4583350c6da6cabb3cad4760b2319")
    );
    assert_eq!(
        c.y(),
        u("8726491adaf2b66a391512fa6d8bffc022bab3a0c9cc46da56e447de30984154")
    );
    let mut expected = [0u8; 64];
    expected[..32].copy_from_slice(&c.x().to_be_bytes());
    expected[32..].copy_from_slice(&c.y().to_be_bytes());
    assert_eq!(c.to_bytes(), expected);

    // commit(0, 1) is H itself — the blinding base, unmixed.
    let h = generator_h().to_affine().unwrap();
    let c01 = b.commit(U256::ZERO, U256::ONE);
    assert_eq!((c01.x(), c01.y()), (h.x, h.y));
}

#[test]
fn golden_nullifier_hashes() {
    assert_eq!(
        nullifier(&[]),
        H256::from_hex("9fa3056eca02cbb7170e21500ef54a9be2654351f5305dd6750b16a369de9318").unwrap()
    );
    assert_eq!(
        nullifier(&[1]),
        H256::from_hex("a48b359fe3a86ba798ef4a864e4d094f8c4df34f2414ad76ae9a3cef5564211a").unwrap()
    );
}

#[test]
fn golden_voucher_digest_and_nullifier() {
    let b = PedersenBackend;
    let voucher = SettlementVoucher {
        contract: Address::from_u256(U256::from_u64(0xc0ffee)),
        out_a: b.commit(U256::from_u64(30), U256::from_u64(5)),
        out_b: b.commit(U256::from_u64(12), U256::from_u64(6)),
    };
    assert_eq!(
        voucher.digest(),
        H256::from_hex("5c7e0d3cf6448ae25b505d52b100a23c0698b287c963365cc1f2206847fb4255").unwrap()
    );
    let signed = voucher.co_sign(
        &PrivateKey::from_seed("voucher-alice"),
        &PrivateKey::from_seed("voucher-bob"),
    );
    assert_eq!(
        signed.nullifier(),
        H256::from_hex("924b06e5385ebb483d86c94bdc3c4466e27b5af82efca88ae8d6556fc3855f2a").unwrap()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The homomorphic oracle: Σ commit(v_i, r_i) == commit(Σv_i, Σr_i)
    /// with the sums taken mod the group order.
    #[test]
    fn homomorphic_sum_matches_commitment_of_sums(
        vals in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..8)
    ) {
        let b = PedersenBackend;
        let mut acc = sc_confidential::Commitment::ZERO;
        let mut v_sum = U256::ZERO;
        let mut r_sum = U256::ZERO;
        for &(v, r) in &vals {
            let v = U256::from_u64(v);
            let r = U256::from_u64(r);
            acc = b.add(&acc, &b.commit(v, r));
            v_sum = scalar::add(v_sum, v);
            r_sum = scalar::add(r_sum, r);
        }
        prop_assert_eq!(acc, b.commit(v_sum, r_sum));
    }
}

proptest! {
    // Range proofs cost ~100 scalar muls per case; keep the sweep small
    // so tier-1 stays fast (the unit tests cover the edge widths).
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Range proofs round-trip for arbitrary 16-bit values and verify
    /// only against their own commitment.
    #[test]
    fn range_proof_roundtrip_16_bit(v in any::<u16>(), r in any::<u64>()) {
        let b = PedersenBackend;
        let v = U256::from_u64(v as u64);
        let r = U256::from_u64(r);
        let proof = b.prove_range(v, r, 16).unwrap();
        let c = b.commit(v, r);
        prop_assert!(b.verify_range(&c, 16, proof.as_bytes()));
        let other = b.commit(v.wrapping_add(U256::ONE), r);
        prop_assert!(!b.verify_range(&other, 16, proof.as_bytes()));
    }
}
