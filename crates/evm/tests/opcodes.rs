//! Systematic opcode-level tests: every arithmetic/comparison/bitwise
//! opcode against edge-value tables, plus environment and flow opcodes.

use sc_evm::host::{Env, MockHost};
use sc_evm::{Asm, CallParams, Evm, Op};
use sc_primitives::{ether, Address, U256};

const CONTRACT: Address = Address([0xcc; 20]);
const CALLER: Address = Address([0xee; 20]);

/// Builds a program that pushes `args` (first arg pushed last, i.e. on
/// top), runs `op`, and returns the single result word.
fn unop_program(op: Op, args: &[U256]) -> Vec<u8> {
    let mut a = Asm::new();
    for &arg in args.iter().rev() {
        a.push(arg);
    }
    a.op(op);
    a.push_u64(0).op(Op::MStore);
    a.push_u64(32).push_u64(0).op(Op::Return);
    a.assemble().expect("assembles")
}

fn run(code: Vec<u8>) -> U256 {
    let mut host = MockHost::new();
    host.install(CONTRACT, code);
    host.fund(CALLER, ether(1));
    let out = Evm::new(&mut host, Env::default()).call(CallParams::transact(
        CALLER,
        CONTRACT,
        U256::ZERO,
        vec![],
        5_000_000,
    ));
    assert!(out.success, "program failed: {:?}", out.error);
    U256::from_be_slice(&out.output)
}

fn eval(op: Op, args: &[U256]) -> U256 {
    run(unop_program(op, args))
}

fn u(v: u64) -> U256 {
    U256::from_u64(v)
}

#[test]
fn arithmetic_table() {
    let max = U256::MAX;
    let min_i256 = U256::ONE.shl_bits(255);
    #[rustfmt::skip]
    let cases: Vec<(Op, Vec<U256>, U256)> = vec![
        (Op::Add, vec![u(2), u(3)], u(5)),
        (Op::Add, vec![max, U256::ONE], U256::ZERO),
        (Op::Sub, vec![u(10), u(3)], u(7)),
        (Op::Sub, vec![u(3), u(10)], U256::ZERO.wrapping_sub(u(7))),
        (Op::Mul, vec![u(7), u(6)], u(42)),
        (Op::Mul, vec![max, u(2)], max.wrapping_sub(U256::ONE)),
        (Op::Div, vec![u(100), u(7)], u(14)),
        (Op::Div, vec![u(100), U256::ZERO], U256::ZERO),
        (Op::SDiv, vec![U256::ZERO.wrapping_sub(u(8)), u(2)], U256::ZERO.wrapping_sub(u(4))),
        (Op::SDiv, vec![min_i256, max], min_i256), // MIN / -1 wraps
        (Op::Mod, vec![u(100), u(7)], u(2)),
        (Op::Mod, vec![u(100), U256::ZERO], U256::ZERO),
        (Op::SMod, vec![U256::ZERO.wrapping_sub(u(8)), u(3)], U256::ZERO.wrapping_sub(u(2))),
        (Op::AddMod, vec![max, max, u(10)], u(0)),
        (Op::MulMod, vec![max, max, max], U256::ZERO),
        (Op::Exp, vec![u(3), u(5)], u(243)),
        (Op::Exp, vec![u(2), u(256)], U256::ZERO),
        (Op::SignExtend, vec![u(0), u(0xff)], max),
        (Op::SignExtend, vec![u(0), u(0x7f)], u(0x7f)),
    ];
    for (op, args, expect) in cases {
        assert_eq!(eval(op, &args), expect, "{op:?} {args:?}");
    }
}

#[test]
fn comparison_table() {
    let max = U256::MAX; // -1 in two's complement
    #[rustfmt::skip]
    let cases: Vec<(Op, Vec<U256>, U256)> = vec![
        (Op::Lt, vec![u(1), u(2)], U256::ONE),
        (Op::Lt, vec![u(2), u(1)], U256::ZERO),
        (Op::Lt, vec![u(1), u(1)], U256::ZERO),
        (Op::Gt, vec![u(2), u(1)], U256::ONE),
        (Op::SLt, vec![max, U256::ZERO], U256::ONE),   // -1 < 0
        (Op::SLt, vec![U256::ZERO, max], U256::ZERO),
        (Op::SGt, vec![U256::ZERO, max], U256::ONE),   // 0 > -1
        (Op::Eq, vec![u(5), u(5)], U256::ONE),
        (Op::Eq, vec![u(5), u(6)], U256::ZERO),
        (Op::IsZero, vec![U256::ZERO], U256::ONE),
        (Op::IsZero, vec![u(3)], U256::ZERO),
    ];
    for (op, args, expect) in cases {
        assert_eq!(eval(op, &args), expect, "{op:?} {args:?}");
    }
}

#[test]
fn bitwise_table() {
    let max = U256::MAX;
    #[rustfmt::skip]
    let cases: Vec<(Op, Vec<U256>, U256)> = vec![
        (Op::And, vec![u(0b1100), u(0b1010)], u(0b1000)),
        (Op::Or, vec![u(0b1100), u(0b1010)], u(0b1110)),
        (Op::Xor, vec![u(0b1100), u(0b1010)], u(0b0110)),
        (Op::Not, vec![U256::ZERO], max),
        (Op::Byte, vec![u(31), u(0xff)], u(0xff)),
        (Op::Byte, vec![u(0), u(0xff)], U256::ZERO),
        (Op::Byte, vec![u(32), max], U256::ZERO),
        (Op::Shl, vec![u(1), u(1)], u(2)),
        (Op::Shl, vec![u(256), u(1)], U256::ZERO),
        (Op::Shr, vec![u(1), u(4)], u(2)),
        (Op::Shr, vec![u(300), max], U256::ZERO),
        (Op::Sar, vec![u(1), max], max),           // -1 >> 1 == -1
        (Op::Sar, vec![u(2), u(16)], u(4)),
        (Op::Sar, vec![u(999), max], max),
    ];
    for (op, args, expect) in cases {
        assert_eq!(eval(op, &args), expect, "{op:?} {args:?}");
    }
}

#[test]
fn stack_manipulation() {
    // DUP and SWAP at depth: push 1..=16, then DUP16 must fetch the 1.
    let mut a = Asm::new();
    for i in 1..=16u64 {
        a.push_u64(i);
    }
    a.op(Op::Dup16);
    a.push_u64(0).op(Op::MStore);
    a.push_u64(32).push_u64(0).op(Op::Return);
    assert_eq!(run(a.assemble().unwrap()), U256::ONE);

    // SWAP16: top swaps with the 17th item.
    let mut a = Asm::new();
    a.push_u64(99); // will become top after swap
    for i in 1..=16u64 {
        a.push_u64(i);
    }
    a.op(Op::Swap16);
    a.push_u64(0).op(Op::MStore);
    a.push_u64(32).push_u64(0).op(Op::Return);
    assert_eq!(run(a.assemble().unwrap()), U256::from_u64(99));
}

#[test]
fn memory_opcodes() {
    // MSTORE8 writes one byte; MSIZE tracks word-aligned growth.
    let mut a = Asm::new();
    a.push_u64(0xab).push_u64(100).op(Op::MStore8); // expands to 128
    a.op(Op::MSize);
    a.push_u64(0).op(Op::MStore);
    a.push_u64(32).push_u64(0).op(Op::Return);
    assert_eq!(run(a.assemble().unwrap()), U256::from_u64(128));
}

#[test]
fn environment_opcodes() {
    let mut host = MockHost::new();
    let code = {
        // Return CALLER ^ ADDRESS ^ ORIGIN ^ CALLVALUE as a smoke value:
        // simpler: return CALLER.
        let mut a = Asm::new();
        a.op(Op::Caller);
        a.push_u64(0).op(Op::MStore);
        a.push_u64(32).push_u64(0).op(Op::Return);
        a.assemble().unwrap()
    };
    host.install(CONTRACT, code);
    host.fund(CALLER, ether(1));
    let out = Evm::new(&mut host, Env::default()).call(CallParams::transact(
        CALLER,
        CONTRACT,
        U256::ZERO,
        vec![],
        100_000,
    ));
    assert_eq!(U256::from_be_slice(&out.output), CALLER.to_u256());
}

#[test]
fn block_env_opcodes() {
    let mut env = Env::default();
    env.block.number = 777;
    env.block.timestamp = 888;
    env.block.gas_limit = 999_999;
    env.block.coinbase = Address([0xc0; 20]);
    for (op, expect) in [
        (Op::Number, u(777)),
        (Op::Timestamp, u(888)),
        (Op::GasLimit, u(999_999)),
        (Op::Coinbase, Address([0xc0; 20]).to_u256()),
        (Op::Difficulty, U256::ONE),
    ] {
        let mut a = Asm::new();
        a.op(op);
        a.push_u64(0).op(Op::MStore);
        a.push_u64(32).push_u64(0).op(Op::Return);
        let mut host = MockHost::new();
        host.install(CONTRACT, a.assemble().unwrap());
        host.fund(CALLER, ether(1));
        let out = Evm::new(&mut host, env.clone()).call(CallParams::transact(
            CALLER,
            CONTRACT,
            U256::ZERO,
            vec![],
            100_000,
        ));
        assert_eq!(U256::from_be_slice(&out.output), expect, "{op:?}");
    }
}

#[test]
fn log_opcodes_record_topics_and_data() {
    // LOG2 with topics 7, 9 over 3 bytes of data.
    let mut a = Asm::new();
    a.push_u64(0xabcdef).push_u64(0).op(Op::MStore); // data at 29..32
    a.push_u64(9).push_u64(7); // topics (topic1 pushed last → popped first)
    a.push_u64(3).push_u64(29); // len, offset → pops offset first
                                // stack now: [9, 7, 3, 29] top=29. LOG pops offset, len, then topics.
    a.op(Op::Log2);
    a.op(Op::Stop);
    let mut host = MockHost::new();
    host.install(CONTRACT, a.assemble().unwrap());
    host.fund(CALLER, ether(1));
    let out = Evm::new(&mut host, Env::default()).call(CallParams::transact(
        CALLER,
        CONTRACT,
        U256::ZERO,
        vec![],
        100_000,
    ));
    assert!(out.success, "{:?}", out.error);
    assert_eq!(host.logs.len(), 1);
    let log = &host.logs[0];
    assert_eq!(log.address, CONTRACT);
    assert_eq!(log.topics.len(), 2);
    assert_eq!(log.topics[0].to_u256(), u(7));
    assert_eq!(log.topics[1].to_u256(), u(9));
    assert_eq!(log.data, vec![0xab, 0xcd, 0xef]);
}

#[test]
fn gas_opcode_reports_remaining() {
    // GAS right at the start: gas_limit - 2 (the GAS op itself).
    let mut a = Asm::new();
    a.op(Op::Gas);
    a.push_u64(0).op(Op::MStore);
    a.push_u64(32).push_u64(0).op(Op::Return);
    let mut host = MockHost::new();
    host.install(CONTRACT, a.assemble().unwrap());
    host.fund(CALLER, ether(1));
    let out = Evm::new(&mut host, Env::default()).call(CallParams::transact(
        CALLER,
        CONTRACT,
        U256::ZERO,
        vec![],
        50_000,
    ));
    assert_eq!(U256::from_be_slice(&out.output), u(50_000 - 2));
}

#[test]
fn pc_opcode() {
    // PUSH1 x (2 bytes) then PC at offset 2.
    let mut a = Asm::new();
    a.push_u64(0).op(Op::Pop);
    a.op(Op::Pc);
    a.push_u64(0).op(Op::MStore);
    a.push_u64(32).push_u64(0).op(Op::Return);
    assert_eq!(run(a.assemble().unwrap()), u(3));
}

#[test]
fn extcodesize_and_extcodecopy() {
    let other = Address([0xbb; 20]);
    let other_code = vec![0x11, 0x22, 0x33, 0x44, 0x55];
    // EXTCODESIZE(other) and the first 4 bytes via EXTCODECOPY.
    let mut a = Asm::new();
    a.push_address(other);
    a.op(Op::ExtCodeSize);
    a.push_u64(0).op(Op::MStore);
    // EXTCODECOPY(other, dest=32, src=1, len=4)
    a.push_u64(4).push_u64(1).push_u64(32);
    a.push_address(other);
    a.op(Op::ExtCodeCopy);
    a.push_u64(64).push_u64(0).op(Op::Return);
    let mut host = MockHost::new();
    host.install(CONTRACT, a.assemble().unwrap());
    host.install(other, other_code);
    host.fund(CALLER, ether(1));
    let out = Evm::new(&mut host, Env::default()).call(CallParams::transact(
        CALLER,
        CONTRACT,
        U256::ZERO,
        vec![],
        100_000,
    ));
    assert!(out.success, "{:?}", out.error);
    assert_eq!(U256::from_be_slice(&out.output[..32]), u(5));
    assert_eq!(&out.output[32..36], &[0x22, 0x33, 0x44, 0x55]);
}

#[test]
fn blockhash_window() {
    let mut env = Env::default();
    env.block.number = 300;
    // Hash of block 299 is available; block 10 (>256 back) is zero;
    // future blocks are zero.
    for (n, zero) in [(299u64, false), (10, true), (300, true), (301, true)] {
        let mut a = Asm::new();
        a.push_u64(n);
        a.op(Op::BlockHash);
        a.push_u64(0).op(Op::MStore);
        a.push_u64(32).push_u64(0).op(Op::Return);
        let mut host = MockHost::new();
        host.install(CONTRACT, a.assemble().unwrap());
        host.fund(CALLER, ether(1));
        let out = Evm::new(&mut host, env.clone()).call(CallParams::transact(
            CALLER,
            CONTRACT,
            U256::ZERO,
            vec![],
            100_000,
        ));
        let h = U256::from_be_slice(&out.output);
        assert_eq!(h.is_zero(), zero, "block {n}");
    }
}

#[test]
fn selfdestruct_sweeps_balance() {
    let beneficiary = Address([0x77; 20]);
    let mut a = Asm::new();
    a.push_address(beneficiary);
    a.op(Op::SelfDestruct);
    let mut host = MockHost::new();
    host.install(CONTRACT, a.assemble().unwrap());
    host.fund(CONTRACT, ether(3));
    host.fund(CALLER, ether(1));
    let out = Evm::new(&mut host, Env::default()).call(CallParams::transact(
        CALLER,
        CONTRACT,
        U256::ZERO,
        vec![],
        100_000,
    ));
    assert!(out.success, "{:?}", out.error);
    assert_eq!(host.balances[&beneficiary], ether(3));
    assert_eq!(host.refund, 24_000);
}

#[test]
fn callcode_runs_foreign_code_in_own_storage() {
    // Library stores 7 at slot 0; CALLCODE must write OUR storage.
    let library = {
        let mut a = Asm::new();
        a.push_u64(7).push_u64(0).op(Op::SStore).op(Op::Stop);
        a.assemble().unwrap()
    };
    let lib_addr = Address([0xbb; 20]);
    let mut a = Asm::new();
    a.push_u64(0).push_u64(0).push_u64(0).push_u64(0); // out/in
    a.push_u64(0); // value
    a.push_address(lib_addr);
    a.op(Op::Gas);
    a.op(Op::CallCode);
    a.op(Op::Pop).op(Op::Stop);
    let mut host = MockHost::new();
    host.install(CONTRACT, a.assemble().unwrap());
    host.install(lib_addr, library);
    host.fund(CALLER, ether(1));
    let out = Evm::new(&mut host, Env::default()).call(CallParams::transact(
        CALLER,
        CONTRACT,
        U256::ZERO,
        vec![],
        200_000,
    ));
    assert!(out.success, "{:?}", out.error);
    use sc_evm::host::Host;
    assert_eq!(host.storage(CONTRACT, U256::ZERO), u(7));
    assert_eq!(host.storage(lib_addr, U256::ZERO), U256::ZERO);
}

#[test]
fn gas_costs_per_family_pinned() {
    // One representative per gas tier, measured end-to-end: run the op
    // in isolation and compare consumed gas against the schedule.
    let measure = |ops: &dyn Fn(&mut Asm)| {
        let mut a = Asm::new();
        ops(&mut a);
        a.op(Op::Stop);
        let code = a.assemble().unwrap();
        let mut host = MockHost::new();
        host.install(CONTRACT, code);
        host.fund(CALLER, ether(1));
        let out = Evm::new(&mut host, Env::default()).call(CallParams::transact(
            CALLER,
            CONTRACT,
            U256::ZERO,
            vec![],
            1_000_000,
        ));
        assert!(out.success, "{:?}", out.error);
        1_000_000 - out.gas_left
    };
    // Two pushes (3 each) + ADD (3) = 9.
    assert_eq!(
        measure(&|a: &mut Asm| {
            a.push_u64(1).push_u64(2).op(Op::Add).op(Op::Pop);
        }),
        3 + 3 + 3 + 2
    );
    // MUL is "low" = 5.
    assert_eq!(
        measure(&|a: &mut Asm| {
            a.push_u64(1).push_u64(2).op(Op::Mul).op(Op::Pop);
        }),
        3 + 3 + 5 + 2
    );
    // ADDMOD is "mid" = 8.
    assert_eq!(
        measure(&|a: &mut Asm| {
            a.push_u64(1)
                .push_u64(2)
                .push_u64(3)
                .op(Op::AddMod)
                .op(Op::Pop);
        }),
        3 + 3 + 3 + 8 + 2
    );
    // BALANCE = 400.
    assert_eq!(
        measure(&|a: &mut Asm| {
            a.push_u64(0).op(Op::Balance).op(Op::Pop);
        }),
        3 + 400 + 2
    );
    // SLOAD = 200.
    assert_eq!(
        measure(&|a: &mut Asm| {
            a.push_u64(0).op(Op::SLoad).op(Op::Pop);
        }),
        3 + 200 + 2
    );
    // KECCAK256 of one word: 30 + 6 + memory 3.
    assert_eq!(
        measure(&|a: &mut Asm| {
            a.push_u64(32).push_u64(0).op(Op::Keccak256).op(Op::Pop);
        }),
        3 + 3 + 30 + 6 + 3 + 2
    );
}

#[test]
fn call_stipend_cannot_write_storage() {
    // The 2300-gas stipend of a value transfer is enough to receive but
    // not to SSTORE — the classic reentrancy-era invariant. A receiver
    // whose code stores on receipt makes plain transfers to it fail.
    let receiver = {
        let mut a = Asm::new();
        a.push_u64(1).push_u64(0).op(Op::SStore).op(Op::Stop);
        a.assemble().unwrap()
    };
    let recv_addr = Address([0xbb; 20]);
    // Sender: CALL(gas=0, to=recv, value=1 ether, no data) then return
    // the success flag.
    let mut a = Asm::new();
    a.push_u64(0).push_u64(0).push_u64(0).push_u64(0); // out/in
    a.push(ether(1)); // value
    a.push_address(recv_addr); // to
    a.push_u64(0); // gas: stipend only
    a.op(Op::Call);
    a.push_u64(0).op(Op::MStore);
    a.push_u64(32).push_u64(0).op(Op::Return);
    let mut host = MockHost::new();
    host.install(recv_addr, receiver);
    host.install(CONTRACT, a.assemble().unwrap());
    host.fund(CONTRACT, ether(5));
    host.fund(CALLER, ether(1));
    let out = Evm::new(&mut host, Env::default()).call(CallParams::transact(
        CALLER,
        CONTRACT,
        U256::ZERO,
        vec![],
        500_000,
    ));
    assert!(out.success, "{:?}", out.error);
    assert_eq!(
        U256::from_be_slice(&out.output),
        U256::ZERO,
        "the 2300 stipend must not afford an SSTORE"
    );
    use sc_evm::host::Host;
    assert_eq!(host.storage(recv_addr, U256::ZERO), U256::ZERO);
    assert_eq!(
        host.balance(recv_addr),
        U256::ZERO,
        "failed call reverted the value"
    );
}

#[test]
fn value_call_to_fresh_account_pays_newaccount_surcharge() {
    // Same transfer, existing vs nonexistent recipient: the difference is
    // exactly G_newaccount = 25,000.
    let run_transfer = |to: Address, fund_target: bool| -> u64 {
        let mut a = Asm::new();
        a.push_u64(0).push_u64(0).push_u64(0).push_u64(0);
        a.push_u64(1); // 1 wei
        a.push_address(to);
        a.push_u64(0);
        a.op(Op::Call);
        a.op(Op::Pop).op(Op::Stop);
        let mut host = MockHost::new();
        host.install(CONTRACT, a.assemble().unwrap());
        host.fund(CONTRACT, ether(1));
        host.fund(CALLER, ether(1));
        if fund_target {
            host.fund(to, U256::ONE);
        }
        let out = Evm::new(&mut host, Env::default()).call(CallParams::transact(
            CALLER,
            CONTRACT,
            U256::ZERO,
            vec![],
            500_000,
        ));
        assert!(out.success);
        500_000 - out.gas_left
    };
    let fresh = run_transfer(Address([0x71; 20]), false);
    let existing = run_transfer(Address([0x72; 20]), true);
    assert_eq!(fresh - existing, 25_000);
}
