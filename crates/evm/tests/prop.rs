//! Property tests for the EVM: no panic on arbitrary bytecode, gas
//! determinism, and assembler/disassembler agreement.

use proptest::prelude::*;
use sc_evm::host::{Env, Host, MockHost};
use sc_evm::{disassemble, CallParams, Evm};
use sc_primitives::{ether, Address, U256};

fn run_raw(code: Vec<u8>, data: Vec<u8>, gas: u64) -> sc_evm::CallOutcome {
    let mut host = MockHost::new();
    host.install(Address([0xcc; 20]), code);
    host.fund(Address([0x01; 20]), ether(10));
    Evm::new(&mut host, Env::default()).call(CallParams::transact(
        Address([0x01; 20]),
        Address([0xcc; 20]),
        U256::ZERO,
        data,
        gas,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fuzz smoke: completely random bytecode must never panic the
    /// interpreter — it either runs, reverts, or fails with a VmError,
    /// and never spends more gas than provided.
    #[test]
    fn arbitrary_bytecode_never_panics(
        code in proptest::collection::vec(any::<u8>(), 0..512),
        data in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let out = run_raw(code, data, 200_000);
        prop_assert!(out.gas_left <= 200_000);
    }

    /// The same program and input always produce the same result, output
    /// and gas (interpreter determinism).
    #[test]
    fn execution_is_deterministic(
        code in proptest::collection::vec(any::<u8>(), 0..256),
        data in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let a = run_raw(code.clone(), data.clone(), 100_000);
        let b = run_raw(code, data, 100_000);
        prop_assert_eq!(a.success, b.success);
        prop_assert_eq!(a.gas_left, b.gas_left);
        prop_assert_eq!(a.output, b.output);
    }

    /// Giving MORE gas never changes a successful run's result or its
    /// gas consumption.
    #[test]
    fn extra_gas_is_neutral_for_successful_runs(
        code in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let small = run_raw(code.clone(), vec![], 60_000);
        // Random bytecode usually fails; the property only constrains the
        // successful runs (conditioning via assume would starve the test).
        if small.success {
            let big = run_raw(code, vec![], 6_000_000);
            prop_assert!(big.success);
            prop_assert_eq!(big.output, small.output);
            prop_assert_eq!(6_000_000 - big.gas_left, 60_000 - small.gas_left);
        }
    }

    /// Disassembling random bytes covers every byte exactly once and in
    /// order.
    #[test]
    fn disassembly_covers_all_bytes(code in proptest::collection::vec(any::<u8>(), 0..512)) {
        let instrs = disassemble(&code);
        let mut expected = 0usize;
        for ins in &instrs {
            prop_assert_eq!(ins.offset, expected);
            expected += 1 + ins.immediate.len();
        }
        prop_assert_eq!(expected, code.len());
    }

    /// A failed (non-revert) frame must leave no state behind: storage
    /// writes before an INVALID opcode roll back.
    #[test]
    fn failed_frames_leave_no_state(slot in any::<u64>(), value in 1u64..) {
        // SSTORE(slot, value); INVALID
        let mut code = Vec::new();
        code.push(0x7f); // PUSH32 value
        code.extend_from_slice(&U256::from_u64(value).to_be_bytes());
        code.push(0x7f); // PUSH32 slot
        code.extend_from_slice(&U256::from_u64(slot).to_be_bytes());
        code.extend_from_slice(&[0x55, 0xfe]); // SSTORE, INVALID

        let mut host = MockHost::new();
        host.install(Address([0xcc; 20]), code);
        host.fund(Address([0x01; 20]), ether(10));
        let out = Evm::new(&mut host, Env::default()).call(CallParams::transact(
            Address([0x01; 20]),
            Address([0xcc; 20]),
            U256::ZERO,
            vec![],
            100_000,
        ));
        prop_assert!(!out.success);
        prop_assert_eq!(
            host.storage(Address([0xcc; 20]), U256::from_u64(slot)),
            U256::ZERO
        );
    }
}
