//! Execution inspection: a step hook on the interpreter plus a gas
//! profiler that attributes gas to opcodes.
//!
//! Used to decompose protocol costs (e.g. where `deployVerifiedInstance`
//! spends its 275k gas) and for debugging generated code.

use crate::opcode::Op;
use std::collections::HashMap;

/// Observer of interpreter execution. All methods have defaults, so an
/// implementation only overrides what it needs.
pub trait Inspector {
    /// Called before each instruction executes.
    ///
    /// `depth` is the call depth (1 = the outermost frame), `pc` the
    /// instruction offset, `gas_before` the frame's remaining gas before
    /// the instruction is charged.
    fn step(&mut self, depth: usize, pc: usize, op: u8, gas_before: u64) {
        let _ = (depth, pc, op, gas_before);
    }

    /// Called when a frame finishes, with its remaining gas.
    fn exit_frame(&mut self, depth: usize, gas_left: u64) {
        let _ = (depth, gas_left);
    }
}

/// Per-opcode gas totals. Attribution is *exclusive*: a `CALL`/`CREATE`
/// instruction is charged only its own cost (base fees, memory, the
/// `CREATE` code deposit); the child frame's instructions are tallied at
/// their own depth. The per-opcode totals therefore sum exactly to the
/// transaction's execution gas.
#[derive(Default)]
pub struct GasProfiler {
    /// op byte → (executions, attributed gas).
    totals: HashMap<u8, (u64, u64)>,
    /// Pending (op, gas_before) per call depth.
    pending: Vec<Option<(u8, u64)>>,
    /// Gas consumed by child frames under the current pending op, per
    /// depth of the *parent*.
    child_gas: Vec<u64>,
    /// Gas at the first step of the frame currently running at a depth.
    frame_start: Vec<Option<u64>>,
}

impl GasProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total gas attributed across all opcodes.
    pub fn total_gas(&self) -> u64 {
        self.totals.values().map(|(_, g)| g).sum()
    }

    /// Gas attributed to one opcode.
    pub fn gas_of(&self, op: Op) -> u64 {
        self.totals.get(&(op as u8)).map_or(0, |(_, g)| *g)
    }

    /// Execution count of one opcode.
    pub fn count_of(&self, op: Op) -> u64 {
        self.totals.get(&(op as u8)).map_or(0, |(c, _)| *c)
    }

    /// `(mnemonic, count, gas)` rows sorted by gas, descending.
    pub fn rows(&self) -> Vec<(String, u64, u64)> {
        let mut rows: Vec<(String, u64, u64)> = self
            .totals
            .iter()
            .map(|(&b, &(count, gas))| {
                let name = Op::from_byte(b).map_or_else(|| format!("0x{b:02x}"), |o| o.mnemonic());
                (name, count, gas)
            })
            .collect();
        rows.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)));
        rows
    }

    fn ensure_depth(&mut self, depth: usize) {
        if self.pending.len() < depth {
            self.pending.resize(depth, None);
            self.child_gas.resize(depth, 0);
            self.frame_start.resize(depth, None);
        }
    }

    fn settle(&mut self, depth: usize, gas_now: u64) {
        if let Some(slot) = self.pending.get_mut(depth - 1) {
            if let Some((op, gas_before)) = slot.take() {
                // Subtract what child frames consumed under this op so
                // the attribution is exclusive.
                let child = std::mem::take(&mut self.child_gas[depth - 1]);
                let entry = self.totals.entry(op).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += gas_before.saturating_sub(gas_now).saturating_sub(child);
            }
        }
    }
}

impl Inspector for GasProfiler {
    fn step(&mut self, depth: usize, _pc: usize, op: u8, gas_before: u64) {
        self.ensure_depth(depth);
        if self.frame_start[depth - 1].is_none() {
            self.frame_start[depth - 1] = Some(gas_before);
        }
        // The previous instruction at this depth ran to completion
        // (child frames included); attribute its exclusive cost now.
        self.settle(depth, gas_before);
        self.pending[depth - 1] = Some((op, gas_before));
    }

    fn exit_frame(&mut self, depth: usize, gas_left: u64) {
        self.ensure_depth(depth);
        self.settle(depth, gas_left);
        // Report this frame's total consumption to the parent's pending
        // op, which will deduct it.
        let start = self.frame_start[depth - 1].take().unwrap_or(gas_left);
        if depth >= 2 {
            self.child_gas[depth - 2] += start.saturating_sub(gas_left);
        }
        self.pending.truncate(depth - 1);
        self.child_gas.truncate(depth.max(1) - 1);
        self.frame_start.truncate(depth.max(1) - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{CallParams, Evm};
    use crate::host::{Env, MockHost};
    use sc_primitives::{ether, Address, U256};

    fn profile(code: Vec<u8>) -> GasProfiler {
        let mut host = MockHost::new();
        host.install(Address([0xcc; 20]), code);
        host.fund(Address([1; 20]), ether(1));
        let mut profiler = GasProfiler::new();
        let out = Evm::with_inspector(&mut host, Env::default(), &mut profiler).call(
            CallParams::transact(
                Address([1; 20]),
                Address([0xcc; 20]),
                U256::ZERO,
                vec![],
                1_000_000,
            ),
        );
        assert!(out.success, "{:?}", out.error);
        profiler
    }

    #[test]
    fn attributes_simple_sequence_exactly() {
        // PUSH1 1, PUSH1 2, ADD, POP, STOP
        let p = profile(vec![0x60, 0x01, 0x60, 0x02, 0x01, 0x50, 0x00]);
        assert_eq!(p.gas_of(Op::Push1), 6);
        assert_eq!(p.count_of(Op::Push1), 2);
        assert_eq!(p.gas_of(Op::Add), 3);
        assert_eq!(p.gas_of(Op::Pop), 2);
        assert_eq!(p.gas_of(Op::Stop), 0);
        assert_eq!(p.total_gas(), 11);
    }

    #[test]
    fn sstore_dominates_where_expected() {
        // PUSH1 7 PUSH1 0 SSTORE STOP
        let p = profile(vec![0x60, 0x07, 0x60, 0x00, 0x55, 0x00]);
        assert_eq!(p.gas_of(Op::SStore), 20_000);
        assert_eq!(p.total_gas(), 20_006);
        let rows = p.rows();
        assert_eq!(rows[0].0, "SSTORE", "sorted by gas");
    }

    #[test]
    fn call_attribution_is_exclusive_and_totals_are_exact() {
        // Callee burns gas: PUSH1 7 PUSH1 0 SSTORE STOP (20,006).
        let callee = vec![0x60, 0x07, 0x60, 0x00, 0x55, 0x00];
        // Caller CALLs the callee then stops.
        let mut caller = vec![
            0x60, 0x00, 0x60, 0x00, 0x60, 0x00, 0x60, 0x00, 0x60, 0x00, // out/in/value
            0x73,
        ];
        caller.extend_from_slice(&[0xbb; 20]);
        caller.extend_from_slice(&[0x5a, 0xf1, 0x50, 0x00]); // GAS CALL POP STOP

        let mut host = MockHost::new();
        host.install(Address([0xbb; 20]), callee);
        host.install(Address([0xcc; 20]), caller);
        host.fund(Address([1; 20]), ether(1));
        let mut profiler = GasProfiler::new();
        let out = Evm::with_inspector(&mut host, Env::default(), &mut profiler).call(
            CallParams::transact(
                Address([1; 20]),
                Address([0xcc; 20]),
                U256::ZERO,
                vec![],
                1_000_000,
            ),
        );
        assert!(out.success);
        // CALL is charged only its base fee; the callee's work is tallied
        // at the callee's opcodes.
        assert_eq!(profiler.gas_of(Op::Call), 700);
        assert_eq!(profiler.gas_of(Op::SStore), 20_000);
        // Exclusive attribution sums to the true consumption.
        assert_eq!(profiler.total_gas(), 1_000_000 - out.gas_left);
    }

    #[test]
    fn total_matches_frame_consumption() {
        // A loop: counter from 100 down to 0.
        let mut a = crate::Asm::new();
        a.push_u64(100);
        a.label("loop");
        a.push_u64(1)
            .op(Op::Dup2)
            .op(Op::Sub)
            .op(Op::Swap1)
            .op(Op::Pop);
        a.op(Op::Dup1);
        a.jumpi("loop");
        a.op(Op::Stop);
        let code = a.assemble().unwrap();
        let mut host = MockHost::new();
        host.install(Address([0xcc; 20]), code);
        host.fund(Address([1; 20]), ether(1));
        let mut profiler = GasProfiler::new();
        let out = Evm::with_inspector(&mut host, Env::default(), &mut profiler).call(
            CallParams::transact(
                Address([1; 20]),
                Address([0xcc; 20]),
                U256::ZERO,
                vec![],
                1_000_000,
            ),
        );
        assert!(out.success);
        assert_eq!(
            profiler.total_gas(),
            1_000_000 - out.gas_left,
            "profiler totals must equal actual frame consumption"
        );
    }

    #[test]
    fn no_inspector_means_no_overhead_difference_in_results() {
        let code = vec![0x60, 0x07, 0x60, 0x00, 0x55, 0x00];
        let mut host = MockHost::new();
        host.install(Address([0xcc; 20]), code.clone());
        host.fund(Address([1; 20]), ether(1));
        let plain = Evm::new(&mut host, Env::default()).call(CallParams::transact(
            Address([1; 20]),
            Address([0xcc; 20]),
            U256::ZERO,
            vec![],
            1_000_000,
        ));
        let p = profile(code);
        assert_eq!(1_000_000 - plain.gas_left, p.total_gas());
    }
}
