//! The interface between the interpreter and the world state.
//!
//! `sc-chain` implements [`Host`] on its journaled state; unit tests use
//! the in-crate [`MockHost`].

use sc_primitives::{Address, H256, U256};
use std::collections::HashMap;
use std::sync::Arc;

/// Block-level execution environment (`BLOCKHASH`, `TIMESTAMP`, …).
#[derive(Clone, Debug)]
pub struct BlockEnv {
    /// Block height.
    pub number: u64,
    /// Unix timestamp — drives the paper's T0..T3 betting windows.
    pub timestamp: u64,
    /// Miner/beneficiary address.
    pub coinbase: Address,
    /// Difficulty (constant in the simulator).
    pub difficulty: U256,
    /// Block gas limit.
    pub gas_limit: u64,
}

impl Default for BlockEnv {
    fn default() -> Self {
        BlockEnv {
            number: 1,
            timestamp: 0,
            coinbase: Address::ZERO,
            difficulty: U256::from_u64(1),
            gas_limit: 8_000_000,
        }
    }
}

/// Transaction-level environment (`ORIGIN`, `GASPRICE`).
#[derive(Clone, Debug)]
pub struct TxEnv {
    /// The externally-owned account that signed the transaction.
    pub origin: Address,
    /// Effective gas price in wei.
    pub gas_price: U256,
}

impl Default for TxEnv {
    fn default() -> Self {
        TxEnv {
            origin: Address::ZERO,
            gas_price: U256::ZERO,
        }
    }
}

/// Combined execution environment.
#[derive(Clone, Debug, Default)]
pub struct Env {
    /// Block context.
    pub block: BlockEnv,
    /// Transaction context.
    pub tx: TxEnv,
}

/// An emitted `LOGn` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// The contract that emitted the log.
    pub address: Address,
    /// Indexed topics (0–4).
    pub topics: Vec<H256>,
    /// Unindexed payload.
    pub data: Vec<u8>,
}

/// State access required by the interpreter.
///
/// Implementations must be *journaled*: [`Host::snapshot`] returns a token
/// and [`Host::revert`] rolls every mutation made since that token back —
/// the semantics the EVM's nested-call failure model depends on.
pub trait Host {
    /// Account balance in wei.
    fn balance(&self, a: Address) -> U256;
    /// Contract code (empty for EOAs and nonexistent accounts).
    fn code(&self, a: Address) -> Arc<Vec<u8>>;
    /// `keccak256` of the account's code, used as the
    /// [`crate::AnalysisCache`] key.
    ///
    /// The default hashes on demand; stateful hosts should override it
    /// with a value cached at code-install time so the hash costs a field
    /// read, not a keccak, on every call.
    fn code_hash(&self, a: Address) -> H256 {
        sc_crypto::keccak256(&self.code(a))
    }
    /// Storage slot value (zero default).
    fn storage(&self, a: Address, key: U256) -> U256;
    /// Writes a storage slot.
    fn set_storage(&mut self, a: Address, key: U256, value: U256);
    /// Account nonce.
    fn nonce(&self, a: Address) -> u64;
    /// Increments an account nonce.
    fn bump_nonce(&mut self, a: Address);
    /// True iff the account exists (has balance, code or nonce).
    fn account_exists(&self, a: Address) -> bool;
    /// Marks an address as a fresh contract account (nonce 1, no code yet).
    /// Returns false on collision (address already has code or nonce).
    fn create_contract(&mut self, a: Address) -> bool;
    /// Installs runtime code for a freshly created contract.
    fn set_code(&mut self, a: Address, code: Vec<u8>);
    /// Moves `value` wei; false if `from` has insufficient balance.
    fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool;
    /// Opens a revert checkpoint.
    fn snapshot(&mut self) -> usize;
    /// Rolls back to a checkpoint from [`Host::snapshot`].
    fn revert(&mut self, snapshot: usize);
    /// Records a log entry (rolled back with the journal on revert).
    fn log(&mut self, entry: LogEntry);
    /// Hash of a recent block (zero if unavailable).
    fn block_hash(&self, number: u64) -> H256;
    /// Accumulates an SSTORE-clear / selfdestruct refund.
    fn add_refund(&mut self, amount: u64);
    /// Every non-zero storage slot of an account, in no particular
    /// order — the iteration hook authenticated-state layers use to
    /// fold or audit a contract's storage commitment. Hosts that do not
    /// track full storage (mocks, stateless shims) may keep the default
    /// empty answer.
    fn storage_entries(&self, a: Address) -> Vec<(U256, U256)> {
        let _ = a;
        Vec::new()
    }
}

/// A simple journaled in-memory host for interpreter unit tests.
#[derive(Default)]
pub struct MockHost {
    /// Account balances.
    pub balances: HashMap<Address, U256>,
    /// Account code.
    pub codes: HashMap<Address, Arc<Vec<u8>>>,
    /// Contract storage.
    pub storages: HashMap<(Address, U256), U256>,
    /// Account nonces.
    pub nonces: HashMap<Address, u64>,
    /// Emitted logs.
    pub logs: Vec<LogEntry>,
    /// Accumulated refund counter.
    pub refund: u64,
    journal: Vec<JournalOp>,
}

enum JournalOp {
    Balance(Address, U256),
    Storage(Address, U256, U256),
    Nonce(Address, u64),
    Code(Address, Option<Arc<Vec<u8>>>),
    Log,
    Refund(u64),
}

impl MockHost {
    /// Creates an empty host.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds an account balance without journaling (test setup).
    pub fn fund(&mut self, a: Address, value: U256) {
        self.balances.insert(a, value);
    }

    /// Installs code without journaling (test setup).
    pub fn install(&mut self, a: Address, code: Vec<u8>) {
        self.codes.insert(a, Arc::new(code));
        self.nonces.entry(a).or_insert(1);
    }
}

impl Host for MockHost {
    fn balance(&self, a: Address) -> U256 {
        self.balances.get(&a).copied().unwrap_or(U256::ZERO)
    }

    fn code(&self, a: Address) -> Arc<Vec<u8>> {
        self.codes.get(&a).cloned().unwrap_or_default()
    }

    fn storage(&self, a: Address, key: U256) -> U256 {
        self.storages.get(&(a, key)).copied().unwrap_or(U256::ZERO)
    }

    fn set_storage(&mut self, a: Address, key: U256, value: U256) {
        let prev = self.storage(a, key);
        self.journal.push(JournalOp::Storage(a, key, prev));
        self.storages.insert((a, key), value);
    }

    fn nonce(&self, a: Address) -> u64 {
        self.nonces.get(&a).copied().unwrap_or(0)
    }

    fn bump_nonce(&mut self, a: Address) {
        let prev = self.nonce(a);
        self.journal.push(JournalOp::Nonce(a, prev));
        self.nonces.insert(a, prev + 1);
    }

    fn account_exists(&self, a: Address) -> bool {
        self.balances.get(&a).is_some_and(|b| !b.is_zero())
            || self.nonce(a) > 0
            || self.codes.contains_key(&a)
    }

    fn create_contract(&mut self, a: Address) -> bool {
        if self.nonce(a) > 0 || self.codes.get(&a).is_some_and(|c| !c.is_empty()) {
            return false;
        }
        let prev = self.nonce(a);
        self.journal.push(JournalOp::Nonce(a, prev));
        self.nonces.insert(a, 1);
        true
    }

    fn set_code(&mut self, a: Address, code: Vec<u8>) {
        self.journal
            .push(JournalOp::Code(a, self.codes.get(&a).cloned()));
        self.codes.insert(a, Arc::new(code));
    }

    fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        let from_bal = self.balance(from);
        if from_bal < value {
            return false;
        }
        let to_bal = self.balance(to);
        self.journal.push(JournalOp::Balance(from, from_bal));
        self.journal.push(JournalOp::Balance(to, to_bal));
        self.balances.insert(from, from_bal.wrapping_sub(value));
        // Careful: self-transfer must not double-apply.
        if from == to {
            self.balances.insert(to, from_bal);
        } else {
            self.balances.insert(to, to_bal.wrapping_add(value));
        }
        true
    }

    fn snapshot(&mut self) -> usize {
        self.journal.len()
    }

    fn revert(&mut self, snapshot: usize) {
        while self.journal.len() > snapshot {
            match self.journal.pop().expect("journal entry") {
                JournalOp::Balance(a, v) => {
                    self.balances.insert(a, v);
                }
                JournalOp::Storage(a, k, v) => {
                    self.storages.insert((a, k), v);
                }
                JournalOp::Nonce(a, v) => {
                    self.nonces.insert(a, v);
                }
                JournalOp::Code(a, Some(c)) => {
                    self.codes.insert(a, c);
                }
                JournalOp::Code(a, None) => {
                    self.codes.remove(&a);
                }
                JournalOp::Log => {
                    self.logs.pop();
                }
                JournalOp::Refund(prev) => {
                    self.refund = prev;
                }
            }
        }
    }

    fn log(&mut self, entry: LogEntry) {
        self.journal.push(JournalOp::Log);
        self.logs.push(entry);
    }

    fn block_hash(&self, number: u64) -> H256 {
        // Deterministic pseudo-hash good enough for tests.
        sc_crypto::keccak256(&number.to_be_bytes())
    }

    fn add_refund(&mut self, amount: u64) {
        self.journal.push(JournalOp::Refund(self.refund));
        self.refund += amount;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(b: u8) -> Address {
        Address([b; 20])
    }

    #[test]
    fn journal_reverts_everything() {
        let mut h = MockHost::new();
        h.fund(addr(1), U256::from_u64(100));
        let snap = h.snapshot();
        h.transfer(addr(1), addr(2), U256::from_u64(40));
        h.set_storage(addr(2), U256::ONE, U256::from_u64(7));
        h.bump_nonce(addr(1));
        h.log(LogEntry {
            address: addr(2),
            topics: vec![],
            data: vec![1],
        });
        h.add_refund(15_000);
        assert_eq!(h.balance(addr(2)), U256::from_u64(40));
        h.revert(snap);
        assert_eq!(h.balance(addr(1)), U256::from_u64(100));
        assert_eq!(h.balance(addr(2)), U256::ZERO);
        assert_eq!(h.storage(addr(2), U256::ONE), U256::ZERO);
        assert_eq!(h.nonce(addr(1)), 0);
        assert!(h.logs.is_empty());
        assert_eq!(h.refund, 0);
    }

    #[test]
    fn nested_snapshots_revert_partially() {
        let mut h = MockHost::new();
        h.fund(addr(1), U256::from_u64(100));
        let outer = h.snapshot();
        h.transfer(addr(1), addr(2), U256::from_u64(10));
        let inner = h.snapshot();
        h.transfer(addr(1), addr(2), U256::from_u64(20));
        h.revert(inner);
        assert_eq!(h.balance(addr(2)), U256::from_u64(10));
        h.revert(outer);
        assert_eq!(h.balance(addr(2)), U256::ZERO);
    }

    #[test]
    fn transfer_requires_funds() {
        let mut h = MockHost::new();
        h.fund(addr(1), U256::from_u64(5));
        assert!(!h.transfer(addr(1), addr(2), U256::from_u64(10)));
        assert_eq!(h.balance(addr(1)), U256::from_u64(5));
    }

    #[test]
    fn self_transfer_preserves_balance() {
        let mut h = MockHost::new();
        h.fund(addr(1), U256::from_u64(50));
        assert!(h.transfer(addr(1), addr(1), U256::from_u64(30)));
        assert_eq!(h.balance(addr(1)), U256::from_u64(50));
    }

    #[test]
    fn create_contract_detects_collision() {
        let mut h = MockHost::new();
        assert!(h.create_contract(addr(3)));
        assert_eq!(h.nonce(addr(3)), 1);
        h.set_code(addr(3), vec![0x00]);
        assert!(!h.create_contract(addr(3)));
    }
}
