//! The EVM executor: interpreter loop plus the CREATE/CALL machinery.
//!
//! Semantics target the Byzantium fork (the era of the paper's Kovan
//! deployment): EIP-150 gas repricing and the 63/64 forwarding rule,
//! EIP-2 low-s/create-deposit rules, `REVERT`/`RETURNDATA`, and the
//! Constantinople shift opcodes.

use crate::analysis::{AnalysisCache, CodeAnalysis};
use crate::gas::{self, g};
use crate::host::{Env, Host, LogEntry};
use crate::memory::Memory;
use crate::opcode::Op;
use crate::precompile;
use sc_crypto::keccak256;
use sc_primitives::rlp::{self, Item};
use sc_primitives::{Address, H256, U256};
use std::fmt;
use std::sync::Arc;

/// Maximum runtime code size (EIP-170).
pub const MAX_CODE_SIZE: usize = 24_576;

/// Execution failures. `Revert` is *not* an error — it is a distinct
/// outcome carrying data and remaining gas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Gas exhausted.
    OutOfGas,
    /// Pop from an empty stack.
    StackUnderflow,
    /// Push beyond 1024 entries.
    StackOverflow,
    /// Jump target is not a `JUMPDEST`.
    InvalidJump(usize),
    /// Unassigned or explicitly invalid opcode.
    InvalidOpcode(u8),
    /// State mutation inside `STATICCALL`.
    StaticViolation,
    /// `RETURNDATACOPY` beyond the return buffer.
    ReturnDataOutOfBounds,
    /// Created runtime code exceeds [`MAX_CODE_SIZE`].
    CodeSizeLimit,
    /// Address collision on CREATE.
    CreateCollision,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfGas => write!(f, "out of gas"),
            VmError::StackUnderflow => write!(f, "stack underflow"),
            VmError::StackOverflow => write!(f, "stack overflow"),
            VmError::InvalidJump(pc) => write!(f, "invalid jump destination {pc}"),
            VmError::InvalidOpcode(b) => write!(f, "invalid opcode 0x{b:02x}"),
            VmError::StaticViolation => write!(f, "state mutation in static context"),
            VmError::ReturnDataOutOfBounds => write!(f, "return data access out of bounds"),
            VmError::CodeSizeLimit => write!(f, "created code exceeds size limit"),
            VmError::CreateCollision => write!(f, "contract address collision"),
        }
    }
}

impl std::error::Error for VmError {}

/// Outcome of a message call.
#[derive(Debug, Clone)]
pub struct CallOutcome {
    /// True iff execution completed without revert or error.
    pub success: bool,
    /// Gas remaining (returned to the caller).
    pub gas_left: u64,
    /// Return or revert data.
    pub output: Vec<u8>,
    /// Set when the frame failed with a hard error.
    pub error: Option<VmError>,
    /// True when the frame executed `REVERT` (distinct from errors:
    /// remaining gas is preserved).
    pub reverted: bool,
}

impl CallOutcome {
    fn failure(error: VmError) -> Self {
        CallOutcome {
            success: false,
            gas_left: 0,
            output: Vec::new(),
            error: Some(error),
            reverted: false,
        }
    }
}

/// Outcome of contract creation.
#[derive(Debug, Clone)]
pub struct CreateOutcome {
    /// True iff the contract was deployed.
    pub success: bool,
    /// Gas remaining.
    pub gas_left: u64,
    /// The deployed address when successful.
    pub address: Option<Address>,
    /// Revert data when the initcode reverted.
    pub output: Vec<u8>,
    /// Hard error, if any.
    pub error: Option<VmError>,
}

/// Parameters of a message call.
#[derive(Debug, Clone)]
pub struct CallParams {
    /// `msg.sender` seen by the callee.
    pub caller: Address,
    /// Storage/balance context and `ADDRESS` value.
    pub address: Address,
    /// Where the executed code is loaded from (differs from `address`
    /// under `DELEGATECALL`/`CALLCODE`).
    pub code_address: Address,
    /// `msg.value` seen by the callee.
    pub apparent_value: U256,
    /// Wei actually moved (None for delegate/static calls).
    pub transfer_value: Option<U256>,
    /// Calldata.
    pub data: Vec<u8>,
    /// Gas provided to the callee.
    pub gas: u64,
    /// Static (read-only) context flag.
    pub is_static: bool,
}

impl CallParams {
    /// A plain value-bearing call, as a transaction would make.
    pub fn transact(caller: Address, to: Address, value: U256, data: Vec<u8>, gas: u64) -> Self {
        CallParams {
            caller,
            address: to,
            code_address: to,
            apparent_value: value,
            transfer_value: Some(value),
            data,
            gas,
            is_static: false,
        }
    }
}

/// Derives a contract address: `keccak(rlp([sender, nonce]))[12..]`.
pub fn contract_address(sender: Address, nonce: u64) -> Address {
    let enc = rlp::encode_list(&[Item::address(sender), Item::u64(nonce)]);
    Address::from_h256(keccak256(&enc))
}

/// The EVM executor, generic over the state backend.
pub struct Evm<'a, H: Host> {
    /// State backend.
    pub host: &'a mut H,
    /// Block/tx environment.
    pub env: Env,
    depth: usize,
    inspector: Option<&'a mut dyn crate::inspect::Inspector>,
    cache: Arc<AnalysisCache>,
}

enum FrameResult {
    Stopped,
    Returned(Vec<u8>),
    Reverted(Vec<u8>),
    Failed(VmError),
}

struct Frame {
    code: Arc<Vec<u8>>,
    analysis: Arc<CodeAnalysis>,
    pc: usize,
    stack: Vec<U256>,
    memory: Memory,
    gas: u64,
    address: Address,
    caller: Address,
    value: U256,
    data: Vec<u8>,
    is_static: bool,
    return_data: Vec<u8>,
}

impl Frame {
    fn new(code: Arc<Vec<u8>>, analysis: Arc<CodeAnalysis>, params: &CallParams) -> Frame {
        Frame {
            analysis,
            code,
            pc: 0,
            stack: Vec::with_capacity(64),
            memory: Memory::new(),
            gas: params.gas,
            address: params.address,
            caller: params.caller,
            value: params.apparent_value,
            data: params.data.clone(),
            is_static: params.is_static,
            return_data: Vec::new(),
        }
    }

    #[inline]
    fn use_gas(&mut self, amount: u64) -> Result<(), VmError> {
        if self.gas < amount {
            self.gas = 0;
            return Err(VmError::OutOfGas);
        }
        self.gas -= amount;
        Ok(())
    }

    #[inline]
    fn pop(&mut self) -> Result<U256, VmError> {
        self.stack.pop().ok_or(VmError::StackUnderflow)
    }

    #[inline]
    fn push(&mut self, v: U256) -> Result<(), VmError> {
        if self.stack.len() >= g::STACK_LIMIT {
            return Err(VmError::StackOverflow);
        }
        self.stack.push(v);
        Ok(())
    }

    #[inline]
    fn peek(&self, depth_from_top: usize) -> Result<U256, VmError> {
        let len = self.stack.len();
        if depth_from_top >= len {
            return Err(VmError::StackUnderflow);
        }
        Ok(self.stack[len - 1 - depth_from_top])
    }

    /// Charges memory expansion for the byte range `[offset, offset+len)`
    /// and expands. Returns the usize offset (0 when len is 0).
    fn charge_memory(&mut self, offset: U256, len: U256) -> Result<usize, VmError> {
        let len = len.to_usize().ok_or(VmError::OutOfGas)?;
        if len == 0 {
            return Ok(0);
        }
        let offset = offset.to_usize().ok_or(VmError::OutOfGas)?;
        let end = offset.checked_add(len).ok_or(VmError::OutOfGas)? as u64;
        let new_words = gas::words(end);
        let cost = gas::memory_expansion_cost(self.memory.words(), new_words);
        self.use_gas(cost)?;
        self.memory.expand(offset, len);
        Ok(offset)
    }
}

impl<'a, H: Host> Evm<'a, H> {
    /// Creates an executor over a host and environment.
    pub fn new(host: &'a mut H, env: Env) -> Self {
        Evm {
            host,
            env,
            depth: 0,
            inspector: None,
            cache: Arc::new(AnalysisCache::new()),
        }
    }

    /// Creates an executor with an [`crate::inspect::Inspector`] attached
    /// (step tracing / gas profiling).
    pub fn with_inspector(
        host: &'a mut H,
        env: Env,
        inspector: &'a mut dyn crate::inspect::Inspector,
    ) -> Self {
        Evm {
            host,
            env,
            depth: 0,
            inspector: Some(inspector),
            cache: Arc::new(AnalysisCache::new()),
        }
    }

    /// Replaces the (per-executor, private) analysis cache with a shared
    /// one, so jumpdest bitmaps persist across transactions and blocks.
    /// Chainable: `Evm::new(..).with_analysis_cache(cache)`.
    #[must_use]
    pub fn with_analysis_cache(mut self, cache: Arc<AnalysisCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Executes a message call (top-level or nested).
    pub fn call(&mut self, params: CallParams) -> CallOutcome {
        if self.depth > g::MAX_DEPTH {
            // Depth failures refund the provided gas to the caller.
            return CallOutcome {
                success: false,
                gas_left: params.gas,
                output: Vec::new(),
                error: Some(VmError::OutOfGas),
                reverted: false,
            };
        }
        let snapshot = self.host.snapshot();

        if let Some(value) = params.transfer_value {
            if !self.host.transfer(params.caller, params.address, value) {
                self.host.revert(snapshot);
                return CallOutcome {
                    success: false,
                    gas_left: params.gas,
                    output: Vec::new(),
                    error: None,
                    reverted: false,
                };
            }
        }

        if precompile::is_precompile(params.code_address) {
            return match precompile::run(params.code_address, &params.data, params.gas) {
                Some(res) => CallOutcome {
                    success: true,
                    gas_left: params.gas - res.gas_cost,
                    output: res.output,
                    error: None,
                    reverted: false,
                },
                None => {
                    self.host.revert(snapshot);
                    CallOutcome::failure(VmError::OutOfGas)
                }
            };
        }

        let code = self.host.code(params.code_address);
        if code.is_empty() {
            // Plain transfer or call to an EOA: trivially succeeds.
            return CallOutcome {
                success: true,
                gas_left: params.gas,
                output: Vec::new(),
                error: None,
                reverted: false,
            };
        }

        // The account's cached code hash makes this a map probe, not a
        // keccak; the bitmap itself is shared across frames and blocks.
        let analysis = self
            .cache
            .get_or_analyze(self.host.code_hash(params.code_address), &code);
        let mut frame = Box::new(Frame::new(code, analysis, &params));
        self.depth += 1;
        let result = self.run(&mut frame);
        self.depth -= 1;

        match result {
            FrameResult::Stopped => CallOutcome {
                success: true,
                gas_left: frame.gas,
                output: Vec::new(),
                error: None,
                reverted: false,
            },
            FrameResult::Returned(output) => CallOutcome {
                success: true,
                gas_left: frame.gas,
                output,
                error: None,
                reverted: false,
            },
            FrameResult::Reverted(output) => {
                self.host.revert(snapshot);
                CallOutcome {
                    success: false,
                    gas_left: frame.gas,
                    output,
                    error: None,
                    reverted: true,
                }
            }
            FrameResult::Failed(err) => {
                self.host.revert(snapshot);
                CallOutcome::failure(err)
            }
        }
    }

    /// Creates a contract: consumes the creator's current nonce, runs the
    /// initcode, charges the code deposit and installs the runtime code.
    pub fn create(
        &mut self,
        caller: Address,
        value: U256,
        init_code: Vec<u8>,
        gas_limit: u64,
    ) -> CreateOutcome {
        if self.depth > g::MAX_DEPTH {
            return CreateOutcome {
                success: false,
                gas_left: gas_limit,
                address: None,
                output: Vec::new(),
                error: Some(VmError::OutOfGas),
            };
        }
        if self.host.balance(caller) < value {
            return CreateOutcome {
                success: false,
                gas_left: gas_limit,
                address: None,
                output: Vec::new(),
                error: None,
            };
        }

        let nonce = self.host.nonce(caller);
        self.host.bump_nonce(caller);
        let address = contract_address(caller, nonce);

        let snapshot = self.host.snapshot();
        if !self.host.create_contract(address) {
            self.host.revert(snapshot);
            return CreateOutcome {
                success: false,
                gas_left: 0,
                address: None,
                output: Vec::new(),
                error: Some(VmError::CreateCollision),
            };
        }
        if !self.host.transfer(caller, address, value) {
            self.host.revert(snapshot);
            return CreateOutcome {
                success: false,
                gas_left: gas_limit,
                address: None,
                output: Vec::new(),
                error: None,
            };
        }

        let params = CallParams {
            caller,
            address,
            code_address: address,
            apparent_value: value,
            transfer_value: None,
            data: Vec::new(),
            gas: gas_limit,
            is_static: false,
        };
        // Initcode has no account to look a hash up on; hash it once here
        // so repeated deployments of the same initcode (dispute-path
        // re-deployments in particular) still share one analysis.
        let init_code = Arc::new(init_code);
        let analysis = self.cache.get_or_analyze(keccak256(&init_code), &init_code);
        let mut frame = Box::new(Frame::new(init_code, analysis, &params));
        self.depth += 1;
        let result = self.run(&mut frame);
        self.depth -= 1;

        match result {
            FrameResult::Stopped | FrameResult::Returned(_) => {
                let runtime = match result {
                    FrameResult::Returned(code) => code,
                    _ => Vec::new(),
                };
                if runtime.len() > MAX_CODE_SIZE {
                    self.host.revert(snapshot);
                    return CreateOutcome {
                        success: false,
                        gas_left: 0,
                        address: None,
                        output: Vec::new(),
                        error: Some(VmError::CodeSizeLimit),
                    };
                }
                let deposit = g::CODEDEPOSIT * runtime.len() as u64;
                if frame.gas < deposit {
                    // EIP-2: insufficient gas for the deposit fails creation.
                    self.host.revert(snapshot);
                    return CreateOutcome {
                        success: false,
                        gas_left: 0,
                        address: None,
                        output: Vec::new(),
                        error: Some(VmError::OutOfGas),
                    };
                }
                frame.gas -= deposit;
                self.host.set_code(address, runtime);
                CreateOutcome {
                    success: true,
                    gas_left: frame.gas,
                    address: Some(address),
                    output: Vec::new(),
                    error: None,
                }
            }
            FrameResult::Reverted(output) => {
                self.host.revert(snapshot);
                CreateOutcome {
                    success: false,
                    gas_left: frame.gas,
                    address: None,
                    output,
                    error: None,
                }
            }
            FrameResult::Failed(err) => {
                self.host.revert(snapshot);
                CreateOutcome {
                    success: false,
                    gas_left: 0,
                    address: None,
                    output: Vec::new(),
                    error: Some(err),
                }
            }
        }
    }

    fn run(&mut self, f: &mut Frame) -> FrameResult {
        let result = self.run_inner(f);
        if let Some(ins) = self.inspector.as_mut() {
            ins.exit_frame(self.depth, f.gas);
        }
        result
    }

    #[allow(clippy::too_many_lines)]
    fn run_inner(&mut self, f: &mut Frame) -> FrameResult {
        macro_rules! try_vm {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(err) => return FrameResult::Failed(err),
                }
            };
        }

        loop {
            let Some(&byte) = f.code.get(f.pc) else {
                // Running off the end of code is an implicit STOP.
                return FrameResult::Stopped;
            };
            let Some(op) = Op::from_byte(byte) else {
                return FrameResult::Failed(VmError::InvalidOpcode(byte));
            };
            if let Some(ins) = self.inspector.as_mut() {
                ins.step(self.depth, f.pc, byte, f.gas);
            }
            f.pc += 1;

            match op {
                Op::Stop => return FrameResult::Stopped,

                // ---- arithmetic ----
                Op::Add => try_vm!(self.binop(f, g::VERYLOW, |a, b| a.wrapping_add(b))),
                Op::Mul => try_vm!(self.binop(f, g::LOW, |a, b| a.wrapping_mul(b))),
                Op::Sub => try_vm!(self.binop(f, g::VERYLOW, |a, b| a.wrapping_sub(b))),
                Op::Div => try_vm!(self.binop(f, g::LOW, |a, b| a.div_rem(b).0)),
                Op::SDiv => try_vm!(self.binop(f, g::LOW, |a, b| a.sdiv(b))),
                Op::Mod => try_vm!(self.binop(f, g::LOW, |a, b| a.div_rem(b).1)),
                Op::SMod => try_vm!(self.binop(f, g::LOW, |a, b| a.smod(b))),
                Op::AddMod => try_vm!(self.ternop(f, g::MID, |a, b, m| a.addmod(b, m))),
                Op::MulMod => try_vm!(self.ternop(f, g::MID, |a, b, m| a.mulmod(b, m))),
                Op::Exp => {
                    let base = try_vm!(f.pop());
                    let exponent = try_vm!(f.pop());
                    try_vm!(f.use_gas(gas::exp_cost(exponent)));
                    try_vm!(f.push(base.wrapping_pow(exponent)));
                }
                Op::SignExtend => try_vm!(self.binop(f, g::LOW, |k, v| v.signextend(k))),

                // ---- comparison / bitwise ----
                Op::Lt => try_vm!(self.binop(f, g::VERYLOW, |a, b| U256::from(a < b))),
                Op::Gt => try_vm!(self.binop(f, g::VERYLOW, |a, b| U256::from(a > b))),
                Op::SLt => try_vm!(self.binop(f, g::VERYLOW, |a, b| U256::from(a.slt(b)))),
                Op::SGt => try_vm!(self.binop(f, g::VERYLOW, |a, b| U256::from(b.slt(a)))),
                Op::Eq => try_vm!(self.binop(f, g::VERYLOW, |a, b| U256::from(a == b))),
                Op::IsZero => {
                    try_vm!(f.use_gas(g::VERYLOW));
                    let a = try_vm!(f.pop());
                    try_vm!(f.push(U256::from(a.is_zero())));
                }
                Op::And => try_vm!(self.binop(f, g::VERYLOW, |a, b| a & b)),
                Op::Or => try_vm!(self.binop(f, g::VERYLOW, |a, b| a | b)),
                Op::Xor => try_vm!(self.binop(f, g::VERYLOW, |a, b| a ^ b)),
                Op::Not => {
                    try_vm!(f.use_gas(g::VERYLOW));
                    let a = try_vm!(f.pop());
                    try_vm!(f.push(!a));
                }
                Op::Byte => try_vm!(self.binop(f, g::VERYLOW, |i, v| v.byte(i))),
                Op::Shl => try_vm!(self.binop(f, g::VERYLOW, |n, v| {
                    v.shl_bits(n.to_u64().map_or(256, |x| x.min(256)) as u32)
                })),
                Op::Shr => try_vm!(self.binop(f, g::VERYLOW, |n, v| {
                    v.shr_bits(n.to_u64().map_or(256, |x| x.min(256)) as u32)
                })),
                Op::Sar => try_vm!(self.binop(f, g::VERYLOW, |n, v| {
                    v.sar_bits(n.to_u64().map_or(256, |x| x.min(256)) as u32)
                })),

                // ---- hashing ----
                Op::Keccak256 => {
                    let offset = try_vm!(f.pop());
                    let len = try_vm!(f.pop());
                    let word_count = gas::words(len.to_u64().unwrap_or(u64::MAX));
                    try_vm!(f.use_gas(
                        g::KECCAK256.saturating_add(g::KECCAK256WORD.saturating_mul(word_count))
                    ));
                    let off = try_vm!(f.charge_memory(offset, len));
                    let data = f.memory.slice(off, len.to_usize().unwrap_or(0));
                    let hash = keccak256(data);
                    try_vm!(f.push(hash.to_u256()));
                }

                // ---- environment ----
                Op::Address => {
                    try_vm!(f.use_gas(g::BASE));
                    let a = f.address.to_u256();
                    try_vm!(f.push(a));
                }
                Op::Balance => {
                    try_vm!(f.use_gas(g::BALANCE));
                    let a = Address::from_u256(try_vm!(f.pop()));
                    let b = self.host.balance(a);
                    try_vm!(f.push(b));
                }
                Op::Origin => {
                    try_vm!(f.use_gas(g::BASE));
                    let a = self.env.tx.origin.to_u256();
                    try_vm!(f.push(a));
                }
                Op::Caller => {
                    try_vm!(f.use_gas(g::BASE));
                    let a = f.caller.to_u256();
                    try_vm!(f.push(a));
                }
                Op::CallValue => {
                    try_vm!(f.use_gas(g::BASE));
                    let v = f.value;
                    try_vm!(f.push(v));
                }
                Op::CallDataLoad => {
                    try_vm!(f.use_gas(g::VERYLOW));
                    let offset = try_vm!(f.pop());
                    let mut buf = [0u8; 32];
                    if let Some(off) = offset.to_usize() {
                        for (i, b) in buf.iter_mut().enumerate() {
                            *b = f.data.get(off + i).copied().unwrap_or(0);
                        }
                    }
                    try_vm!(f.push(U256::from_be_bytes(buf)));
                }
                Op::CallDataSize => {
                    try_vm!(f.use_gas(g::BASE));
                    let n = U256::from_u64(f.data.len() as u64);
                    try_vm!(f.push(n));
                }
                Op::CallDataCopy => {
                    let (dst, src, len) = (try_vm!(f.pop()), try_vm!(f.pop()), try_vm!(f.pop()));
                    try_vm!(self.copy_to_memory(f, dst, src, len, CopySource::CallData));
                }
                Op::CodeSize => {
                    try_vm!(f.use_gas(g::BASE));
                    let n = U256::from_u64(f.code.len() as u64);
                    try_vm!(f.push(n));
                }
                Op::CodeCopy => {
                    let (dst, src, len) = (try_vm!(f.pop()), try_vm!(f.pop()), try_vm!(f.pop()));
                    try_vm!(self.copy_to_memory(f, dst, src, len, CopySource::Code));
                }
                Op::GasPrice => {
                    try_vm!(f.use_gas(g::BASE));
                    let p = self.env.tx.gas_price;
                    try_vm!(f.push(p));
                }
                Op::ExtCodeSize => {
                    try_vm!(f.use_gas(g::EXTCODE));
                    let a = Address::from_u256(try_vm!(f.pop()));
                    let n = U256::from_u64(self.host.code(a).len() as u64);
                    try_vm!(f.push(n));
                }
                Op::ExtCodeCopy => {
                    let a = Address::from_u256(try_vm!(f.pop()));
                    let (dst, src, len) = (try_vm!(f.pop()), try_vm!(f.pop()), try_vm!(f.pop()));
                    try_vm!(self.copy_to_memory(f, dst, src, len, CopySource::ExtCode(a)));
                }
                Op::ReturnDataSize => {
                    try_vm!(f.use_gas(g::BASE));
                    let n = U256::from_u64(f.return_data.len() as u64);
                    try_vm!(f.push(n));
                }
                Op::ReturnDataCopy => {
                    let (dst, src, len) = (try_vm!(f.pop()), try_vm!(f.pop()), try_vm!(f.pop()));
                    // Unlike the other copies, OOB reads are a hard error.
                    let src_usize = src.to_usize().ok_or(VmError::ReturnDataOutOfBounds);
                    let src_usize = try_vm!(src_usize);
                    let len_usize = len.to_usize().ok_or(VmError::ReturnDataOutOfBounds);
                    let len_usize = try_vm!(len_usize);
                    if src_usize.saturating_add(len_usize) > f.return_data.len() {
                        return FrameResult::Failed(VmError::ReturnDataOutOfBounds);
                    }
                    try_vm!(self.copy_to_memory(f, dst, src, len, CopySource::ReturnData));
                }

                // ---- block ----
                Op::BlockHash => {
                    try_vm!(f.use_gas(g::BLOCKHASH));
                    let n = try_vm!(f.pop());
                    let current = self.env.block.number;
                    let hash = match n.to_u64() {
                        Some(num) if num < current && current - num <= 256 => {
                            self.host.block_hash(num)
                        }
                        _ => H256::ZERO,
                    };
                    try_vm!(f.push(hash.to_u256()));
                }
                Op::Coinbase => {
                    try_vm!(f.use_gas(g::BASE));
                    let a = self.env.block.coinbase.to_u256();
                    try_vm!(f.push(a));
                }
                Op::Timestamp => {
                    try_vm!(f.use_gas(g::BASE));
                    let t = U256::from_u64(self.env.block.timestamp);
                    try_vm!(f.push(t));
                }
                Op::Number => {
                    try_vm!(f.use_gas(g::BASE));
                    let n = U256::from_u64(self.env.block.number);
                    try_vm!(f.push(n));
                }
                Op::Difficulty => {
                    try_vm!(f.use_gas(g::BASE));
                    let d = self.env.block.difficulty;
                    try_vm!(f.push(d));
                }
                Op::GasLimit => {
                    try_vm!(f.use_gas(g::BASE));
                    let l = U256::from_u64(self.env.block.gas_limit);
                    try_vm!(f.push(l));
                }

                // ---- stack/memory/storage/flow ----
                Op::Pop => {
                    try_vm!(f.use_gas(g::BASE));
                    try_vm!(f.pop());
                }
                Op::MLoad => {
                    try_vm!(f.use_gas(g::VERYLOW));
                    let offset = try_vm!(f.pop());
                    let off = try_vm!(f.charge_memory(offset, U256::from_u64(32)));
                    let v = f.memory.load_word(off);
                    try_vm!(f.push(v));
                }
                Op::MStore => {
                    try_vm!(f.use_gas(g::VERYLOW));
                    let offset = try_vm!(f.pop());
                    let value = try_vm!(f.pop());
                    let off = try_vm!(f.charge_memory(offset, U256::from_u64(32)));
                    f.memory.store_word(off, value);
                }
                Op::MStore8 => {
                    try_vm!(f.use_gas(g::VERYLOW));
                    let offset = try_vm!(f.pop());
                    let value = try_vm!(f.pop());
                    let off = try_vm!(f.charge_memory(offset, U256::ONE));
                    f.memory.store_byte(off, value.low_u64() as u8);
                }
                Op::SLoad => {
                    try_vm!(f.use_gas(g::SLOAD));
                    let key = try_vm!(f.pop());
                    let v = self.host.storage(f.address, key);
                    try_vm!(f.push(v));
                }
                Op::SStore => {
                    if f.is_static {
                        return FrameResult::Failed(VmError::StaticViolation);
                    }
                    let key = try_vm!(f.pop());
                    let value = try_vm!(f.pop());
                    let current = self.host.storage(f.address, key);
                    let cost = if current.is_zero() && !value.is_zero() {
                        g::SSET
                    } else {
                        g::SRESET
                    };
                    try_vm!(f.use_gas(cost));
                    if !current.is_zero() && value.is_zero() {
                        self.host.add_refund(g::SCLEAR_REFUND);
                    }
                    self.host.set_storage(f.address, key, value);
                }
                Op::Jump => {
                    try_vm!(f.use_gas(g::MID));
                    let dest = try_vm!(f.pop());
                    try_vm!(self.do_jump(f, dest));
                }
                Op::JumpI => {
                    try_vm!(f.use_gas(g::HIGH));
                    let dest = try_vm!(f.pop());
                    let cond = try_vm!(f.pop());
                    if !cond.is_zero() {
                        try_vm!(self.do_jump(f, dest));
                    }
                }
                Op::Pc => {
                    try_vm!(f.use_gas(g::BASE));
                    let pc = U256::from_u64((f.pc - 1) as u64);
                    try_vm!(f.push(pc));
                }
                Op::MSize => {
                    try_vm!(f.use_gas(g::BASE));
                    let n = U256::from_u64(f.memory.len() as u64);
                    try_vm!(f.push(n));
                }
                Op::Gas => {
                    try_vm!(f.use_gas(g::BASE));
                    let gas = U256::from_u64(f.gas);
                    try_vm!(f.push(gas));
                }
                Op::JumpDest => {
                    try_vm!(f.use_gas(g::JUMPDEST));
                }

                // ---- push/dup/swap ----
                _ if op.push_bytes() > 0 => {
                    try_vm!(f.use_gas(g::VERYLOW));
                    let n = op.push_bytes();
                    let end = (f.pc + n).min(f.code.len());
                    let slice = &f.code[f.pc..end];
                    // Truncated push data reads as zero-padded (right).
                    let mut buf = [0u8; 32];
                    buf[32 - n..32 - n + slice.len()].copy_from_slice(slice);
                    f.pc += n;
                    try_vm!(f.push(U256::from_be_bytes(buf)));
                }
                _ if (0x80..=0x8f).contains(&byte) => {
                    try_vm!(f.use_gas(g::VERYLOW));
                    let depth = (byte - 0x80) as usize;
                    let v = try_vm!(f.peek(depth));
                    try_vm!(f.push(v));
                }
                _ if (0x90..=0x9f).contains(&byte) => {
                    try_vm!(f.use_gas(g::VERYLOW));
                    let depth = (byte - 0x90 + 1) as usize;
                    let len = f.stack.len();
                    if depth >= len {
                        return FrameResult::Failed(VmError::StackUnderflow);
                    }
                    f.stack.swap(len - 1, len - 1 - depth);
                }

                // ---- logging ----
                Op::Log0 | Op::Log1 | Op::Log2 | Op::Log3 | Op::Log4 => {
                    if f.is_static {
                        return FrameResult::Failed(VmError::StaticViolation);
                    }
                    let topic_count = (byte - 0xa0) as usize;
                    let offset = try_vm!(f.pop());
                    let len = try_vm!(f.pop());
                    let mut topics = Vec::with_capacity(topic_count);
                    for _ in 0..topic_count {
                        topics.push(H256::from_u256(try_vm!(f.pop())));
                    }
                    let data_len = len.to_u64().unwrap_or(u64::MAX);
                    try_vm!(f.use_gas(
                        g::LOG
                            .saturating_add(g::LOGTOPIC.saturating_mul(topic_count as u64))
                            .saturating_add(g::LOGDATA.saturating_mul(data_len))
                    ));
                    let off = try_vm!(f.charge_memory(offset, len));
                    let data = f.memory.slice(off, len.to_usize().unwrap_or(0)).to_vec();
                    self.host.log(LogEntry {
                        address: f.address,
                        topics,
                        data,
                    });
                }

                // ---- system ----
                Op::Create => {
                    if f.is_static {
                        return FrameResult::Failed(VmError::StaticViolation);
                    }
                    let value = try_vm!(f.pop());
                    let offset = try_vm!(f.pop());
                    let len = try_vm!(f.pop());
                    try_vm!(f.use_gas(g::CREATE));
                    let off = try_vm!(f.charge_memory(offset, len));
                    let init = f.memory.slice(off, len.to_usize().unwrap_or(0)).to_vec();

                    let child_gas = gas::max_call_gas(f.gas);
                    try_vm!(f.use_gas(child_gas));
                    let outcome = self.create(f.address, value, init, child_gas);
                    f.gas += outcome.gas_left;
                    f.return_data = outcome.output.clone();
                    let pushed = match outcome.address {
                        Some(a) if outcome.success => a.to_u256(),
                        _ => U256::ZERO,
                    };
                    try_vm!(f.push(pushed));
                }
                Op::Call | Op::CallCode | Op::DelegateCall | Op::StaticCall => {
                    try_vm!(self.do_call(f, op));
                }
                Op::Return => {
                    let offset = try_vm!(f.pop());
                    let len = try_vm!(f.pop());
                    let off = try_vm!(f.charge_memory(offset, len));
                    let out = f.memory.slice(off, len.to_usize().unwrap_or(0)).to_vec();
                    return FrameResult::Returned(out);
                }
                Op::Revert => {
                    let offset = try_vm!(f.pop());
                    let len = try_vm!(f.pop());
                    let off = try_vm!(f.charge_memory(offset, len));
                    let out = f.memory.slice(off, len.to_usize().unwrap_or(0)).to_vec();
                    return FrameResult::Reverted(out);
                }
                Op::Invalid => {
                    return FrameResult::Failed(VmError::InvalidOpcode(0xfe));
                }
                Op::SelfDestruct => {
                    if f.is_static {
                        return FrameResult::Failed(VmError::StaticViolation);
                    }
                    try_vm!(f.use_gas(5_000));
                    let beneficiary = Address::from_u256(try_vm!(f.pop()));
                    let balance = self.host.balance(f.address);
                    if !balance.is_zero() && !self.host.account_exists(beneficiary) {
                        try_vm!(f.use_gas(g::NEWACCOUNT));
                    }
                    self.host.transfer(f.address, beneficiary, balance);
                    // Simplification: code removal at tx end is not
                    // modelled; the refund and balance sweep are.
                    self.host.add_refund(24_000);
                    return FrameResult::Stopped;
                }

                // All enum variants are covered above; this arm is
                // unreachable but satisfies the match checker for the
                // push/dup/swap guard patterns.
                _ => return FrameResult::Failed(VmError::InvalidOpcode(byte)),
            }
        }
    }

    fn binop(
        &mut self,
        f: &mut Frame,
        cost: u64,
        op: impl FnOnce(U256, U256) -> U256,
    ) -> Result<(), VmError> {
        f.use_gas(cost)?;
        let a = f.pop()?;
        let b = f.pop()?;
        f.push(op(a, b))
    }

    fn ternop(
        &mut self,
        f: &mut Frame,
        cost: u64,
        op: impl FnOnce(U256, U256, U256) -> U256,
    ) -> Result<(), VmError> {
        f.use_gas(cost)?;
        let a = f.pop()?;
        let b = f.pop()?;
        let c = f.pop()?;
        f.push(op(a, b, c))
    }

    fn do_jump(&mut self, f: &mut Frame, dest: U256) -> Result<(), VmError> {
        let Some(pc) = dest.to_usize() else {
            return Err(VmError::InvalidJump(usize::MAX));
        };
        if !f.analysis.is_jumpdest(pc) {
            return Err(VmError::InvalidJump(pc));
        }
        f.pc = pc;
        Ok(())
    }

    fn copy_to_memory(
        &mut self,
        f: &mut Frame,
        dst: U256,
        src: U256,
        len: U256,
        source: CopySource,
    ) -> Result<(), VmError> {
        let base_cost = match source {
            CopySource::ExtCode(_) => g::EXTCODE,
            _ => g::VERYLOW,
        };
        let word_count = gas::words(len.to_u64().unwrap_or(u64::MAX));
        f.use_gas(base_cost.saturating_add(g::COPYWORD.saturating_mul(word_count)))?;
        let dst_off = f.charge_memory(dst, len)?;
        let len = len.to_usize().unwrap_or(0);
        if len == 0 {
            return Ok(());
        }
        let src_off = src.to_usize().unwrap_or(usize::MAX);
        let buf: Vec<u8> = match source {
            CopySource::CallData => tail(&f.data, src_off).to_vec(),
            CopySource::Code => tail(&f.code, src_off).to_vec(),
            CopySource::ReturnData => tail(&f.return_data, src_off).to_vec(),
            CopySource::ExtCode(a) => tail(&self.host.code(a), src_off).to_vec(),
        };
        f.memory.copy_padded(dst_off, len, &buf);
        Ok(())
    }

    fn do_call(&mut self, f: &mut Frame, op: Op) -> Result<(), VmError> {
        let gas_req = f.pop()?;
        let to = Address::from_u256(f.pop()?);
        let value = match op {
            Op::Call | Op::CallCode => f.pop()?,
            _ => U256::ZERO,
        };
        let in_off = f.pop()?;
        let in_len = f.pop()?;
        let out_off = f.pop()?;
        let out_len = f.pop()?;

        if f.is_static && op == Op::Call && !value.is_zero() {
            return Err(VmError::StaticViolation);
        }

        // Static base + value surcharge + new-account surcharge.
        let mut cost = g::CALL;
        let transfers_value = op == Op::Call && !value.is_zero();
        if !value.is_zero() && matches!(op, Op::Call | Op::CallCode) {
            cost += g::CALLVALUE;
        }
        if transfers_value && !self.host.account_exists(to) && !precompile::is_precompile(to) {
            cost += g::NEWACCOUNT;
        }
        f.use_gas(cost)?;

        // Memory for both regions.
        let in_offset = f.charge_memory(in_off, in_len)?;
        let out_offset = f.charge_memory(out_off, out_len)?;
        let input = f
            .memory
            .slice(in_offset, in_len.to_usize().unwrap_or(0))
            .to_vec();

        // EIP-150: forward at most 63/64 of what remains.
        let cap = gas::max_call_gas(f.gas);
        let mut child_gas = match gas_req.to_u64() {
            Some(g) => g.min(cap),
            None => cap,
        };
        f.use_gas(child_gas)?;
        if !value.is_zero() && matches!(op, Op::Call | Op::CallCode) {
            child_gas += g::CALLSTIPEND;
        }

        let params = match op {
            Op::Call => CallParams {
                caller: f.address,
                address: to,
                code_address: to,
                apparent_value: value,
                transfer_value: Some(value),
                data: input,
                gas: child_gas,
                is_static: f.is_static,
            },
            Op::CallCode => CallParams {
                caller: f.address,
                address: f.address,
                code_address: to,
                apparent_value: value,
                // Value moves from self to self: balance check only.
                transfer_value: Some(value),
                data: input,
                gas: child_gas,
                is_static: f.is_static,
            },
            Op::DelegateCall => CallParams {
                caller: f.caller,
                address: f.address,
                code_address: to,
                apparent_value: f.value,
                transfer_value: None,
                data: input,
                gas: child_gas,
                is_static: f.is_static,
            },
            Op::StaticCall => CallParams {
                caller: f.address,
                address: to,
                code_address: to,
                apparent_value: U256::ZERO,
                transfer_value: None,
                data: input,
                gas: child_gas,
                is_static: true,
            },
            _ => unreachable!("do_call only handles call-family ops"),
        };

        let outcome = self.call(params);
        f.gas += outcome.gas_left;
        // Copy output into the caller-designated region (truncated).
        let out_len_usize = out_len.to_usize().unwrap_or(0);
        if out_len_usize > 0 {
            let n = outcome.output.len().min(out_len_usize);
            if n > 0 {
                f.memory.copy_padded(out_offset, n, &outcome.output[..n]);
            }
        }
        f.return_data = outcome.output;
        f.push(U256::from(outcome.success))
    }
}

enum CopySource {
    CallData,
    Code,
    ReturnData,
    ExtCode(Address),
}

/// Returns `data[offset..]`, or empty when offset is past the end.
fn tail(data: &[u8], offset: usize) -> &[u8] {
    data.get(offset..).unwrap_or(&[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::MockHost;

    fn addr(b: u8) -> Address {
        Address([b; 20])
    }

    /// Runs raw code in a one-off contract with the given calldata.
    fn run_code(code: Vec<u8>, data: Vec<u8>, gas: u64) -> (CallOutcome, MockHost) {
        let mut host = MockHost::new();
        host.install(addr(0xcc), code);
        host.fund(addr(0xee), sc_primitives::ether(10));
        let mut evm = Evm::new(&mut host, Env::default());
        let out = evm.call(CallParams::transact(
            addr(0xee),
            addr(0xcc),
            U256::ZERO,
            data,
            gas,
        ));
        (out, host)
    }

    // Convenience: PUSH1 x
    fn push1(x: u8) -> Vec<u8> {
        vec![0x60, x]
    }

    #[test]
    fn add_and_return() {
        // PUSH1 2, PUSH1 3, ADD, PUSH1 0, MSTORE, PUSH1 32, PUSH1 0, RETURN
        let mut code = Vec::new();
        code.extend(push1(2));
        code.extend(push1(3));
        code.push(0x01);
        code.extend(push1(0));
        code.push(0x52);
        code.extend(push1(32));
        code.extend(push1(0));
        code.push(0xf3);
        let (out, _) = run_code(code, vec![], 100_000);
        assert!(out.success);
        assert_eq!(U256::from_be_slice(&out.output), U256::from_u64(5));
    }

    #[test]
    fn gas_accounting_simple_sequence() {
        // PUSH1 PUSH1 ADD = 3 + 3 + 3 = 9 gas, then implicit stop.
        let mut code = Vec::new();
        code.extend(push1(1));
        code.extend(push1(2));
        code.push(0x01);
        let (out, _) = run_code(code, vec![], 1_000);
        assert!(out.success);
        assert_eq!(out.gas_left, 1_000 - 9);
    }

    #[test]
    fn out_of_gas_consumes_everything() {
        let mut code = Vec::new();
        code.extend(push1(1));
        code.extend(push1(2));
        code.push(0x01);
        let (out, _) = run_code(code, vec![], 8);
        assert!(!out.success);
        assert_eq!(out.gas_left, 0);
        assert_eq!(out.error, Some(VmError::OutOfGas));
    }

    #[test]
    fn stack_underflow_detected() {
        let (out, _) = run_code(vec![0x01], vec![], 1_000); // ADD on empty stack
        assert_eq!(out.error, Some(VmError::StackUnderflow));
    }

    #[test]
    fn invalid_jump_detected() {
        // PUSH1 3, JUMP — target 3 is not a JUMPDEST.
        let code = vec![0x60, 0x03, 0x56, 0x00];
        let (out, _) = run_code(code, vec![], 1_000);
        assert_eq!(out.error, Some(VmError::InvalidJump(3)));
    }

    #[test]
    fn jump_to_jumpdest_works() {
        // PUSH1 4, JUMP, INVALID, JUMPDEST, STOP
        let code = vec![0x60, 0x04, 0x56, 0xfe, 0x5b, 0x00];
        let (out, _) = run_code(code, vec![], 1_000);
        assert!(out.success, "error: {:?}", out.error);
    }

    #[test]
    fn jump_into_push_data_rejected() {
        // PUSH1 1 — byte at pc=1 is 0x5b but inside push data; JUMP there must fail.
        // code: PUSH1 0x5b (pc0..1), PUSH1 1 (pc2..3), JUMP(pc4)
        let code = vec![0x60, 0x5b, 0x60, 0x01, 0x56];
        let (out, _) = run_code(code, vec![], 1_000);
        assert_eq!(out.error, Some(VmError::InvalidJump(1)));
    }

    #[test]
    fn calldata_load_and_size() {
        // CALLDATASIZE, PUSH1 0, MSTORE, CALLDATALOAD(0) at 32, return both
        // Simpler: return CALLDATALOAD(0)
        let code = vec![
            0x60, 0x00, 0x35, // PUSH1 0, CALLDATALOAD
            0x60, 0x00, 0x52, // MSTORE at 0
            0x60, 0x20, 0x60, 0x00, 0xf3, // RETURN 32 bytes
        ];
        let mut data = vec![0u8; 32];
        data[31] = 42;
        let (out, _) = run_code(code, data, 100_000);
        assert_eq!(U256::from_be_slice(&out.output), U256::from_u64(42));
    }

    #[test]
    fn storage_write_read_and_gas() {
        // SSTORE(0, 7) then return SLOAD(0)
        let code = vec![
            0x60, 0x07, 0x60, 0x00, 0x55, // PUSH1 7, PUSH1 0, SSTORE
            0x60, 0x00, 0x54, // SLOAD
            0x60, 0x00, 0x52, // MSTORE
            0x60, 0x20, 0x60, 0x00, 0xf3,
        ];
        let (out, host) = run_code(code, vec![], 100_000);
        assert!(out.success);
        assert_eq!(U256::from_be_slice(&out.output), U256::from_u64(7));
        assert_eq!(host.storage(addr(0xcc), U256::ZERO), U256::from_u64(7));
        // Gas: 3+3+20000 (sset) + 3+200 (sload) + 3+3 (mstore) + 3+3 = 20224
        assert_eq!(out.gas_left, 100_000 - 20_224);
    }

    #[test]
    fn sstore_clear_adds_refund() {
        // SSTORE(0,5); SSTORE(0,0)
        let code = vec![0x60, 0x05, 0x60, 0x00, 0x55, 0x60, 0x00, 0x60, 0x00, 0x55];
        let (out, host) = run_code(code, vec![], 100_000);
        assert!(out.success);
        assert_eq!(host.refund, 15_000);
    }

    #[test]
    fn revert_rolls_back_state_but_keeps_gas() {
        // SSTORE(0, 7); REVERT(0,0)
        let code = vec![
            0x60, 0x07, 0x60, 0x00, 0x55, // SSTORE
            0x60, 0x00, 0x60, 0x00, 0xfd, // REVERT
        ];
        let (out, host) = run_code(code, vec![], 100_000);
        assert!(!out.success);
        assert!(out.reverted);
        assert!(out.gas_left > 0, "revert preserves remaining gas");
        assert_eq!(host.storage(addr(0xcc), U256::ZERO), U256::ZERO);
    }

    #[test]
    fn keccak_opcode_matches_library() {
        // Store "abc" via MSTORE8s, hash 3 bytes at offset 0.
        let code = vec![
            0x60, b'a', 0x60, 0x00, 0x53, // MSTORE8(0,'a')
            0x60, b'b', 0x60, 0x01, 0x53, 0x60, b'c', 0x60, 0x02, 0x53, 0x60, 0x03, 0x60, 0x00,
            0x20, // KECCAK256(0,3)
            0x60, 0x00, 0x52, // MSTORE
            0x60, 0x20, 0x60, 0x00, 0xf3,
        ];
        let (out, _) = run_code(code, vec![], 100_000);
        assert_eq!(out.output, keccak256(b"abc").as_bytes());
    }

    #[test]
    fn timestamp_exposed() {
        let mut host = MockHost::new();
        host.install(
            addr(0xcc),
            vec![0x42, 0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3],
        );
        host.fund(addr(0xee), sc_primitives::ether(1));
        let mut env = Env::default();
        env.block.timestamp = 123_456;
        let mut evm = Evm::new(&mut host, env);
        let out = evm.call(CallParams::transact(
            addr(0xee),
            addr(0xcc),
            U256::ZERO,
            vec![],
            100_000,
        ));
        assert_eq!(U256::from_be_slice(&out.output), U256::from_u64(123_456));
    }

    #[test]
    fn plain_value_transfer_to_eoa() {
        let mut host = MockHost::new();
        host.fund(addr(1), sc_primitives::ether(5));
        let mut evm = Evm::new(&mut host, Env::default());
        let out = evm.call(CallParams::transact(
            addr(1),
            addr(2),
            sc_primitives::ether(2),
            vec![],
            100_000,
        ));
        assert!(out.success);
        assert_eq!(out.gas_left, 100_000, "EOA call consumes no exec gas");
        assert_eq!(host.balance(addr(2)), sc_primitives::ether(2));
    }

    #[test]
    fn insufficient_balance_fails_without_consuming_gas() {
        let mut host = MockHost::new();
        host.fund(addr(1), U256::from_u64(10));
        let mut evm = Evm::new(&mut host, Env::default());
        let out = evm.call(CallParams::transact(
            addr(1),
            addr(2),
            sc_primitives::ether(1),
            vec![],
            100_000,
        ));
        assert!(!out.success);
        assert_eq!(out.gas_left, 100_000);
        assert_eq!(host.balance(addr(2)), U256::ZERO);
    }

    #[test]
    fn create_deploys_runtime_code() {
        // Initcode returning 2 bytes of runtime code [0x60, 0x00]:
        // PUSH1 0x60 PUSH1 0 MSTORE8; PUSH1 0x00 PUSH1 1 MSTORE8; RETURN(0,2)
        let init = vec![
            0x60, 0x60, 0x60, 0x00, 0x53, // runtime[0] = 0x60
            0x60, 0x00, 0x60, 0x01, 0x53, // runtime[1] = 0x00
            0x60, 0x02, 0x60, 0x00, 0xf3,
        ];
        let mut host = MockHost::new();
        host.fund(addr(1), sc_primitives::ether(1));
        let mut evm = Evm::new(&mut host, Env::default());
        let out = evm.create(addr(1), U256::ZERO, init, 200_000);
        assert!(out.success, "error: {:?}", out.error);
        let deployed = out.address.unwrap();
        assert_eq!(*host.code(deployed), vec![0x60, 0x00]);
        assert_eq!(host.nonce(addr(1)), 1, "creator nonce bumped");
        assert_eq!(deployed, contract_address(addr(1), 0));
        assert_eq!(host.nonce(deployed), 1, "EIP-161 contract nonce");
    }

    #[test]
    fn create_charges_code_deposit() {
        // Initcode returning 10 zero bytes: deposit = 2000 gas.
        let init = vec![0x60, 0x0a, 0x60, 0x00, 0xf3]; // RETURN(0, 10)
        let mut host = MockHost::new();
        host.fund(addr(1), sc_primitives::ether(1));
        let mut evm = Evm::new(&mut host, Env::default());
        let out = evm.create(addr(1), U256::ZERO, init.clone(), 100_000);
        assert!(out.success);
        // exec: 3+3+memory(1 word => 3)... easier: compare against a
        // zero-deposit run of the same initcode.
        let out2 = Evm::new(&mut host, Env::default()).create(
            addr(1),
            U256::ZERO,
            vec![0x60, 0x00, 0x60, 0x00, 0xf3], // RETURN(0,0)
            100_000,
        );
        assert!(out2.success);
        let exec_cost_deposit = 100_000 - out.gas_left;
        let exec_cost_no_deposit = 100_000 - out2.gas_left;
        // The 10-byte run pays 3 gas for memory expansion + 200*10 deposit.
        assert_eq!(exec_cost_deposit - exec_cost_no_deposit, 2_000 + 3);
    }

    #[test]
    fn create_failure_reverts_and_consumes_gas() {
        // Initcode that REVERTs.
        let init = vec![0x60, 0x00, 0x60, 0x00, 0xfd];
        let mut host = MockHost::new();
        host.fund(addr(1), sc_primitives::ether(1));
        let mut evm = Evm::new(&mut host, Env::default());
        let out = evm.create(addr(1), sc_primitives::ether(1), init, 100_000);
        assert!(!out.success);
        assert!(out.address.is_none());
        assert_eq!(
            host.balance(addr(1)),
            sc_primitives::ether(1),
            "value returned"
        );
        assert_eq!(host.nonce(addr(1)), 1, "nonce bump survives failed create");
    }

    #[test]
    fn nested_call_failure_reverts_only_callee() {
        // Callee: SSTORE(0,1) then INVALID → its write must roll back.
        let callee = vec![0x60, 0x01, 0x60, 0x00, 0x55, 0xfe];
        // Caller: SSTORE(0,9); CALL(gas=0xffff, to=0xbb, value=0, in 0/0, out 0/0); STOP
        let caller = vec![
            0x60, 0x09, 0x60, 0x00, 0x55, // own SSTORE
            0x60, 0x00, 0x60, 0x00, // out
            0x60, 0x00, 0x60, 0x00, // in
            0x60, 0x00, // value
            0x73, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb,
            0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, // PUSH20 callee
            0x61, 0xff, 0xff, // PUSH2 gas
            0xf1, // CALL
            0x00,
        ];
        let mut host = MockHost::new();
        host.install(addr(0xbb), callee);
        host.install(addr(0xaa), caller);
        host.fund(addr(1), sc_primitives::ether(1));
        let mut evm = Evm::new(&mut host, Env::default());
        let out = evm.call(CallParams::transact(
            addr(1),
            addr(0xaa),
            U256::ZERO,
            vec![],
            500_000,
        ));
        assert!(
            out.success,
            "caller survives callee failure: {:?}",
            out.error
        );
        assert_eq!(host.storage(addr(0xaa), U256::ZERO), U256::from_u64(9));
        assert_eq!(host.storage(addr(0xbb), U256::ZERO), U256::ZERO);
    }

    #[test]
    fn staticcall_blocks_sstore() {
        // Callee tries SSTORE.
        let callee = vec![0x60, 0x01, 0x60, 0x00, 0x55, 0x00];
        // Caller STATICCALLs callee and returns the success flag.
        let caller = vec![
            0x60, 0x00, 0x60, 0x00, // out
            0x60, 0x00, 0x60, 0x00, // in
            0x73, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb,
            0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0x61, 0xff, 0xff, 0xfa, // STATICCALL
            0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3,
        ];
        let mut host = MockHost::new();
        host.install(addr(0xbb), callee);
        host.install(addr(0xaa), caller);
        host.fund(addr(1), sc_primitives::ether(1));
        let mut evm = Evm::new(&mut host, Env::default());
        let out = evm.call(CallParams::transact(
            addr(1),
            addr(0xaa),
            U256::ZERO,
            vec![],
            500_000,
        ));
        assert!(out.success);
        assert_eq!(
            U256::from_be_slice(&out.output),
            U256::ZERO,
            "static violation surfaces as callee failure"
        );
        assert_eq!(host.storage(addr(0xbb), U256::ZERO), U256::ZERO);
    }

    #[test]
    fn ecrecover_via_call() {
        use sc_crypto::ecdsa::PrivateKey;
        let key = PrivateKey::from_seed("alice");
        let digest = keccak256(b"bytecode");
        let sig = key.sign(digest);
        // Build calldata hash||v||r||s and CALLDATACOPY it to memory,
        // then CALL precompile 1 and return its 32-byte output.
        let code = vec![
            // CALLDATACOPY(0, 0, 128)
            0x60, 0x80, 0x60, 0x00, 0x60, 0x00, 0x37,
            // CALL(gas=0xffff, to=1, value=0, in=0..128, out=128..160)
            0x60, 0x20, 0x60, 0x80, // out len/off -> pushed in reverse below
            0x60, 0x80, 0x60, 0x00, // in len/off
            0x60, 0x00, // value
            0x60, 0x01, // to
            0x61, 0xff, 0xff, // gas
            0xf1, 0x50, // pop success flag
            // RETURN(128, 32)
            0x60, 0x20, 0x60, 0x80, 0xf3,
        ];
        // Careful: CALL pops gas,to,value,inoff,inlen,outoff,outlen - so
        // push order must be outlen,outoff,inlen,inoff,value,to,gas.
        // The code above pushes: 0x20(outlen),0x80(outoff),0x80(inlen)...
        // wait — need inoff/inlen order: pops are in_off then in_len.
        // Pushed (last first): gas,to,value,in_off,in_len,out_off,out_len.
        // So push order is out_len, out_off, in_len, in_off, value, to, gas.
        // Above: 0x20, 0x80 (out), 0x80, 0x00 (in len=0x80? off=0) — that
        // pushes in_len=0x80 then in_off=0x00: correct.
        let mut data = Vec::new();
        data.extend_from_slice(digest.as_bytes());
        let mut v = [0u8; 32];
        v[31] = sig.v;
        data.extend_from_slice(&v);
        data.extend_from_slice(sig.r.as_bytes());
        data.extend_from_slice(sig.s.as_bytes());
        let (out, _) = run_code(code, data, 200_000);
        assert!(out.success);
        assert_eq!(&out.output[12..], key.address().as_bytes());
    }

    #[test]
    fn contract_address_derivation_vector() {
        // Known mainnet-style vector: sender 0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0
        // nonce 0 -> 0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d
        let sender = Address::from_hex("0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0").unwrap();
        assert_eq!(
            contract_address(sender, 0).to_string(),
            "0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d"
        );
        assert_eq!(
            contract_address(sender, 1).to_string(),
            "0x343c43a37d37dff08ae8c4a11544c718abb4fcf8"
        );
    }

    #[test]
    fn exp_dynamic_gas() {
        // PUSH1 2 (exponent... careful: EXP pops base then exponent).
        // Stack order: push exponent first? EXP pops base, exponent.
        // We want 3**5: push 5 (exp) then 3 (base): pops base=3, exp=5.
        let code = vec![
            0x60, 0x05, 0x60, 0x03, 0x0a, // EXP
            0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3,
        ];
        let (out, _) = run_code(code, vec![], 100_000);
        assert_eq!(U256::from_be_slice(&out.output), U256::from_u64(243));
        // gas: 3 + 3 + (10 + 50*1) + 3 + 3 + 3 + 3 = 78; mem expansion 3
        assert_eq!(out.gas_left, 100_000 - 81);
    }

    #[test]
    fn call_depth_limit_enforced() {
        // A contract that calls itself forever. With the 63/64 rule gas
        // decays geometrically, so recursion ends by gas starvation after
        // a few hundred frames (each frame's inner-call failure is
        // swallowed by pushing 0). Host recursion is real, so give the
        // test thread a deep stack, as a node embedding this EVM would.
        let self_addr = addr(0xcc);
        let mut code = vec![
            0x60, 0x00, 0x60, 0x00, 0x60, 0x00, 0x60, 0x00, 0x60, 0x00, // out/in/value
            0x73,
        ];
        code.extend_from_slice(self_addr.as_bytes());
        code.extend_from_slice(&[0x5a, 0xf1, 0x00]); // GAS, CALL, STOP
        let handle = std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn(move || run_code(code, vec![], 10_000_000).0)
            .expect("spawn");
        let out = handle.join().expect("join");
        assert!(out.success);
    }

    #[test]
    fn returndatacopy_out_of_bounds_fails() {
        // No call made: return_data empty; RETURNDATACOPY(0,0,1) must fail.
        let code = vec![0x60, 0x01, 0x60, 0x00, 0x60, 0x00, 0x3e];
        let (out, _) = run_code(code, vec![], 100_000);
        assert_eq!(out.error, Some(VmError::ReturnDataOutOfBounds));
    }

    #[test]
    fn delegatecall_uses_caller_storage() {
        // Library: SSTORE(0, CALLER) — stores msg.sender.
        let library = vec![0x33, 0x60, 0x00, 0x55, 0x00];
        // Proxy delegatecalls the library.
        let proxy = vec![
            0x60, 0x00, 0x60, 0x00, 0x60, 0x00, 0x60, 0x00, // out/in
            0x73, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb,
            0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0xbb, 0x61, 0xff, 0xff, 0xf4,
            0x00, // DELEGATECALL, STOP
        ];
        let mut host = MockHost::new();
        host.install(addr(0xbb), library);
        host.install(addr(0xaa), proxy);
        host.fund(addr(1), sc_primitives::ether(1));
        let mut evm = Evm::new(&mut host, Env::default());
        let out = evm.call(CallParams::transact(
            addr(1),
            addr(0xaa),
            U256::ZERO,
            vec![],
            500_000,
        ));
        assert!(out.success);
        // Storage written in the PROXY's space, and CALLER is the original EOA.
        assert_eq!(host.storage(addr(0xaa), U256::ZERO), addr(1).to_u256());
        assert_eq!(host.storage(addr(0xbb), U256::ZERO), U256::ZERO);
    }
}
