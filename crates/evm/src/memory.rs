//! Word-granular EVM memory with quadratic-cost expansion tracking.

use sc_primitives::U256;

/// Byte-addressable memory that grows in 32-byte words.
///
/// Expansion gas is charged by the interpreter via
/// [`crate::gas::memory_expansion_cost`]; this type only tracks sizes and
/// performs zero-extended reads/writes.
#[derive(Default)]
pub struct Memory {
    data: Vec<u8>,
}

impl Memory {
    /// Creates empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current size in bytes (always a multiple of 32).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff no memory has been touched.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Current size in words.
    pub fn words(&self) -> u64 {
        (self.data.len() / 32) as u64
    }

    /// Grows to cover `offset + len` bytes, word-aligned. No-op for
    /// zero-length ranges (the EVM charges nothing for those).
    pub fn expand(&mut self, offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        let end = offset
            .checked_add(len)
            .expect("memory range checked by gas accounting");
        let target = end.div_ceil(32) * 32;
        if target > self.data.len() {
            self.data.resize(target, 0);
        }
    }

    /// Reads a 32-byte word at `offset` (memory must be expanded first).
    pub fn load_word(&self, offset: usize) -> U256 {
        let mut buf = [0u8; 32];
        buf.copy_from_slice(&self.data[offset..offset + 32]);
        U256::from_be_bytes(buf)
    }

    /// Writes a 32-byte word at `offset`.
    pub fn store_word(&mut self, offset: usize, value: U256) {
        self.data[offset..offset + 32].copy_from_slice(&value.to_be_bytes());
    }

    /// Writes a single byte.
    pub fn store_byte(&mut self, offset: usize, value: u8) {
        self.data[offset] = value;
    }

    /// Copies a slice out of memory.
    pub fn slice(&self, offset: usize, len: usize) -> &[u8] {
        if len == 0 {
            return &[];
        }
        &self.data[offset..offset + len]
    }

    /// Copies `src` into memory at `offset`, zero-filling up to `len` when
    /// `src` is shorter (the semantics of CALLDATACOPY/CODECOPY).
    pub fn copy_padded(&mut self, offset: usize, len: usize, src: &[u8]) {
        if len == 0 {
            return;
        }
        let take = src.len().min(len);
        self.data[offset..offset + take].copy_from_slice(&src[..take]);
        self.data[offset + take..offset + len].fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_word_aligned() {
        let mut m = Memory::new();
        m.expand(0, 1);
        assert_eq!(m.len(), 32);
        m.expand(31, 2);
        assert_eq!(m.len(), 64);
        m.expand(100, 0);
        assert_eq!(m.len(), 64, "zero-length ranges never expand");
    }

    #[test]
    fn word_roundtrip() {
        let mut m = Memory::new();
        m.expand(64, 32);
        let v = U256::from_u64(0xdeadbeef);
        m.store_word(64, v);
        assert_eq!(m.load_word(64), v);
        assert_eq!(m.words(), 3);
    }

    #[test]
    fn padded_copy_zero_fills() {
        let mut m = Memory::new();
        m.expand(0, 10);
        m.copy_padded(0, 10, &[1, 2, 3]);
        assert_eq!(m.slice(0, 10), &[1, 2, 3, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn store_byte() {
        let mut m = Memory::new();
        m.expand(0, 32);
        m.store_byte(5, 0xab);
        assert_eq!(m.slice(5, 1), &[0xab]);
    }
}
