//! Speculative execution view: the read/write-set tracker behind the
//! chain's optimistic parallel executor (Block-STM-style).
//!
//! [`SpeculativeHost`] wraps a *shared, immutable* base [`Host`] and
//! implements [`Host`] itself: writes land in a private overlay, reads
//! fall through to the base and are recorded (once per key, with the
//! value observed) in an interior-mutable read log. A transaction
//! executed against the wrapper therefore produces
//!
//! * a **read set** — every `(key, value)` the execution depended on,
//! * a **write set** — the overlay, the net effect on the world,
//!
//! and nothing else: the base is never mutated, so many transactions
//! can speculate concurrently over one `&H`.
//!
//! Commit-time validation replays only the read set: if every recorded
//! key still holds its recorded value in the committed state, the
//! speculative execution is byte-for-byte what a serial re-execution
//! would produce (execution is a deterministic function of its base
//! reads), and the overlay can be applied directly. Any mismatch — or a
//! read the wrapper cannot track precisely, which sets the *poisoned*
//! flag — demands deterministic re-execution in commit order.
//!
//! Reads that poison instead of recording:
//!
//! * the balance of the *volatile address* (the chain registers its
//!   coinbase here: every transaction credits it fees, so its balance
//!   is never stable within a block);
//! * contract creation over an address with pre-existing storage (the
//!   serial path journals every evicted slot; that eviction cannot be
//!   buffered precisely in a flat overlay).

use crate::host::{Host, LogEntry};
use sc_primitives::{Address, H256, U256};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One recorded base-state read: the key and the value observed.
///
/// [`ReadRecord::still_holds`] re-checks the observation against another
/// host — the committed state at validation time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadRecord {
    /// Account balance observed.
    Balance(Address, U256),
    /// Account nonce observed.
    Nonce(Address, u64),
    /// Account code observed (compared by its keccak hash).
    CodeHash(Address, H256),
    /// Storage slot value observed.
    Storage(Address, U256, U256),
    /// The account's storage was observed entirely empty (recorded by
    /// contract creation, whose semantics clear the slate).
    StorageEmpty(Address),
}

impl ReadRecord {
    /// True iff the committed state still agrees with the observation.
    pub fn still_holds<H: Host>(&self, state: &H) -> bool {
        match self {
            ReadRecord::Balance(a, v) => state.balance(*a) == *v,
            ReadRecord::Nonce(a, v) => state.nonce(*a) == *v,
            ReadRecord::CodeHash(a, h) => state.code_hash(*a) == *h,
            ReadRecord::Storage(a, k, v) => state.storage(*a, *k) == *v,
            ReadRecord::StorageEmpty(a) => state.storage_entries(*a).is_empty(),
        }
    }
}

/// Hashable key of a [`ReadRecord`], for first-read-wins deduplication.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum ReadKey {
    Balance(Address),
    Nonce(Address),
    Code(Address),
    Storage(Address, U256),
    StorageEmpty(Address),
}

/// The buffered effects of one speculative execution — everything a
/// commit must apply to make the base state agree with the overlay.
#[derive(Clone, Debug, Default)]
pub struct WriteSet {
    /// Final balance per touched account.
    pub balances: HashMap<Address, U256>,
    /// Final nonce per touched account.
    pub nonces: HashMap<Address, u64>,
    /// Final code (and its keccak hash) per touched account.
    pub codes: HashMap<Address, (Arc<Vec<u8>>, H256)>,
    /// Final value per touched storage slot (zero means cleared).
    pub storage: HashMap<(Address, U256), U256>,
    /// Addresses created by the execution. Tracking guarantees they had
    /// no pre-existing storage unless the speculation was poisoned.
    pub created: Vec<Address>,
}

/// Reversible operations over the overlay: each op remembers the
/// *previous overlay entry* so [`Host::revert`] restores the wrapper to
/// the exact pre-snapshot view.
enum SpecJournalOp {
    Balance(Address, Option<U256>),
    Nonce(Address, Option<u64>),
    Code(Address, Option<(Arc<Vec<u8>>, H256)>),
    Storage(Address, U256, Option<U256>),
    /// Contract creation: restores the previous overlay nonce and drops
    /// the address from the created set again.
    Created(Address, Option<u64>),
    Log,
    Refund(u64),
}

/// The recorded observations of one speculative run: dedup set + log.
#[derive(Default)]
struct ReadLog {
    seen: HashSet<ReadKey>,
    records: Vec<ReadRecord>,
}

impl ReadLog {
    fn record(&mut self, key: ReadKey, record: impl FnOnce() -> ReadRecord) {
        if self.seen.insert(key) {
            self.records.push(record());
        }
    }
}

/// Journaled read-tracking write-buffering [`Host`] over a shared base.
pub struct SpeculativeHost<'a, H: Host> {
    base: &'a H,
    balances: HashMap<Address, U256>,
    nonces: HashMap<Address, u64>,
    codes: HashMap<Address, (Arc<Vec<u8>>, H256)>,
    storage: HashMap<(Address, U256), U256>,
    /// Addresses created by this execution: their storage reads answer
    /// zero without consulting the base (creation cleared the slate).
    created: HashSet<Address>,
    reads: RefCell<ReadLog>,
    journal: Vec<SpecJournalOp>,
    /// Logs emitted by the speculative transaction.
    pub tx_logs: Vec<LogEntry>,
    /// Refund counter of the speculative transaction.
    pub tx_refund: u64,
    volatile_balance: Option<Address>,
    poisoned: Cell<bool>,
}

impl<'a, H: Host> SpeculativeHost<'a, H> {
    /// Wraps a shared base state.
    pub fn new(base: &'a H) -> Self {
        SpeculativeHost {
            base,
            balances: HashMap::new(),
            nonces: HashMap::new(),
            codes: HashMap::new(),
            storage: HashMap::new(),
            created: HashSet::new(),
            reads: RefCell::new(ReadLog::default()),
            journal: Vec::new(),
            tx_logs: Vec::new(),
            tx_refund: 0,
            volatile_balance: None,
            poisoned: Cell::new(false),
        }
    }

    /// Registers the address whose balance is *volatile* within a block
    /// (the coinbase: every transaction credits it fees). Reading its
    /// balance poisons the speculation instead of recording a read that
    /// could never validate.
    #[must_use]
    pub fn with_volatile_balance(mut self, a: Address) -> Self {
        self.volatile_balance = Some(a);
        self
    }

    /// Marks the speculation as non-committable: the executor must
    /// re-execute this transaction serially in commit order.
    pub fn poison(&self) {
        self.poisoned.set(true);
    }

    /// True iff a read escaped precise tracking.
    pub fn poisoned(&self) -> bool {
        self.poisoned.get()
    }

    /// The recorded read set (cloned out of the interior log).
    pub fn reads(&self) -> Vec<ReadRecord> {
        self.reads.borrow().records.clone()
    }

    /// Validates every recorded read against a committed state.
    pub fn reads_still_hold<B: Host>(&self, state: &B) -> bool {
        self.reads
            .borrow()
            .records
            .iter()
            .all(|r| r.still_holds(state))
    }

    /// Consumes the wrapper, returning `(reads, writes, poisoned)`.
    pub fn into_parts(self) -> (Vec<ReadRecord>, WriteSet, bool) {
        let writes = WriteSet {
            balances: self.balances,
            nonces: self.nonces,
            codes: self.codes,
            storage: self.storage,
            created: self.created.into_iter().collect(),
        };
        (self.reads.into_inner().records, writes, self.poisoned.get())
    }

    /// Takes the per-transaction scratch (logs, refund counter) exactly
    /// like `WorldState::clear_tx_scratch` does on the serial path.
    pub fn take_tx_scratch(&mut self) -> (Vec<LogEntry>, u64) {
        self.journal.clear();
        let refund = self.tx_refund;
        self.tx_refund = 0;
        (std::mem::take(&mut self.tx_logs), refund)
    }

    /// Journaled overlay balance write (the executor's gas-settlement
    /// hook; fee credits to the volatile address are tracked separately
    /// by the caller as a commutative delta).
    pub fn write_balance(&mut self, a: Address, v: U256) {
        let prev = self.balances.insert(a, v);
        self.journal.push(SpecJournalOp::Balance(a, prev));
    }

    fn base_balance(&self, a: Address) -> U256 {
        if self.volatile_balance == Some(a) {
            // Every transaction in the block credits this address fees;
            // its base balance can never validate. Give up on this tx.
            self.poison();
        }
        let v = self.base.balance(a);
        self.reads
            .borrow_mut()
            .record(ReadKey::Balance(a), || ReadRecord::Balance(a, v));
        v
    }

    fn base_nonce(&self, a: Address) -> u64 {
        let v = self.base.nonce(a);
        self.reads
            .borrow_mut()
            .record(ReadKey::Nonce(a), || ReadRecord::Nonce(a, v));
        v
    }

    fn record_base_code(&self, a: Address) {
        let h = self.base.code_hash(a);
        self.reads
            .borrow_mut()
            .record(ReadKey::Code(a), || ReadRecord::CodeHash(a, h));
    }

    fn base_storage(&self, a: Address, key: U256) -> U256 {
        if self.created.contains(&a) {
            return U256::ZERO;
        }
        let v = self.base.storage(a, key);
        self.reads
            .borrow_mut()
            .record(ReadKey::Storage(a, key), || ReadRecord::Storage(a, key, v));
        v
    }
}

impl<H: Host> Host for SpeculativeHost<'_, H> {
    fn balance(&self, a: Address) -> U256 {
        if let Some(v) = self.balances.get(&a) {
            return *v;
        }
        self.base_balance(a)
    }

    fn code(&self, a: Address) -> Arc<Vec<u8>> {
        if let Some((code, _)) = self.codes.get(&a) {
            return code.clone();
        }
        self.record_base_code(a);
        self.base.code(a)
    }

    fn code_hash(&self, a: Address) -> H256 {
        if let Some((_, hash)) = self.codes.get(&a) {
            return *hash;
        }
        self.record_base_code(a);
        self.base.code_hash(a)
    }

    fn storage(&self, a: Address, key: U256) -> U256 {
        if let Some(v) = self.storage.get(&(a, key)) {
            return *v;
        }
        self.base_storage(a, key)
    }

    fn set_storage(&mut self, a: Address, key: U256, value: U256) {
        // The serial journal records the previous value, i.e. performs
        // a read; mirror it so the read set captures SSTORE
        // dependencies (serial gas metering reads the slot anyway).
        let _ = self.storage(a, key);
        let prev = self.storage.insert((a, key), value);
        self.journal.push(SpecJournalOp::Storage(a, key, prev));
    }

    fn nonce(&self, a: Address) -> u64 {
        if let Some(v) = self.nonces.get(&a) {
            return *v;
        }
        self.base_nonce(a)
    }

    fn bump_nonce(&mut self, a: Address) {
        let next = self.nonce(a) + 1;
        let prev = self.nonces.insert(a, next);
        self.journal.push(SpecJournalOp::Nonce(a, prev));
    }

    fn account_exists(&self, a: Address) -> bool {
        // The serial path inspects the whole account; reading all three
        // components records each dependency.
        !self.balance(a).is_zero() || self.nonce(a) != 0 || !self.code(a).is_empty()
    }

    fn create_contract(&mut self, a: Address) -> bool {
        if self.nonce(a) != 0 || !self.code(a).is_empty() {
            return false;
        }
        // Serial creation journals every evicted slot, which requires
        // iterating the live storage. An address with pre-existing
        // storage (base or overlay) escapes precise tracking: poison.
        if !self.base.storage_entries(a).is_empty()
            || self.storage.keys().any(|(addr, _)| *addr == a)
        {
            self.poison();
        }
        self.reads
            .borrow_mut()
            .record(ReadKey::StorageEmpty(a), || ReadRecord::StorageEmpty(a));
        let prev = self.nonces.insert(a, 1);
        self.created.insert(a);
        self.journal.push(SpecJournalOp::Created(a, prev));
        true
    }

    fn set_code(&mut self, a: Address, code: Vec<u8>) {
        // Serial set_code journals the previous code: a read.
        if !self.codes.contains_key(&a) {
            self.record_base_code(a);
        }
        let hash = sc_crypto::keccak256(&code);
        let prev = self.codes.insert(a, (Arc::new(code), hash));
        self.journal.push(SpecJournalOp::Code(a, prev));
    }

    fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        let from_bal = self.balance(from);
        if from_bal < value {
            return false;
        }
        if from == to {
            // Self-transfer: only the balance check matters (mirrors
            // the journaled world state exactly).
            return true;
        }
        let to_bal = self.balance(to);
        self.write_balance(from, from_bal.wrapping_sub(value));
        self.write_balance(to, to_bal.wrapping_add(value));
        true
    }

    fn snapshot(&mut self) -> usize {
        self.journal.len()
    }

    fn revert(&mut self, snapshot: usize) {
        while self.journal.len() > snapshot {
            match self.journal.pop().expect("journal entry") {
                SpecJournalOp::Balance(a, prev) => {
                    restore(&mut self.balances, a, prev);
                }
                SpecJournalOp::Nonce(a, prev) => {
                    restore(&mut self.nonces, a, prev);
                }
                SpecJournalOp::Code(a, prev) => {
                    restore(&mut self.codes, a, prev);
                }
                SpecJournalOp::Storage(a, k, prev) => {
                    restore(&mut self.storage, (a, k), prev);
                }
                SpecJournalOp::Created(a, prev) => {
                    self.created.remove(&a);
                    restore(&mut self.nonces, a, prev);
                }
                SpecJournalOp::Log => {
                    self.tx_logs.pop();
                }
                SpecJournalOp::Refund(prev) => self.tx_refund = prev,
            }
        }
    }

    fn log(&mut self, entry: LogEntry) {
        self.journal.push(SpecJournalOp::Log);
        self.tx_logs.push(entry);
    }

    fn block_hash(&self, number: u64) -> H256 {
        // The ancestor-hash window is immutable for the whole block
        // (the sealing block's own hash is unknown during execution on
        // the serial path too): safe to read untracked.
        self.base.block_hash(number)
    }

    fn add_refund(&mut self, amount: u64) {
        self.journal.push(SpecJournalOp::Refund(self.tx_refund));
        self.tx_refund += amount;
    }

    fn storage_entries(&self, a: Address) -> Vec<(U256, U256)> {
        // Audit hook, not consulted during transaction execution: merge
        // untracked for completeness.
        let mut merged: HashMap<U256, U256> = if self.created.contains(&a) {
            HashMap::new()
        } else {
            self.base.storage_entries(a).into_iter().collect()
        };
        for ((addr, k), v) in &self.storage {
            if *addr == a {
                merged.insert(*k, *v);
            }
        }
        merged.into_iter().filter(|(_, v)| !v.is_zero()).collect()
    }
}

fn restore<K: std::hash::Hash + Eq, V>(map: &mut HashMap<K, V>, key: K, prev: Option<V>) {
    match prev {
        Some(v) => {
            map.insert(key, v);
        }
        None => {
            map.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::MockHost;

    fn addr(b: u8) -> Address {
        Address([b; 20])
    }

    #[test]
    fn reads_fall_through_and_are_recorded_once() {
        let mut base = MockHost::new();
        base.fund(addr(1), U256::from_u64(100));
        base.set_storage(addr(2), U256::ONE, U256::from_u64(7));
        let spec = SpeculativeHost::new(&base);

        assert_eq!(spec.balance(addr(1)), U256::from_u64(100));
        assert_eq!(spec.balance(addr(1)), U256::from_u64(100));
        assert_eq!(spec.storage(addr(2), U256::ONE), U256::from_u64(7));
        assert_eq!(
            spec.reads(),
            vec![
                ReadRecord::Balance(addr(1), U256::from_u64(100)),
                ReadRecord::Storage(addr(2), U256::ONE, U256::from_u64(7)),
            ]
        );
    }

    #[test]
    fn writes_stay_in_the_overlay() {
        let mut base = MockHost::new();
        base.fund(addr(1), U256::from_u64(100));
        let mut spec = SpeculativeHost::new(&base);
        assert!(spec.transfer(addr(1), addr(2), U256::from_u64(30)));
        spec.set_storage(addr(3), U256::ONE, U256::from_u64(9));
        assert_eq!(spec.balance(addr(1)), U256::from_u64(70));
        assert_eq!(spec.balance(addr(2)), U256::from_u64(30));
        // The base never moved.
        assert_eq!(base.balance(addr(1)), U256::from_u64(100));
        assert_eq!(base.balance(addr(2)), U256::ZERO);
        assert_eq!(base.storage(addr(3), U256::ONE), U256::ZERO);
    }

    #[test]
    fn snapshot_revert_restores_the_overlay_view() {
        let mut base = MockHost::new();
        base.fund(addr(1), U256::from_u64(100));
        let mut spec = SpeculativeHost::new(&base);
        assert!(spec.transfer(addr(1), addr(2), U256::from_u64(10)));
        let snap = spec.snapshot();
        assert!(spec.transfer(addr(1), addr(2), U256::from_u64(20)));
        spec.set_storage(addr(2), U256::ONE, U256::from_u64(5));
        spec.bump_nonce(addr(1));
        spec.log(LogEntry {
            address: addr(2),
            topics: vec![],
            data: vec![],
        });
        spec.add_refund(15_000);
        spec.revert(snap);
        assert_eq!(spec.balance(addr(1)), U256::from_u64(90));
        assert_eq!(spec.balance(addr(2)), U256::from_u64(10));
        assert_eq!(spec.storage(addr(2), U256::ONE), U256::ZERO);
        assert_eq!(spec.nonce(addr(1)), 0);
        assert!(spec.tx_logs.is_empty());
        assert_eq!(spec.tx_refund, 0);
    }

    #[test]
    fn validation_detects_a_changed_base() {
        let mut base = MockHost::new();
        base.fund(addr(1), U256::from_u64(100));
        let spec = SpeculativeHost::new(&base);
        let _ = spec.balance(addr(1));
        assert!(spec.reads_still_hold(&base));
        let (reads, _, _) = spec.into_parts();
        base.fund(addr(1), U256::from_u64(1));
        assert!(!reads.iter().all(|r| r.still_holds(&base)));
    }

    #[test]
    fn volatile_balance_read_poisons() {
        let mut base = MockHost::new();
        base.fund(addr(9), U256::from_u64(1));
        let spec = SpeculativeHost::new(&base).with_volatile_balance(addr(9));
        assert!(!spec.poisoned());
        let _ = spec.balance(addr(1));
        assert!(!spec.poisoned(), "other balances track normally");
        let _ = spec.balance(addr(9));
        assert!(spec.poisoned());
    }

    #[test]
    fn overlaid_volatile_balance_does_not_poison() {
        let base = MockHost::new();
        let mut spec = SpeculativeHost::new(&base).with_volatile_balance(addr(9));
        spec.write_balance(addr(9), U256::from_u64(5));
        assert_eq!(spec.balance(addr(9)), U256::from_u64(5));
        assert!(!spec.poisoned(), "overlay hit needs no base read");
    }

    #[test]
    fn created_contract_reads_zero_storage_and_reverts_clean() {
        let base = MockHost::new();
        let mut spec = SpeculativeHost::new(&base);
        let snap = spec.snapshot();
        assert!(spec.create_contract(addr(4)));
        assert!(!spec.poisoned(), "fresh address: precise tracking");
        assert_eq!(spec.nonce(addr(4)), 1);
        spec.set_storage(addr(4), U256::ONE, U256::from_u64(3));
        assert_eq!(spec.storage(addr(4), U256::ONE), U256::from_u64(3));
        spec.revert(snap);
        assert_eq!(spec.nonce(addr(4)), 0);
        assert_eq!(spec.storage(addr(4), U256::ONE), U256::ZERO);
        // Second creation after revert works again.
        assert!(spec.create_contract(addr(4)));
    }

    #[test]
    fn creation_over_overlay_storage_poisons() {
        let base = MockHost::new();
        let mut spec = SpeculativeHost::new(&base);
        spec.set_storage(addr(5), U256::ONE, U256::from_u64(1));
        assert!(spec.create_contract(addr(5)));
        assert!(spec.poisoned());
    }

    #[test]
    fn storage_empty_read_is_recorded_on_creation() {
        let base = MockHost::new();
        let mut spec = SpeculativeHost::new(&base);
        assert!(spec.create_contract(addr(4)));
        assert!(spec.reads().contains(&ReadRecord::StorageEmpty(addr(4))));
        assert!(spec.reads_still_hold(&base));
    }

    #[test]
    fn write_set_carries_the_net_effect() {
        let mut base = MockHost::new();
        base.fund(addr(1), U256::from_u64(100));
        let mut spec = SpeculativeHost::new(&base);
        assert!(spec.transfer(addr(1), addr(2), U256::from_u64(30)));
        spec.bump_nonce(addr(1));
        spec.set_storage(addr(3), U256::ONE, U256::from_u64(9));
        spec.set_code(addr(3), vec![0x00]);
        let (_, writes, poisoned) = spec.into_parts();
        assert!(!poisoned);
        assert_eq!(writes.balances[&addr(1)], U256::from_u64(70));
        assert_eq!(writes.balances[&addr(2)], U256::from_u64(30));
        assert_eq!(writes.nonces[&addr(1)], 1);
        assert_eq!(writes.storage[&(addr(3), U256::ONE)], U256::from_u64(9));
        assert_eq!(*writes.codes[&addr(3)].0, vec![0x00]);
    }
}
