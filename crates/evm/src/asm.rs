//! A programmatic EVM assembler with labels, plus a disassembler.
//!
//! The MiniSol code generator emits through [`Asm`]; the disassembler
//! backs debugging and the privacy analysis in the benchmarks (how many
//! instructions of the off-chain contract become publicly visible after a
//! dispute).

use crate::opcode::Op;
use sc_primitives::{hex, Address, U256};
use std::collections::HashMap;
use std::fmt;

/// Errors raised during assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// Code grew beyond the PUSH2 label-addressing range.
    CodeTooLarge(usize),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label {l:?}"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label {l:?}"),
            AsmError::CodeTooLarge(n) => write!(f, "code too large for PUSH2 labels: {n} bytes"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Item {
    Op(Op),
    /// PUSHn with explicit immediate.
    Push(Vec<u8>),
    /// PUSH2 of a label's resolved offset.
    PushLabel(String),
    /// Marks a JUMPDEST and binds a label to it.
    Label(String),
    /// Raw bytes (embedded data, e.g. a sub-contract's initcode).
    Raw(Vec<u8>),
}

/// An assembly program under construction.
#[derive(Default, Debug, Clone)]
pub struct Asm {
    items: Vec<Item>,
}

/// Process-global counter so [`Asm::fresh_label`] names stay unique even
/// when separately-built programs are stitched together with
/// [`Asm::append`].
static NEXT_LABEL: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

impl Asm {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a bare opcode.
    pub fn op(&mut self, op: Op) -> &mut Self {
        self.items.push(Item::Op(op));
        self
    }

    /// Appends several opcodes.
    pub fn ops(&mut self, ops: &[Op]) -> &mut Self {
        for &o in ops {
            self.op(o);
        }
        self
    }

    /// Pushes a constant with the minimal PUSH width (PUSH1 0 for zero).
    pub fn push(&mut self, v: U256) -> &mut Self {
        let bytes = v.to_be_bytes_trimmed();
        let bytes = if bytes.is_empty() { vec![0] } else { bytes };
        self.items.push(Item::Push(bytes));
        self
    }

    /// Pushes a `u64` constant.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.push(U256::from_u64(v))
    }

    /// Pushes a 20-byte address constant (always PUSH20).
    pub fn push_address(&mut self, a: Address) -> &mut Self {
        self.items.push(Item::Push(a.as_bytes().to_vec()));
        self
    }

    /// Pushes exactly `width` bytes (big-endian, left-padded).
    pub fn push_fixed(&mut self, v: U256, width: usize) -> &mut Self {
        assert!((1..=32).contains(&width));
        let be = v.to_be_bytes();
        self.items.push(Item::Push(be[32 - width..].to_vec()));
        self
    }

    /// Generates a fresh label name, unique process-wide.
    pub fn fresh_label(&mut self, hint: &str) -> String {
        let n = NEXT_LABEL.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        format!("{hint}_{n}")
    }

    /// Binds `label` here and emits the `JUMPDEST`.
    pub fn label(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::Label(label.to_string()));
        self
    }

    /// Pushes the address of `label` (resolved at assembly time).
    pub fn push_label(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::PushLabel(label.to_string()));
        self
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: &str) -> &mut Self {
        self.push_label(label).op(Op::Jump)
    }

    /// Conditional jump (consumes the condition already on the stack).
    pub fn jumpi(&mut self, label: &str) -> &mut Self {
        self.push_label(label).op(Op::JumpI)
    }

    /// Embeds raw bytes (not disassembled as code).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.items.push(Item::Raw(bytes.to_vec()));
        self
    }

    /// Appends another program's items.
    pub fn append(&mut self, other: Asm) -> &mut Self {
        self.items.extend(other.items);
        self
    }

    /// Assembles to bytecode, resolving labels with fixed PUSH2 operands.
    pub fn assemble(&self) -> Result<Vec<u8>, AsmError> {
        // Pass 1: compute item offsets.
        let mut offsets = HashMap::new();
        let mut pc = 0usize;
        for item in &self.items {
            match item {
                Item::Op(_) => pc += 1,
                Item::Push(bytes) => pc += 1 + bytes.len(),
                Item::PushLabel(_) => pc += 3, // PUSH2 hi lo
                Item::Label(name) => {
                    if offsets.insert(name.clone(), pc).is_some() {
                        return Err(AsmError::DuplicateLabel(name.clone()));
                    }
                    pc += 1; // JUMPDEST
                }
                Item::Raw(bytes) => pc += bytes.len(),
            }
        }
        if pc > u16::MAX as usize {
            return Err(AsmError::CodeTooLarge(pc));
        }
        // Pass 2: emit.
        let mut out = Vec::with_capacity(pc);
        for item in &self.items {
            match item {
                Item::Op(op) => out.push(*op as u8),
                Item::Push(bytes) => {
                    out.push(Op::push(bytes.len()) as u8);
                    out.extend_from_slice(bytes);
                }
                Item::PushLabel(name) => {
                    let target = *offsets
                        .get(name)
                        .ok_or_else(|| AsmError::UndefinedLabel(name.clone()))?;
                    out.push(Op::Push2 as u8);
                    out.extend_from_slice(&(target as u16).to_be_bytes());
                }
                Item::Label(_) => out.push(Op::JumpDest as u8),
                Item::Raw(bytes) => out.extend_from_slice(bytes),
            }
        }
        Ok(out)
    }
}

/// Wraps runtime code in minimal initcode that deploys it verbatim.
///
/// Layout: `PUSH2 len, PUSH2 off, PUSH1 0, CODECOPY, PUSH2 len, PUSH1 0,
/// RETURN, <runtime>`. Constructor logic, when needed, is prepended by the
/// MiniSol compiler instead of using this helper.
pub fn wrap_initcode(runtime: &[u8]) -> Vec<u8> {
    let body = "runtime_body";
    let mut a = Asm::new();
    a.push_u64(runtime.len() as u64);
    a.push_label(body);
    a.push_u64(0);
    a.op(Op::CodeCopy);
    a.push_u64(runtime.len() as u64);
    a.push_u64(0);
    a.op(Op::Return);
    // Bind the label at the end so PUSH2 resolves to the byte where the
    // runtime will start, then swap the marker JUMPDEST for the runtime.
    a.label(body);
    let mut code = a.assemble().expect("static initcode assembles");
    code.pop();
    code.extend_from_slice(runtime);
    code
}

/// One disassembled instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instruction {
    /// Byte offset within the code.
    pub offset: usize,
    /// The opcode, or `None` for an unassigned byte.
    pub op: Option<Op>,
    /// PUSH immediate bytes, if any.
    pub immediate: Vec<u8>,
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Some(op) if !self.immediate.is_empty() => {
                write!(
                    f,
                    "{:04x}: {} 0x{}",
                    self.offset,
                    op.mnemonic(),
                    hex::encode(&self.immediate)
                )
            }
            Some(op) => write!(f, "{:04x}: {}", self.offset, op.mnemonic()),
            None => write!(f, "{:04x}: <invalid>", self.offset),
        }
    }
}

/// Disassembles bytecode into instructions (PUSH immediates attached).
pub fn disassemble(code: &[u8]) -> Vec<Instruction> {
    let mut out = Vec::new();
    let mut pc = 0usize;
    while pc < code.len() {
        let byte = code[pc];
        let op = Op::from_byte(byte);
        let n = op.map_or(0, |o| o.push_bytes());
        let end = (pc + 1 + n).min(code.len());
        out.push(Instruction {
            offset: pc,
            op,
            immediate: code[pc + 1..end].to_vec(),
        });
        pc = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{CallParams, Evm};
    use crate::host::{Env, Host, MockHost};

    #[test]
    fn push_widths_are_minimal() {
        let mut a = Asm::new();
        a.push_u64(0).push_u64(1).push_u64(256).push(U256::MAX);
        let code = a.assemble().unwrap();
        assert_eq!(code[0], Op::Push1 as u8);
        assert_eq!(code[2], Op::Push1 as u8);
        assert_eq!(code[4], Op::Push2 as u8);
        assert_eq!(code[7], Op::Push32 as u8);
        assert_eq!(code.len(), 2 + 2 + 3 + 33);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut a = Asm::new();
        a.jump("end");
        a.label("loop");
        a.jump("loop"); // backward ref (never executed)
        a.label("end");
        a.op(Op::Stop);
        let code = a.assemble().unwrap();
        // Layout: PUSH2 xx xx JUMP | JUMPDEST PUSH2 xx xx JUMP | JUMPDEST STOP
        assert_eq!(code[0], Op::Push2 as u8);
        let end = u16::from_be_bytes([code[1], code[2]]) as usize;
        assert_eq!(code[end], Op::JumpDest as u8);
        assert_eq!(code[end + 1], Op::Stop as u8);
        let loop_off = u16::from_be_bytes([code[6], code[7]]) as usize;
        assert_eq!(code[loop_off], Op::JumpDest as u8);
        assert_eq!(loop_off, 4);
    }

    #[test]
    fn undefined_and_duplicate_labels_error() {
        let mut a = Asm::new();
        a.jump("nowhere");
        assert_eq!(
            a.assemble(),
            Err(AsmError::UndefinedLabel("nowhere".into()))
        );
        let mut b = Asm::new();
        b.label("x").label("x");
        assert_eq!(b.assemble(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn fresh_labels_are_unique() {
        let mut a = Asm::new();
        let l1 = a.fresh_label("if");
        let l2 = a.fresh_label("if");
        assert_ne!(l1, l2);
    }

    #[test]
    fn assembled_program_runs() {
        // if (5 < 7) return 1 else return 0
        let mut a = Asm::new();
        a.push_u64(7).push_u64(5); // LT pops a=5, b=7 computing 5 < 7
        a.op(Op::Lt);
        a.jumpi("true");
        a.push_u64(0);
        a.jump("ret");
        a.label("true");
        a.push_u64(1);
        a.label("ret");
        a.push_u64(0).op(Op::MStore);
        a.push_u64(32).push_u64(0).op(Op::Return);
        let code = a.assemble().unwrap();

        let mut host = MockHost::new();
        host.install(Address([0xcc; 20]), code);
        host.fund(Address([1; 20]), sc_primitives::ether(1));
        let mut evm = Evm::new(&mut host, Env::default());
        let out = evm.call(CallParams::transact(
            Address([1; 20]),
            Address([0xcc; 20]),
            U256::ZERO,
            vec![],
            100_000,
        ));
        assert!(out.success, "{:?}", out.error);
        assert_eq!(U256::from_be_slice(&out.output), U256::ONE);
    }

    #[test]
    fn wrap_initcode_deploys_exact_runtime() {
        let runtime = vec![0x60, 0x01, 0x60, 0x02, 0x01, 0x00]; // arbitrary
        let init = wrap_initcode(&runtime);
        let mut host = MockHost::new();
        host.fund(Address([1; 20]), sc_primitives::ether(1));
        let mut evm = Evm::new(&mut host, Env::default());
        let out = evm.create(Address([1; 20]), U256::ZERO, init, 200_000);
        assert!(out.success, "{:?}", out.error);
        assert_eq!(*host.code(out.address.unwrap()), runtime);
    }

    #[test]
    fn wrap_initcode_empty_runtime() {
        let init = wrap_initcode(&[]);
        let mut host = MockHost::new();
        host.fund(Address([1; 20]), sc_primitives::ether(1));
        let mut evm = Evm::new(&mut host, Env::default());
        let out = evm.create(Address([1; 20]), U256::ZERO, init, 200_000);
        assert!(out.success);
        assert!(host.code(out.address.unwrap()).is_empty());
    }

    #[test]
    fn disassembler_roundtrip() {
        let mut a = Asm::new();
        a.push_u64(0xdead).op(Op::Pop).label("l").jump("l");
        let code = a.assemble().unwrap();
        let instrs = disassemble(&code);
        assert_eq!(instrs[0].op, Some(Op::Push2));
        assert_eq!(instrs[0].immediate, vec![0xde, 0xad]);
        assert_eq!(instrs[1].op, Some(Op::Pop));
        assert_eq!(instrs[2].op, Some(Op::JumpDest));
        assert_eq!(instrs[3].op, Some(Op::Push2));
        assert_eq!(instrs[4].op, Some(Op::Jump));
        // Display formatting sanity.
        assert!(instrs[0].to_string().contains("PUSH2 0xdead"));
    }

    #[test]
    fn disassembler_handles_truncated_push_and_invalid() {
        let instrs = disassemble(&[0x7f, 0x01, 0x02]); // PUSH32 with 2 bytes
        assert_eq!(instrs.len(), 1);
        assert_eq!(instrs[0].immediate, vec![0x01, 0x02]);
        let instrs = disassemble(&[0x0c]);
        assert_eq!(instrs[0].op, None);
    }
}
