//! The gas schedule, calibrated to the Ethereum Yellow Paper
//! (Byzantium-era constants — the fork the paper's evaluation ran under on
//! Kovan). Table II of the paper is reproduced against these numbers.

use sc_primitives::U256;

/// Fixed gas costs (`G*` constants of Yellow Paper Appendix G).
pub mod g {
    /// `JUMPDEST`.
    pub const JUMPDEST: u64 = 1;
    /// The "base" tier (ADDRESS, CALLER, POP, …).
    pub const BASE: u64 = 2;
    /// The "verylow" tier (ADD, PUSH, MLOAD, …).
    pub const VERYLOW: u64 = 3;
    /// The "low" tier (MUL, DIV, …).
    pub const LOW: u64 = 5;
    /// The "mid" tier (ADDMOD, JUMP, …).
    pub const MID: u64 = 8;
    /// The "high" tier (JUMPI).
    pub const HIGH: u64 = 10;
    /// `EXP` static part.
    pub const EXP: u64 = 10;
    /// `EXP` per byte of exponent (EIP-160).
    pub const EXPBYTE: u64 = 50;
    /// `KECCAK256` static part.
    pub const KECCAK256: u64 = 30;
    /// `KECCAK256` per word hashed.
    pub const KECCAK256WORD: u64 = 6;
    /// `SLOAD` (EIP-150 repricing).
    pub const SLOAD: u64 = 200;
    /// `SSTORE` zero → nonzero.
    pub const SSET: u64 = 20_000;
    /// `SSTORE` any other change.
    pub const SRESET: u64 = 5_000;
    /// Refund for clearing a storage slot (nonzero → zero).
    pub const SCLEAR_REFUND: u64 = 15_000;
    /// `BALANCE` (EIP-150).
    pub const BALANCE: u64 = 400;
    /// `EXTCODESIZE` / `EXTCODECOPY` base (EIP-150).
    pub const EXTCODE: u64 = 700;
    /// `BLOCKHASH`.
    pub const BLOCKHASH: u64 = 20;
    /// Per-word cost of copy operations.
    pub const COPYWORD: u64 = 3;
    /// Memory expansion, linear coefficient per word.
    pub const MEMORY: u64 = 3;
    /// `LOGn` static part.
    pub const LOG: u64 = 375;
    /// Per topic.
    pub const LOGTOPIC: u64 = 375;
    /// Per byte of log data.
    pub const LOGDATA: u64 = 8;
    /// `CREATE` static part.
    pub const CREATE: u64 = 32_000;
    /// Code deposit, per byte of runtime code returned by the initcode.
    pub const CODEDEPOSIT: u64 = 200;
    /// `CALL`-family base (EIP-150).
    pub const CALL: u64 = 700;
    /// Extra for value-transferring calls.
    pub const CALLVALUE: u64 = 9_000;
    /// Stipend granted to the callee of a value-transferring call.
    pub const CALLSTIPEND: u64 = 2_300;
    /// Extra when a value transfer creates a brand-new account.
    pub const NEWACCOUNT: u64 = 25_000;
    /// Base cost of any transaction.
    pub const TRANSACTION: u64 = 21_000;
    /// Extra base cost of a contract-creation transaction.
    pub const TXCREATE: u64 = 32_000;
    /// Per zero byte of transaction data.
    pub const TXDATAZERO: u64 = 4;
    /// Per nonzero byte of transaction data.
    pub const TXDATANONZERO: u64 = 68;
    /// Maximum call/create depth.
    pub const MAX_DEPTH: usize = 1024;
    /// Maximum stack height.
    pub const STACK_LIMIT: usize = 1024;
    /// `ecrecover` precompile.
    pub const ECRECOVER: u64 = 3_000;
    /// `sha256` precompile base.
    pub const SHA256_BASE: u64 = 60;
    /// `sha256` precompile per word.
    pub const SHA256_WORD: u64 = 12;
    /// `identity` precompile base.
    pub const IDENTITY_BASE: u64 = 15;
    /// `identity` precompile per word.
    pub const IDENTITY_WORD: u64 = 3;
    /// `commit_verify` precompile (0x09): two scalar muls + one add.
    pub const COMMIT_VERIFY: u64 = 6_000;
    /// `commit_add_check` precompile (0x0a): point adds only.
    pub const COMMIT_ADD: u64 = 500;
    /// `nullifier` precompile (0x0b) base (keccak-shaped).
    pub const NULLIFIER_BASE: u64 = 60;
    /// `nullifier` precompile per word of input.
    pub const NULLIFIER_WORD: u64 = 12;
    /// `range_verify` precompile (0x0c) base.
    pub const RANGE_VERIFY_BASE: u64 = 10_000;
    /// `range_verify` per proved bit (≈4 scalar muls each).
    pub const RANGE_VERIFY_BIT: u64 = 4_000;
}

/// Number of 32-byte words needed to hold `bytes` bytes.
#[inline]
pub fn words(bytes: u64) -> u64 {
    bytes.div_ceil(32)
}

/// Total memory cost for a memory of `w` words:
/// `Cmem(w) = 3·w + w²/512` (Yellow Paper eq. 326).
#[inline]
pub fn memory_cost(w: u64) -> u64 {
    g::MEMORY
        .saturating_mul(w)
        .saturating_add(w.saturating_mul(w) / 512)
}

/// Incremental cost of expanding memory from `cur_words` to `new_words`.
#[inline]
pub fn memory_expansion_cost(cur_words: u64, new_words: u64) -> u64 {
    if new_words <= cur_words {
        0
    } else {
        memory_cost(new_words) - memory_cost(cur_words)
    }
}

/// Intrinsic cost of a transaction: base + calldata + creation surcharge.
pub fn tx_intrinsic_gas(data: &[u8], is_create: bool) -> u64 {
    let mut gas = g::TRANSACTION;
    if is_create {
        gas += g::TXCREATE;
    }
    for &b in data {
        gas += if b == 0 {
            g::TXDATAZERO
        } else {
            g::TXDATANONZERO
        };
    }
    gas
}

/// `EXP` dynamic cost: 10 + 50 per significant byte of the exponent.
pub fn exp_cost(exponent: U256) -> u64 {
    let bits = exponent.bits() as u64;
    g::EXP + g::EXPBYTE * bits.div_ceil(8)
}

/// EIP-150 rule: a caller may pass at most 63/64 of remaining gas.
#[inline]
pub fn max_call_gas(remaining: u64) -> u64 {
    remaining - remaining / 64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_rounding() {
        assert_eq!(words(0), 0);
        assert_eq!(words(1), 1);
        assert_eq!(words(32), 1);
        assert_eq!(words(33), 2);
    }

    #[test]
    fn memory_cost_is_quadratic() {
        assert_eq!(memory_cost(0), 0);
        assert_eq!(memory_cost(1), 3);
        // 724 words: 3*724 + 724²/512 = 2172 + 1023 = 3195
        assert_eq!(memory_cost(724), 3195);
        assert_eq!(memory_expansion_cost(10, 10), 0);
        assert_eq!(memory_expansion_cost(10, 5), 0);
        assert_eq!(memory_expansion_cost(0, 724), memory_cost(724));
    }

    #[test]
    fn intrinsic_gas_counts_byte_classes() {
        assert_eq!(tx_intrinsic_gas(&[], false), 21_000);
        assert_eq!(tx_intrinsic_gas(&[], true), 53_000);
        assert_eq!(tx_intrinsic_gas(&[0, 0, 1], false), 21_000 + 4 + 4 + 68);
    }

    #[test]
    fn exp_cost_scales_with_exponent_width() {
        assert_eq!(exp_cost(U256::ZERO), 10);
        assert_eq!(exp_cost(U256::ONE), 60);
        assert_eq!(exp_cost(U256::from_u64(256)), 10 + 100); // 2 bytes
        assert_eq!(exp_cost(U256::MAX), 10 + 50 * 32);
    }

    #[test]
    fn all_but_one_64th() {
        assert_eq!(max_call_gas(64), 63);
        assert_eq!(max_call_gas(6400), 6300);
        assert_eq!(max_call_gas(0), 0);
    }
}
