//! EVM opcode definitions and classification.

/// All implemented EVM opcodes (Byzantium-era instruction set, the fork
/// contemporary with the paper's Solidity ^0.4.24 target, plus the
/// Constantinople shift opcodes which MiniSol's codegen uses).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // names mirror the Yellow Paper mnemonics
pub enum Op {
    Stop = 0x00,
    Add = 0x01,
    Mul = 0x02,
    Sub = 0x03,
    Div = 0x04,
    SDiv = 0x05,
    Mod = 0x06,
    SMod = 0x07,
    AddMod = 0x08,
    MulMod = 0x09,
    Exp = 0x0a,
    SignExtend = 0x0b,

    Lt = 0x10,
    Gt = 0x11,
    SLt = 0x12,
    SGt = 0x13,
    Eq = 0x14,
    IsZero = 0x15,
    And = 0x16,
    Or = 0x17,
    Xor = 0x18,
    Not = 0x19,
    Byte = 0x1a,
    Shl = 0x1b,
    Shr = 0x1c,
    Sar = 0x1d,

    Keccak256 = 0x20,

    Address = 0x30,
    Balance = 0x31,
    Origin = 0x32,
    Caller = 0x33,
    CallValue = 0x34,
    CallDataLoad = 0x35,
    CallDataSize = 0x36,
    CallDataCopy = 0x37,
    CodeSize = 0x38,
    CodeCopy = 0x39,
    GasPrice = 0x3a,
    ExtCodeSize = 0x3b,
    ExtCodeCopy = 0x3c,
    ReturnDataSize = 0x3d,
    ReturnDataCopy = 0x3e,

    BlockHash = 0x40,
    Coinbase = 0x41,
    Timestamp = 0x42,
    Number = 0x43,
    Difficulty = 0x44,
    GasLimit = 0x45,

    Pop = 0x50,
    MLoad = 0x51,
    MStore = 0x52,
    MStore8 = 0x53,
    SLoad = 0x54,
    SStore = 0x55,
    Jump = 0x56,
    JumpI = 0x57,
    Pc = 0x58,
    MSize = 0x59,
    Gas = 0x5a,
    JumpDest = 0x5b,

    Push1 = 0x60,
    Push2 = 0x61,
    Push3 = 0x62,
    Push4 = 0x63,
    Push5 = 0x64,
    Push6 = 0x65,
    Push7 = 0x66,
    Push8 = 0x67,
    Push9 = 0x68,
    Push10 = 0x69,
    Push11 = 0x6a,
    Push12 = 0x6b,
    Push13 = 0x6c,
    Push14 = 0x6d,
    Push15 = 0x6e,
    Push16 = 0x6f,
    Push17 = 0x70,
    Push18 = 0x71,
    Push19 = 0x72,
    Push20 = 0x73,
    Push21 = 0x74,
    Push22 = 0x75,
    Push23 = 0x76,
    Push24 = 0x77,
    Push25 = 0x78,
    Push26 = 0x79,
    Push27 = 0x7a,
    Push28 = 0x7b,
    Push29 = 0x7c,
    Push30 = 0x7d,
    Push31 = 0x7e,
    Push32 = 0x7f,

    Dup1 = 0x80,
    Dup2 = 0x81,
    Dup3 = 0x82,
    Dup4 = 0x83,
    Dup5 = 0x84,
    Dup6 = 0x85,
    Dup7 = 0x86,
    Dup8 = 0x87,
    Dup9 = 0x88,
    Dup10 = 0x89,
    Dup11 = 0x8a,
    Dup12 = 0x8b,
    Dup13 = 0x8c,
    Dup14 = 0x8d,
    Dup15 = 0x8e,
    Dup16 = 0x8f,

    Swap1 = 0x90,
    Swap2 = 0x91,
    Swap3 = 0x92,
    Swap4 = 0x93,
    Swap5 = 0x94,
    Swap6 = 0x95,
    Swap7 = 0x96,
    Swap8 = 0x97,
    Swap9 = 0x98,
    Swap10 = 0x99,
    Swap11 = 0x9a,
    Swap12 = 0x9b,
    Swap13 = 0x9c,
    Swap14 = 0x9d,
    Swap15 = 0x9e,
    Swap16 = 0x9f,

    Log0 = 0xa0,
    Log1 = 0xa1,
    Log2 = 0xa2,
    Log3 = 0xa3,
    Log4 = 0xa4,

    Create = 0xf0,
    Call = 0xf1,
    CallCode = 0xf2,
    Return = 0xf3,
    DelegateCall = 0xf4,
    StaticCall = 0xfa,
    Revert = 0xfd,
    Invalid = 0xfe,
    SelfDestruct = 0xff,
}

impl Op {
    /// Decodes a byte; `None` for unassigned opcodes.
    pub fn from_byte(b: u8) -> Option<Op> {
        use Op::*;
        Some(match b {
            0x00 => Stop,
            0x01 => Add,
            0x02 => Mul,
            0x03 => Sub,
            0x04 => Div,
            0x05 => SDiv,
            0x06 => Mod,
            0x07 => SMod,
            0x08 => AddMod,
            0x09 => MulMod,
            0x0a => Exp,
            0x0b => SignExtend,
            0x10 => Lt,
            0x11 => Gt,
            0x12 => SLt,
            0x13 => SGt,
            0x14 => Eq,
            0x15 => IsZero,
            0x16 => And,
            0x17 => Or,
            0x18 => Xor,
            0x19 => Not,
            0x1a => Byte,
            0x1b => Shl,
            0x1c => Shr,
            0x1d => Sar,
            0x20 => Keccak256,
            0x30 => Address,
            0x31 => Balance,
            0x32 => Origin,
            0x33 => Caller,
            0x34 => CallValue,
            0x35 => CallDataLoad,
            0x36 => CallDataSize,
            0x37 => CallDataCopy,
            0x38 => CodeSize,
            0x39 => CodeCopy,
            0x3a => GasPrice,
            0x3b => ExtCodeSize,
            0x3c => ExtCodeCopy,
            0x3d => ReturnDataSize,
            0x3e => ReturnDataCopy,
            0x40 => BlockHash,
            0x41 => Coinbase,
            0x42 => Timestamp,
            0x43 => Number,
            0x44 => Difficulty,
            0x45 => GasLimit,
            0x50 => Pop,
            0x51 => MLoad,
            0x52 => MStore,
            0x53 => MStore8,
            0x54 => SLoad,
            0x55 => SStore,
            0x56 => Jump,
            0x57 => JumpI,
            0x58 => Pc,
            0x59 => MSize,
            0x5a => Gas,
            0x5b => JumpDest,
            0x60..=0x7f => return Some(PUSH_TABLE[(b - 0x60) as usize]),
            0x80..=0x8f => return Some(DUP_TABLE[(b - 0x80) as usize]),
            0x90..=0x9f => return Some(SWAP_TABLE[(b - 0x90) as usize]),
            0xa0 => Log0,
            0xa1 => Log1,
            0xa2 => Log2,
            0xa3 => Log3,
            0xa4 => Log4,
            0xf0 => Create,
            0xf1 => Call,
            0xf2 => CallCode,
            0xf3 => Return,
            0xf4 => DelegateCall,
            0xfa => StaticCall,
            0xfd => Revert,
            0xfe => Invalid,
            0xff => SelfDestruct,
            _ => return None,
        })
    }

    /// The `PUSHn` opcode for `1 ≤ n ≤ 32`.
    pub fn push(n: usize) -> Op {
        assert!((1..=32).contains(&n), "PUSH width {n} out of range");
        PUSH_TABLE[n - 1]
    }

    /// The `DUPn` opcode for `1 ≤ n ≤ 16`.
    pub fn dup(n: usize) -> Op {
        assert!((1..=16).contains(&n), "DUP depth {n} out of range");
        DUP_TABLE[n - 1]
    }

    /// The `SWAPn` opcode for `1 ≤ n ≤ 16`.
    pub fn swap(n: usize) -> Op {
        assert!((1..=16).contains(&n), "SWAP depth {n} out of range");
        SWAP_TABLE[n - 1]
    }

    /// For `PUSHn`, the number of immediate bytes that follow; 0 otherwise.
    pub fn push_bytes(&self) -> usize {
        let b = *self as u8;
        if (0x60..=0x7f).contains(&b) {
            (b - 0x60 + 1) as usize
        } else {
            0
        }
    }

    /// The Yellow-Paper mnemonic.
    pub fn mnemonic(&self) -> String {
        let b = *self as u8;
        match b {
            0x60..=0x7f => format!("PUSH{}", b - 0x60 + 1),
            0x80..=0x8f => format!("DUP{}", b - 0x80 + 1),
            0x90..=0x9f => format!("SWAP{}", b - 0x90 + 1),
            0xa0..=0xa4 => format!("LOG{}", b - 0xa0),
            _ => format!("{self:?}").to_uppercase(),
        }
    }
}

const PUSH_TABLE: [Op; 32] = [
    Op::Push1,
    Op::Push2,
    Op::Push3,
    Op::Push4,
    Op::Push5,
    Op::Push6,
    Op::Push7,
    Op::Push8,
    Op::Push9,
    Op::Push10,
    Op::Push11,
    Op::Push12,
    Op::Push13,
    Op::Push14,
    Op::Push15,
    Op::Push16,
    Op::Push17,
    Op::Push18,
    Op::Push19,
    Op::Push20,
    Op::Push21,
    Op::Push22,
    Op::Push23,
    Op::Push24,
    Op::Push25,
    Op::Push26,
    Op::Push27,
    Op::Push28,
    Op::Push29,
    Op::Push30,
    Op::Push31,
    Op::Push32,
];

const DUP_TABLE: [Op; 16] = [
    Op::Dup1,
    Op::Dup2,
    Op::Dup3,
    Op::Dup4,
    Op::Dup5,
    Op::Dup6,
    Op::Dup7,
    Op::Dup8,
    Op::Dup9,
    Op::Dup10,
    Op::Dup11,
    Op::Dup12,
    Op::Dup13,
    Op::Dup14,
    Op::Dup15,
    Op::Dup16,
];

const SWAP_TABLE: [Op; 16] = [
    Op::Swap1,
    Op::Swap2,
    Op::Swap3,
    Op::Swap4,
    Op::Swap5,
    Op::Swap6,
    Op::Swap7,
    Op::Swap8,
    Op::Swap9,
    Op::Swap10,
    Op::Swap11,
    Op::Swap12,
    Op::Swap13,
    Op::Swap14,
    Op::Swap15,
    Op::Swap16,
];

/// Marks the positions of valid `JUMPDEST`s, skipping PUSH immediates.
pub fn analyze_jumpdests(code: &[u8]) -> Vec<bool> {
    let mut valid = vec![false; code.len()];
    let mut pc = 0usize;
    while pc < code.len() {
        let byte = code[pc];
        if byte == Op::JumpDest as u8 {
            valid[pc] = true;
        }
        if (0x60..=0x7f).contains(&byte) {
            pc += (byte - 0x60 + 1) as usize;
        }
        pc += 1;
    }
    valid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip_for_all_assigned() {
        for b in 0u16..=255 {
            if let Some(op) = Op::from_byte(b as u8) {
                assert_eq!(op as u8, b as u8, "{op:?}");
            }
        }
    }

    #[test]
    fn push_dup_swap_tables() {
        assert_eq!(Op::push(1), Op::Push1);
        assert_eq!(Op::push(32), Op::Push32);
        assert_eq!(Op::dup(16), Op::Dup16);
        assert_eq!(Op::swap(7), Op::Swap7);
        assert_eq!(Op::Push5.push_bytes(), 5);
        assert_eq!(Op::Add.push_bytes(), 0);
    }

    #[test]
    #[should_panic]
    fn push_zero_panics() {
        Op::push(0);
    }

    #[test]
    fn unassigned_bytes_are_none() {
        assert_eq!(Op::from_byte(0x0c), None);
        assert_eq!(Op::from_byte(0x21), None);
        assert_eq!(Op::from_byte(0xf5), None); // CREATE2 not implemented
    }

    #[test]
    fn mnemonics() {
        assert_eq!(Op::Push20.mnemonic(), "PUSH20");
        assert_eq!(Op::Dup3.mnemonic(), "DUP3");
        assert_eq!(Op::Log2.mnemonic(), "LOG2");
        assert_eq!(Op::Keccak256.mnemonic(), "KECCAK256");
    }

    #[test]
    fn jumpdest_analysis_skips_push_data() {
        // PUSH2 0x5b5b JUMPDEST: only offset 3 is a real JUMPDEST.
        let code = [0x61, 0x5b, 0x5b, 0x5b];
        let valid = analyze_jumpdests(&code);
        assert_eq!(valid, vec![false, false, false, true]);
    }

    #[test]
    fn jumpdest_analysis_truncated_push() {
        // PUSH32 with only 2 bytes of immediate: must not panic.
        let code = [0x7f, 0x5b, 0x5b];
        let valid = analyze_jumpdests(&code);
        assert!(!valid.iter().any(|&v| v));
    }
}
