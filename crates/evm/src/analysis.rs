//! Code analysis and its cross-execution cache.
//!
//! Before interpreting a byte of code the EVM must know which offsets are
//! valid `JUMPDEST`s (offsets inside PUSH immediates are not). That scan
//! is `O(len(code))` and, in the seed interpreter, re-ran for **every
//! frame** — every outer call, every nested `CALL`/`DELEGATECALL`, and
//! every dispute-path re-execution paid it again for byte-identical code.
//!
//! [`AnalysisCache`] memoizes the scan keyed by `keccak256(code)`, so a
//! contract's bitmap is computed once per unique bytecode and shared
//! (via `Arc`) across frames, transactions and blocks. The chain keeps
//! one cache per [`Testnet`](../../sc_chain/testnet/struct.Testnet.html)
//! and threads it into each [`crate::Evm`]; hit/miss counters make the
//! effect measurable in `sc-bench`.
//!
//! Caching is purely an interpreter-speed optimisation: analysis is a
//! deterministic pure function of the code, so a warm cache can never
//! change an execution result (asserted by `sc-chain`'s determinism
//! suite).

use crate::opcode::analyze_jumpdests;
use sc_primitives::H256;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The result of statically analysing one bytecode blob.
///
/// Currently just the `JUMPDEST` validity bitmap; the struct exists so
/// future analyses (gas-block metering, stack-height checks) extend the
/// same cache entry instead of adding parallel maps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeAnalysis {
    jumpdests: Vec<bool>,
}

impl CodeAnalysis {
    /// Analyses `code` from scratch (no caching).
    pub fn analyze(code: &[u8]) -> Self {
        CodeAnalysis {
            jumpdests: analyze_jumpdests(code),
        }
    }

    /// True iff `pc` is a valid jump target in the analysed code.
    #[inline]
    pub fn is_jumpdest(&self, pc: usize) -> bool {
        self.jumpdests.get(pc).copied().unwrap_or(false)
    }

    /// Length of the analysed code in bytes.
    pub fn code_len(&self) -> usize {
        self.jumpdests.len()
    }
}

/// Cache hit/miss counters, readable while executions are in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the analysis.
    pub misses: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; zero when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The default [`AnalysisCache::capacity`]: far above any realistic
/// count of distinct live bytecodes, small enough that an adversary
/// deploying throwaway contracts cannot grow the map without bound.
pub const DEFAULT_ANALYSIS_CAPACITY: usize = 4096;

/// Entries plus their insertion order, guarded by one lock so eviction
/// and lookup can't race.
#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<H256, Arc<CodeAnalysis>>,
    /// Insertion order, oldest first — the FIFO eviction queue.
    order: VecDeque<H256>,
}

/// A thread-safe, *bounded* memo of [`CodeAnalysis`] keyed by
/// `keccak256(code)`.
///
/// Keying by content hash (not by `Arc` pointer identity) means two
/// deployments of the same bytecode — e.g. the on-chain copy and a
/// dispute-path re-deployment — share one entry. The chain already knows
/// each account's code hash (it is cached on the account record), so
/// lookups cost a `HashMap` probe, not a keccak.
///
/// The cache holds at most [`AnalysisCache::capacity`] bytecodes
/// (default [`DEFAULT_ANALYSIS_CAPACITY`]), evicting oldest-first once
/// full, so a long-lived node that sees an unbounded stream of distinct
/// deployments keeps a bounded footprint.
#[derive(Debug)]
pub struct AnalysisCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for AnalysisCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_ANALYSIS_CAPACITY)
    }
}

impl AnalysisCache {
    /// Creates an empty cache holding at most
    /// [`DEFAULT_ANALYSIS_CAPACITY`] bytecodes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache holding at most `capacity` bytecodes
    /// (min 1). When full, the oldest entry is evicted first; a
    /// re-requested evictee is simply re-analysed and re-admitted, so
    /// the bound only ever costs speed, never correctness.
    pub fn with_capacity(capacity: usize) -> Self {
        AnalysisCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum number of distinct bytecodes retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted to enforce the capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Returns the analysis for `code`, computing and memoizing it on
    /// first sight of `code_hash`.
    ///
    /// The caller is trusted that `code_hash == keccak256(code)`; the
    /// chain maintains that invariant on its account records.
    pub fn get_or_analyze(&self, code_hash: H256, code: &[u8]) -> Arc<CodeAnalysis> {
        if let Some(hit) = self
            .inner
            .lock()
            .expect("analysis cache poisoned")
            .entries
            .get(&code_hash)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Analyse outside the lock: scans of large code must not block
        // other executors' lookups. A racing analysis of the same hash
        // produces an identical value, so last-write-wins is harmless.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let analysis = Arc::new(CodeAnalysis::analyze(code));
        let mut inner = self.inner.lock().expect("analysis cache poisoned");
        if inner
            .entries
            .insert(code_hash, Arc::clone(&analysis))
            .is_none()
        {
            // First sight (a racing duplicate insert keeps the hash's
            // existing queue slot).
            inner.order.push_back(code_hash);
        }
        while inner.entries.len() > self.capacity {
            let oldest = inner.order.pop_front().expect("order tracks entries");
            inner.entries.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        analysis
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct bytecodes cached.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("analysis cache poisoned")
            .entries
            .len()
    }

    /// True iff no bytecode has been analysed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and zeroes the counters (bench cold starts).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("analysis cache poisoned");
        inner.entries.clear();
        inner.order.clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_crypto::keccak256;

    #[test]
    fn analysis_matches_raw_scan() {
        // PUSH2 0x5b5b JUMPDEST: only offset 3 is a real JUMPDEST.
        let code = [0x61, 0x5b, 0x5b, 0x5b];
        let a = CodeAnalysis::analyze(&code);
        assert!(!a.is_jumpdest(0));
        assert!(!a.is_jumpdest(1));
        assert!(!a.is_jumpdest(2));
        assert!(a.is_jumpdest(3));
        assert!(!a.is_jumpdest(4), "out of bounds is not a jumpdest");
        assert_eq!(a.code_len(), 4);
    }

    #[test]
    fn cache_hits_after_first_analysis() {
        let cache = AnalysisCache::new();
        let code = vec![0x5b, 0x00];
        let hash = keccak256(&code);
        let first = cache.get_or_analyze(hash, &code);
        let second = cache.get_or_analyze(hash, &code);
        assert!(
            Arc::ptr_eq(&first, &second),
            "second lookup shares the entry"
        );
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_code_gets_distinct_entries() {
        let cache = AnalysisCache::new();
        let a = vec![0x5b];
        let b = vec![0x00];
        cache.get_or_analyze(keccak256(&a), &a);
        cache.get_or_analyze(keccak256(&b), &b);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn clear_resets_entries_and_stats() {
        let cache = AnalysisCache::new();
        let code = vec![0x5b];
        let hash = keccak256(&code);
        cache.get_or_analyze(hash, &code);
        cache.get_or_analyze(hash, &code);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 0 });
    }

    #[test]
    fn hit_ratio_bounds() {
        let s = CacheStats { hits: 0, misses: 0 };
        assert_eq!(s.hit_ratio(), 0.0);
        let s = CacheStats { hits: 3, misses: 1 };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn capacity_bounds_the_cache_with_fifo_eviction() {
        // Regression: the cache grew one entry per distinct bytecode
        // forever, so an adversarial deployment stream was an unbounded
        // memory leak in every long-lived node.
        let cache = AnalysisCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        let codes: Vec<Vec<u8>> = (0u8..5).map(|i| vec![0x5b, 0x60, i]).collect();
        let hashes: Vec<H256> = codes.iter().map(|c| keccak256(c)).collect();
        for (h, c) in hashes.iter().zip(&codes) {
            cache.get_or_analyze(*h, c);
            assert!(cache.len() <= 2, "capacity is a hard bound");
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 3, "oldest three were displaced");

        // The two newest survive (hits); an evictee re-analyses (miss)
        // with an identical result — the bound never changes answers.
        let before = cache.stats();
        cache.get_or_analyze(hashes[4], &codes[4]);
        cache.get_or_analyze(hashes[3], &codes[3]);
        assert_eq!(cache.stats().hits, before.hits + 2);
        let readmitted = cache.get_or_analyze(hashes[0], &codes[0]);
        assert_eq!(cache.stats().misses, before.misses + 1);
        assert_eq!(*readmitted, CodeAnalysis::analyze(&codes[0]));
        assert_eq!(cache.len(), 2);

        cache.clear();
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.capacity(), 2, "clear keeps the bound");
    }

    #[test]
    fn concurrent_lookups_converge() {
        let cache = Arc::new(AnalysisCache::new());
        let code = Arc::new(vec![0x5b, 0x60, 0x01, 0x00]);
        let hash = keccak256(&code);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let code = Arc::clone(&code);
                s.spawn(move || {
                    for _ in 0..100 {
                        let a = cache.get_or_analyze(hash, &code);
                        assert!(a.is_jumpdest(0));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 800);
    }
}
