//! Precompiled contracts.
//!
//! Addresses 0x01–0x04 are the classic trio the stack needs: `ecrecover`
//! (0x01) — the linchpin of the paper's signed-copy verification — plus
//! `sha256` (0x02) and `identity` (0x04).
//!
//! Addresses 0x09–0x0c are the confidential-value verifier family
//! backing `sc-confidential`: Pedersen opening checks, homomorphic
//! add checks, domain-separated nullifier hashing and range-proof
//! verification, so MiniSol contracts can verify committed deposits
//! without reimplementing curve math in bytecode.
//!
//! Every precompile follows mainnet error semantics at the dispatch
//! boundary: malformed input burns the gas and returns *empty output*
//! (never a panic, never a trap); only an insufficient `gas_limit`
//! yields `None` (out-of-gas in the precompile frame). The typed
//! `*_typed` entry points underneath expose *why* an input was rejected
//! — the hardening tests drive those directly.

use crate::gas::{self, g};
use sc_confidential::{
    decode_point, nullifier, Commitment, CommitmentBackend, DecodeError, PedersenBackend,
};
use sc_crypto::ecdsa::{recover_address, Signature};
use sc_crypto::secp256k1::n;
use sc_crypto::sha256;
use sc_primitives::{Address, H256, U256};

/// Result of running a precompile.
pub struct PrecompileResult {
    /// Gas consumed.
    pub gas_cost: u64,
    /// Output bytes (empty on soft failure, per mainnet semantics).
    pub output: Vec<u8>,
}

/// Why a precompile rejected its input. Surfaced by the `*_typed`
/// entry points; the EVM-facing [`run`] collapses every variant to
/// "gas burned, empty output".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrecompileError {
    /// Input is not the exact length the precompile requires.
    BadLength {
        /// Required input length in bytes.
        expected: usize,
        /// Actual input length.
        got: usize,
    },
    /// A 64-byte point encoding had a coordinate `>= p`.
    NonCanonicalPoint,
    /// A 64-byte point encoding is not on the curve.
    PointNotOnCurve,
    /// A scalar field element was `>= n`.
    NonCanonicalScalar,
    /// `range_verify` bit width outside `1..=64`.
    UnsupportedBits,
    /// `ecrecover` recovery id outside `{27, 28}`.
    BadRecoveryId,
    /// `ecrecover` signature did not recover to any address.
    Unrecoverable,
}

impl From<DecodeError> for PrecompileError {
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::Length(got) => PrecompileError::BadLength { expected: 64, got },
            DecodeError::NonCanonical => PrecompileError::NonCanonicalPoint,
            DecodeError::NotOnCurve => PrecompileError::PointNotOnCurve,
        }
    }
}

/// Returns `Some` if `address` designates a precompile.
pub fn is_precompile(address: Address) -> bool {
    let word = address.to_u256();
    let Some(id) = word.to_u64() else {
        return false;
    };
    matches!(id, 1 | 2 | 4 | 9..=12)
}

/// Runs a precompile. Returns `None` when `gas_limit` is insufficient
/// (out-of-gas in the precompile frame).
pub fn run(address: Address, input: &[u8], gas_limit: u64) -> Option<PrecompileResult> {
    let id = address.to_u256().to_u64().unwrap_or(0);
    match id {
        1 => ecrecover(input, gas_limit),
        2 => sha256_precompile(input, gas_limit),
        4 => identity(input, gas_limit),
        9 => commit_verify(input, gas_limit),
        10 => commit_add_check(input, gas_limit),
        11 => nullifier_precompile(input, gas_limit),
        12 => range_verify(input, gas_limit),
        _ => None,
    }
}

/// Encodes a bool as a 32-byte EVM word.
fn bool_word(b: bool) -> Vec<u8> {
    let mut out = vec![0u8; 32];
    out[31] = b as u8;
    out
}

/// 0x01: `ecrecover(hash, v, r, s) -> address` (32-byte left-padded).
///
/// Mirrors mainnet behaviour: invalid signatures return *empty output*
/// with success, not an error.
fn ecrecover(input: &[u8], gas_limit: u64) -> Option<PrecompileResult> {
    if gas_limit < g::ECRECOVER {
        return None;
    }
    let output = match ecrecover_typed(input) {
        Ok(addr) => {
            let mut out = vec![0u8; 32];
            out[12..].copy_from_slice(addr.as_bytes());
            out
        }
        Err(_) => Vec::new(),
    };
    Some(PrecompileResult {
        gas_cost: g::ECRECOVER,
        output,
    })
}

/// Typed core of `ecrecover`. Input is zero-padded/truncated to 128
/// bytes first (mainnet semantics), so length itself is never an error.
pub fn ecrecover_typed(input: &[u8]) -> Result<Address, PrecompileError> {
    let mut padded = [0u8; 128];
    let take = input.len().min(128);
    padded[..take].copy_from_slice(&input[..take]);

    let hash = H256(padded[0..32].try_into().expect("fixed slice"));
    let v_word = U256::from_be_slice(&padded[32..64]);
    let r = H256(padded[64..96].try_into().expect("fixed slice"));
    let s = H256(padded[96..128].try_into().expect("fixed slice"));

    let v = match v_word.to_u64() {
        Some(v @ 27..=28) => v as u8,
        _ => return Err(PrecompileError::BadRecoveryId),
    };
    let sig = Signature { v, r, s };
    recover_address(hash, &sig).map_err(|_| PrecompileError::Unrecoverable)
}

/// 0x02: SHA-256 of the input.
fn sha256_precompile(input: &[u8], gas_limit: u64) -> Option<PrecompileResult> {
    let cost = g::SHA256_BASE + g::SHA256_WORD * gas::words(input.len() as u64);
    if gas_limit < cost {
        return None;
    }
    Some(PrecompileResult {
        gas_cost: cost,
        output: sha256::sha256(input).to_vec(),
    })
}

/// 0x04: identity (memcpy).
fn identity(input: &[u8], gas_limit: u64) -> Option<PrecompileResult> {
    let cost = g::IDENTITY_BASE + g::IDENTITY_WORD * gas::words(input.len() as u64);
    if gas_limit < cost {
        return None;
    }
    Some(PrecompileResult {
        gas_cost: cost,
        output: input.to_vec(),
    })
}

/// 0x09: `commit_verify(cx, cy, v, r) -> bool` — does the Pedersen
/// commitment `(cx, cy)` open to value `v` under blinding `r`?
///
/// Input: exactly 128 bytes `cx ‖ cy ‖ v ‖ r`. Both the value and the
/// blinding must be canonical scalars (`< n`) so that a commitment has
/// one on-chain spelling per opening — otherwise `v` and `v + n` would
/// open the same commitment.
fn commit_verify(input: &[u8], gas_limit: u64) -> Option<PrecompileResult> {
    if gas_limit < g::COMMIT_VERIFY {
        return None;
    }
    let output = match commit_verify_typed(input) {
        Ok(ok) => bool_word(ok),
        Err(_) => Vec::new(),
    };
    Some(PrecompileResult {
        gas_cost: g::COMMIT_VERIFY,
        output,
    })
}

/// Typed core of `commit_verify`.
pub fn commit_verify_typed(input: &[u8]) -> Result<bool, PrecompileError> {
    if input.len() != 128 {
        return Err(PrecompileError::BadLength {
            expected: 128,
            got: input.len(),
        });
    }
    let c = Commitment(decode_point(&input[..64])?);
    let v = U256::from_be_slice(&input[64..96]);
    let r = U256::from_be_slice(&input[96..128]);
    if v >= n() || r >= n() {
        return Err(PrecompileError::NonCanonicalScalar);
    }
    Ok(PedersenBackend.verify_opening(&c, v, r))
}

/// 0x0a: `commit_add_check(ax, ay, bx, by, cx, cy) -> bool` — is
/// `A + B == C` as curve points? The homomorphic conservation check:
/// `commit(v1,r1) + commit(v2,r2) == commit(v1+v2, r1+r2)`.
///
/// Input: exactly 192 bytes; `(0,0)` encodes the identity.
fn commit_add_check(input: &[u8], gas_limit: u64) -> Option<PrecompileResult> {
    if gas_limit < g::COMMIT_ADD {
        return None;
    }
    let output = match commit_add_check_typed(input) {
        Ok(ok) => bool_word(ok),
        Err(_) => Vec::new(),
    };
    Some(PrecompileResult {
        gas_cost: g::COMMIT_ADD,
        output,
    })
}

/// Typed core of `commit_add_check`.
pub fn commit_add_check_typed(input: &[u8]) -> Result<bool, PrecompileError> {
    if input.len() != 192 {
        return Err(PrecompileError::BadLength {
            expected: 192,
            got: input.len(),
        });
    }
    let a = decode_point(&input[..64])?;
    let b = decode_point(&input[64..128])?;
    let c = decode_point(&input[128..192])?;
    Ok(Commitment(a.add(&b)) == Commitment(c))
}

/// 0x0b: `nullifier(data) -> bytes32` — the domain-separated nullifier
/// `keccak("sc-nullifier-v1" ‖ data)`. Any input length is valid.
fn nullifier_precompile(input: &[u8], gas_limit: u64) -> Option<PrecompileResult> {
    let cost = g::NULLIFIER_BASE + g::NULLIFIER_WORD * gas::words(input.len() as u64);
    if gas_limit < cost {
        return None;
    }
    Some(PrecompileResult {
        gas_cost: cost,
        output: nullifier(input).as_bytes().to_vec(),
    })
}

/// 0x0c: `range_verify(cx, cy, bits, proof) -> bool` — does the proof
/// show the commitment hides a value in `[0, 2^bits)`?
///
/// Input: `cx ‖ cy ‖ bits-word ‖ proof` where the proof is exactly
/// `bits · 288` bytes. Gas scales with the *declared* bit width, so the
/// cost is knowable before any curve work.
fn range_verify(input: &[u8], gas_limit: u64) -> Option<PrecompileResult> {
    // Charge by declared width when the header parses; malformed
    // headers burn the base cost.
    let declared_bits = if input.len() >= 96 {
        // A width too large for u64 still bills the 64-bit cap below.
        U256::from_be_slice(&input[64..96])
            .to_u64()
            .unwrap_or(u64::MAX)
    } else {
        0
    };
    let billable = declared_bits.min(sc_confidential::range::MAX_BITS as u64);
    let cost = g::RANGE_VERIFY_BASE + g::RANGE_VERIFY_BIT * billable;
    if gas_limit < cost {
        return None;
    }
    let output = match range_verify_typed(input) {
        Ok(ok) => bool_word(ok),
        Err(_) => Vec::new(),
    };
    Some(PrecompileResult {
        gas_cost: cost,
        output,
    })
}

/// Typed core of `range_verify`.
pub fn range_verify_typed(input: &[u8]) -> Result<bool, PrecompileError> {
    if input.len() < 96 {
        return Err(PrecompileError::BadLength {
            expected: 96,
            got: input.len(),
        });
    }
    let c = Commitment(decode_point(&input[..64])?);
    let bits_word = U256::from_be_slice(&input[64..96]);
    let bits = match bits_word.to_u64() {
        Some(b @ 1..=64) => b as u32,
        _ => return Err(PrecompileError::UnsupportedBits),
    };
    let proof = &input[96..];
    let expected = 96 + bits as usize * sc_confidential::range::BYTES_PER_BIT;
    if input.len() != expected {
        return Err(PrecompileError::BadLength {
            expected,
            got: input.len(),
        });
    }
    Ok(PedersenBackend.verify_range(&c, bits, proof))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_crypto::ecdsa::PrivateKey;
    use sc_crypto::keccak256;

    fn precompile_addr(n: u64) -> Address {
        Address::from_u256(U256::from_u64(n))
    }

    fn commit_input(c: &Commitment, v: u64, r: u64) -> Vec<u8> {
        let mut input = c.to_bytes().to_vec();
        input.extend_from_slice(&U256::from_u64(v).to_be_bytes());
        input.extend_from_slice(&U256::from_u64(r).to_be_bytes());
        input
    }

    #[test]
    fn address_classification() {
        assert!(is_precompile(precompile_addr(1)));
        assert!(is_precompile(precompile_addr(2)));
        assert!(!is_precompile(precompile_addr(3)), "ripemd not implemented");
        assert!(is_precompile(precompile_addr(4)));
        assert!(!is_precompile(precompile_addr(5)));
        assert!(!is_precompile(precompile_addr(8)));
        assert!(is_precompile(precompile_addr(9)), "commit_verify");
        assert!(is_precompile(precompile_addr(10)), "commit_add_check");
        assert!(is_precompile(precompile_addr(11)), "nullifier");
        assert!(is_precompile(precompile_addr(12)), "range_verify");
        assert!(!is_precompile(precompile_addr(13)));
        assert!(!is_precompile(Address::ZERO));
        assert!(!is_precompile(Address([0xff; 20])));
    }

    #[test]
    fn ecrecover_roundtrip() {
        let key = PrivateKey::from_seed("alice");
        let digest = keccak256(b"the bytecode");
        let sig = key.sign(digest);

        let mut input = Vec::new();
        input.extend_from_slice(digest.as_bytes());
        let mut v = [0u8; 32];
        v[31] = sig.v;
        input.extend_from_slice(&v);
        input.extend_from_slice(sig.r.as_bytes());
        input.extend_from_slice(sig.s.as_bytes());

        let res = run(precompile_addr(1), &input, 100_000).unwrap();
        assert_eq!(res.gas_cost, 3_000);
        assert_eq!(&res.output[12..], key.address().as_bytes());
        assert_eq!(&res.output[..12], &[0u8; 12]);
    }

    #[test]
    fn ecrecover_bad_v_returns_empty() {
        let mut input = vec![0u8; 128];
        input[63] = 99; // v = 99
        let res = run(precompile_addr(1), &input, 100_000).unwrap();
        assert!(res.output.is_empty());
        assert_eq!(res.gas_cost, 3_000, "gas still charged");
        assert_eq!(ecrecover_typed(&input), Err(PrecompileError::BadRecoveryId));
    }

    #[test]
    fn ecrecover_short_input_is_padded() {
        let res = run(precompile_addr(1), &[], 100_000).unwrap();
        assert!(res.output.is_empty());
    }

    #[test]
    fn ecrecover_oversized_input_is_truncated() {
        let key = PrivateKey::from_seed("alice");
        let digest = keccak256(b"tail bytes must not matter");
        let sig = key.sign(digest);
        let mut input = Vec::new();
        input.extend_from_slice(digest.as_bytes());
        let mut v = [0u8; 32];
        v[31] = sig.v;
        input.extend_from_slice(&v);
        input.extend_from_slice(sig.r.as_bytes());
        input.extend_from_slice(sig.s.as_bytes());
        input.extend_from_slice(&[0xab; 57]);
        let res = run(precompile_addr(1), &input, 100_000).unwrap();
        assert_eq!(&res.output[12..], key.address().as_bytes());
    }

    #[test]
    fn ecrecover_zero_sig_is_unrecoverable() {
        let mut input = vec![0u8; 128];
        input[63] = 27;
        assert_eq!(ecrecover_typed(&input), Err(PrecompileError::Unrecoverable));
    }

    #[test]
    fn ecrecover_out_of_gas() {
        assert!(run(precompile_addr(1), &[], 2_999).is_none());
    }

    #[test]
    fn sha256_cost_and_output() {
        let res = run(precompile_addr(2), b"abc", 100_000).unwrap();
        assert_eq!(res.gas_cost, 60 + 12);
        assert_eq!(
            sc_primitives::hex::encode(&res.output),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn identity_copies() {
        let res = run(precompile_addr(4), b"hello world!", 100_000).unwrap();
        assert_eq!(res.output, b"hello world!");
        assert_eq!(res.gas_cost, 15 + 3);
    }

    #[test]
    fn commit_verify_accepts_valid_opening() {
        let c = PedersenBackend.commit(U256::from_u64(42), U256::from_u64(7));
        let input = commit_input(&c, 42, 7);
        let res = run(precompile_addr(9), &input, 100_000).unwrap();
        assert_eq!(res.gas_cost, g::COMMIT_VERIFY);
        assert_eq!(res.output[31], 1);

        let wrong = commit_input(&c, 43, 7);
        let res = run(precompile_addr(9), &wrong, 100_000).unwrap();
        assert_eq!(res.output[31], 0, "wrong value is a clean false");
    }

    #[test]
    fn commit_verify_malformed_inputs_burn_gas_and_fail_clean() {
        let c = PedersenBackend.commit(U256::from_u64(1), U256::from_u64(2));
        let good = commit_input(&c, 1, 2);

        // Truncated.
        let res = run(precompile_addr(9), &good[..127], 100_000).unwrap();
        assert!(res.output.is_empty());
        assert_eq!(res.gas_cost, g::COMMIT_VERIFY);
        assert_eq!(
            commit_verify_typed(&good[..127]),
            Err(PrecompileError::BadLength {
                expected: 128,
                got: 127
            })
        );

        // Oversized.
        let mut long = good.clone();
        long.push(0);
        assert!(run(precompile_addr(9), &long, 100_000)
            .unwrap()
            .output
            .is_empty());

        // Off-curve point.
        let mut off = good.clone();
        off[63] ^= 1;
        assert!(run(precompile_addr(9), &off, 100_000)
            .unwrap()
            .output
            .is_empty());
        assert_eq!(
            commit_verify_typed(&off),
            Err(PrecompileError::PointNotOnCurve)
        );

        // Non-canonical coordinate (x = p, curve-valid residue or not,
        // must be rejected before any curve math).
        let mut noncanon = good.clone();
        noncanon[..32].copy_from_slice(&sc_crypto::secp256k1::p().to_be_bytes());
        assert_eq!(
            commit_verify_typed(&noncanon),
            Err(PrecompileError::NonCanonicalPoint)
        );

        // Non-canonical blinding scalar (r = n).
        let mut badscalar = good.clone();
        badscalar[96..128].copy_from_slice(&n().to_be_bytes());
        assert_eq!(
            commit_verify_typed(&badscalar),
            Err(PrecompileError::NonCanonicalScalar)
        );

        // Non-canonical value: v + n opens the same commitment as v, so
        // it must be rejected — one on-chain spelling per opening.
        let mut badval = good.clone();
        badval[64..96].copy_from_slice(&n().wrapping_add(U256::ONE).to_be_bytes());
        assert_eq!(
            commit_verify_typed(&badval),
            Err(PrecompileError::NonCanonicalScalar)
        );
        assert!(run(precompile_addr(9), &badval, 100_000)
            .unwrap()
            .output
            .is_empty());

        // Out of gas is the only `None`.
        assert!(run(precompile_addr(9), &good, g::COMMIT_VERIFY - 1).is_none());
    }

    #[test]
    fn commit_add_check_is_homomorphic() {
        let b = PedersenBackend;
        let c1 = b.commit(U256::from_u64(10), U256::from_u64(3));
        let c2 = b.commit(U256::from_u64(32), U256::from_u64(4));
        let sum = b.commit(U256::from_u64(42), U256::from_u64(7));

        let mut input = c1.to_bytes().to_vec();
        input.extend_from_slice(&c2.to_bytes());
        input.extend_from_slice(&sum.to_bytes());
        let res = run(precompile_addr(10), &input, 100_000).unwrap();
        assert_eq!(res.gas_cost, g::COMMIT_ADD);
        assert_eq!(res.output[31], 1);

        // Wrong sum → clean false.
        let mut wrong = c1.to_bytes().to_vec();
        wrong.extend_from_slice(&c2.to_bytes());
        wrong.extend_from_slice(&c1.to_bytes());
        let res = run(precompile_addr(10), &wrong, 100_000).unwrap();
        assert_eq!(res.output[31], 0);

        // Identity encoding: C + 0 == C.
        let mut with_zero = c1.to_bytes().to_vec();
        with_zero.extend_from_slice(&[0u8; 64]);
        with_zero.extend_from_slice(&c1.to_bytes());
        let res = run(precompile_addr(10), &with_zero, 100_000).unwrap();
        assert_eq!(res.output[31], 1);

        // Truncated input burns gas, empty output.
        let res = run(precompile_addr(10), &input[..191], 100_000).unwrap();
        assert!(res.output.is_empty());
        assert_eq!(
            commit_add_check_typed(&input[..191]),
            Err(PrecompileError::BadLength {
                expected: 192,
                got: 191
            })
        );
    }

    #[test]
    fn nullifier_matches_library_and_charges_by_word() {
        let res = run(precompile_addr(11), b"voucher digest bytes", 100_000).unwrap();
        assert_eq!(res.output, nullifier(b"voucher digest bytes").as_bytes());
        assert_eq!(res.gas_cost, g::NULLIFIER_BASE + g::NULLIFIER_WORD);

        let res = run(precompile_addr(11), &[], 100_000).unwrap();
        assert_eq!(res.gas_cost, g::NULLIFIER_BASE);
        assert_eq!(res.output, nullifier(&[]).as_bytes());
    }

    #[test]
    fn range_verify_end_to_end() {
        let b = PedersenBackend;
        let (v, r) = (U256::from_u64(42), U256::from_u64(9));
        let c = b.commit(v, r);
        let proof = b.prove_range(v, r, 8).unwrap();

        let mut input = c.to_bytes().to_vec();
        input.extend_from_slice(&U256::from_u64(8).to_be_bytes());
        input.extend_from_slice(proof.as_bytes());
        let res = run(precompile_addr(12), &input, 10_000_000).unwrap();
        assert_eq!(res.gas_cost, g::RANGE_VERIFY_BASE + 8 * g::RANGE_VERIFY_BIT);
        assert_eq!(res.output[31], 1);

        // Tampered proof → clean false, same gas.
        let mut bad = input.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        let res = run(precompile_addr(12), &bad, 10_000_000).unwrap();
        assert_eq!(res.output[31], 0);

        // Truncated proof → typed length error, empty output.
        let res = run(precompile_addr(12), &input[..input.len() - 1], 10_000_000).unwrap();
        assert!(res.output.is_empty());
        assert!(matches!(
            range_verify_typed(&input[..input.len() - 1]),
            Err(PrecompileError::BadLength { .. })
        ));

        // bits = 0 and bits > 64 are unsupported.
        let mut zero_bits = c.to_bytes().to_vec();
        zero_bits.extend_from_slice(&U256::ZERO.to_be_bytes());
        assert_eq!(
            range_verify_typed(&zero_bits),
            Err(PrecompileError::UnsupportedBits)
        );
        let mut wide = c.to_bytes().to_vec();
        wide.extend_from_slice(&U256::from_u64(65).to_be_bytes());
        assert_eq!(
            range_verify_typed(&wide),
            Err(PrecompileError::UnsupportedBits)
        );

        // Gas scales with the declared width; a huge declared width
        // cannot be used to dodge the charge.
        assert!(run(precompile_addr(12), &input, g::RANGE_VERIFY_BASE).is_none());
        let mut huge = c.to_bytes().to_vec();
        huge.extend_from_slice(&U256::MAX.to_be_bytes());
        assert!(
            run(
                precompile_addr(12),
                &huge,
                g::RANGE_VERIFY_BASE + 63 * g::RANGE_VERIFY_BIT
            )
            .is_none(),
            "declared width beyond max still bills the 64-bit cap"
        );
    }
}
