//! Precompiled contracts at addresses 0x01–0x04.
//!
//! Only the three the stack needs are provided: `ecrecover` (0x01) — the
//! linchpin of the paper's signed-copy verification — plus `sha256` (0x02)
//! and `identity` (0x04).

use crate::gas::{self, g};
use sc_crypto::ecdsa::{recover_address, Signature};
use sc_crypto::sha256;
use sc_primitives::{Address, H256, U256};

/// Result of running a precompile.
pub struct PrecompileResult {
    /// Gas consumed.
    pub gas_cost: u64,
    /// Output bytes (empty on soft failure, per mainnet semantics).
    pub output: Vec<u8>,
}

/// Returns `Some` if `address` designates a precompile.
pub fn is_precompile(address: Address) -> bool {
    let word = address.to_u256();
    word >= U256::ONE && word <= U256::from_u64(4) && word != U256::from_u64(3)
}

/// Runs a precompile. Returns `None` when `gas_limit` is insufficient
/// (out-of-gas in the precompile frame).
pub fn run(address: Address, input: &[u8], gas_limit: u64) -> Option<PrecompileResult> {
    let id = address.to_u256().to_u64().unwrap_or(0);
    match id {
        1 => ecrecover(input, gas_limit),
        2 => sha256_precompile(input, gas_limit),
        4 => identity(input, gas_limit),
        _ => None,
    }
}

/// 0x01: `ecrecover(hash, v, r, s) -> address` (32-byte left-padded).
///
/// Mirrors mainnet behaviour: invalid signatures return *empty output*
/// with success, not an error.
fn ecrecover(input: &[u8], gas_limit: u64) -> Option<PrecompileResult> {
    if gas_limit < g::ECRECOVER {
        return None;
    }
    let mut padded = [0u8; 128];
    let take = input.len().min(128);
    padded[..take].copy_from_slice(&input[..take]);

    let hash = H256(padded[0..32].try_into().expect("fixed slice"));
    let v_word = U256::from_be_slice(&padded[32..64]);
    let r = H256(padded[64..96].try_into().expect("fixed slice"));
    let s = H256(padded[96..128].try_into().expect("fixed slice"));

    let output = match v_word.to_u64() {
        Some(v @ 27..=28) => {
            let sig = Signature { v: v as u8, r, s };
            match recover_address(hash, &sig) {
                Ok(addr) => {
                    let mut out = vec![0u8; 32];
                    out[12..].copy_from_slice(addr.as_bytes());
                    out
                }
                Err(_) => Vec::new(),
            }
        }
        _ => Vec::new(),
    };
    Some(PrecompileResult {
        gas_cost: g::ECRECOVER,
        output,
    })
}

/// 0x02: SHA-256 of the input.
fn sha256_precompile(input: &[u8], gas_limit: u64) -> Option<PrecompileResult> {
    let cost = g::SHA256_BASE + g::SHA256_WORD * gas::words(input.len() as u64);
    if gas_limit < cost {
        return None;
    }
    Some(PrecompileResult {
        gas_cost: cost,
        output: sha256::sha256(input).to_vec(),
    })
}

/// 0x04: identity (memcpy).
fn identity(input: &[u8], gas_limit: u64) -> Option<PrecompileResult> {
    let cost = g::IDENTITY_BASE + g::IDENTITY_WORD * gas::words(input.len() as u64);
    if gas_limit < cost {
        return None;
    }
    Some(PrecompileResult {
        gas_cost: cost,
        output: input.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_crypto::ecdsa::PrivateKey;
    use sc_crypto::keccak256;

    fn precompile_addr(n: u64) -> Address {
        Address::from_u256(U256::from_u64(n))
    }

    #[test]
    fn address_classification() {
        assert!(is_precompile(precompile_addr(1)));
        assert!(is_precompile(precompile_addr(2)));
        assert!(!is_precompile(precompile_addr(3)), "ripemd not implemented");
        assert!(is_precompile(precompile_addr(4)));
        assert!(!is_precompile(precompile_addr(5)));
        assert!(!is_precompile(Address::ZERO));
        assert!(!is_precompile(Address([0xff; 20])));
    }

    #[test]
    fn ecrecover_roundtrip() {
        let key = PrivateKey::from_seed("alice");
        let digest = keccak256(b"the bytecode");
        let sig = key.sign(digest);

        let mut input = Vec::new();
        input.extend_from_slice(digest.as_bytes());
        let mut v = [0u8; 32];
        v[31] = sig.v;
        input.extend_from_slice(&v);
        input.extend_from_slice(sig.r.as_bytes());
        input.extend_from_slice(sig.s.as_bytes());

        let res = run(precompile_addr(1), &input, 100_000).unwrap();
        assert_eq!(res.gas_cost, 3_000);
        assert_eq!(&res.output[12..], key.address().as_bytes());
        assert_eq!(&res.output[..12], &[0u8; 12]);
    }

    #[test]
    fn ecrecover_bad_v_returns_empty() {
        let mut input = vec![0u8; 128];
        input[63] = 99; // v = 99
        let res = run(precompile_addr(1), &input, 100_000).unwrap();
        assert!(res.output.is_empty());
        assert_eq!(res.gas_cost, 3_000, "gas still charged");
    }

    #[test]
    fn ecrecover_short_input_is_padded() {
        let res = run(precompile_addr(1), &[], 100_000).unwrap();
        assert!(res.output.is_empty());
    }

    #[test]
    fn ecrecover_out_of_gas() {
        assert!(run(precompile_addr(1), &[], 2_999).is_none());
    }

    #[test]
    fn sha256_cost_and_output() {
        let res = run(precompile_addr(2), b"abc", 100_000).unwrap();
        assert_eq!(res.gas_cost, 60 + 12);
        assert_eq!(
            sc_primitives::hex::encode(&res.output),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn identity_copies() {
        let res = run(precompile_addr(4), b"hello world!", 100_000).unwrap();
        assert_eq!(res.output, b"hello world!");
        assert_eq!(res.gas_cost, 15 + 3);
    }
}
