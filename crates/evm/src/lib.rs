//! A from-scratch Ethereum Virtual Machine.
//!
//! Substrate for the on/off-chain smart-contract reproduction: the paper's
//! enforcement mechanism needs real in-EVM `keccak256`, `ecrecover` and raw
//! `CREATE`-from-bytecode semantics, plus Yellow-Paper gas metering so that
//! the Table II gas measurements are meaningful.
//!
//! * [`analysis`] — jumpdest analysis and its cross-execution cache.
//! * [`opcode`] — the Byzantium+shifts instruction set.
//! * [`gas`] — the gas schedule and dynamic-cost formulas.
//! * [`host`] — the state-backend trait ([`host::Host`]) and a mock.
//! * [`memory`] — word-granular EVM memory.
//! * [`exec`] — the interpreter and CREATE/CALL machinery ([`exec::Evm`]).
//! * [`precompile`] — `ecrecover`, `sha256`, `identity`.
//! * [`asm`] — label-aware assembler and disassembler.
//! * [`inspect`] — step tracing and per-opcode gas profiling.
//! * [`spec`] — read/write-set tracking host for optimistic parallel
//!   execution.

#![warn(missing_docs)]

pub mod analysis;
pub mod asm;
pub mod exec;
pub mod gas;
pub mod host;
pub mod inspect;
pub mod memory;
pub mod opcode;
pub mod precompile;
pub mod spec;

pub use analysis::{AnalysisCache, CacheStats, CodeAnalysis, DEFAULT_ANALYSIS_CAPACITY};
pub use asm::{disassemble, wrap_initcode, Asm};
pub use exec::{contract_address, CallOutcome, CallParams, CreateOutcome, Evm, VmError};
pub use host::{BlockEnv, Env, Host, LogEntry, MockHost, TxEnv};
pub use inspect::{GasProfiler, Inspector};
pub use opcode::Op;
pub use spec::{ReadRecord, SpeculativeHost, WriteSet};
