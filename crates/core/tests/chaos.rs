//! Chaos suite: runs the full strategy matrix of both protocol drivers
//! under deterministic fault schedules and checks the post-run
//! invariants after every single run.
//!
//! Property checked per (seed, cell):
//!
//! * the driver **terminates** in a valid outcome — no panic, no error,
//!   no hung stage;
//! * **ether is conserved** (Σ balances == minted supply);
//! * every **honest participant** ends no worse than
//!   `initial − deposit − gas` (the protocol's floor — faults may cost
//!   the deposit, never more).
//!
//! Every failure message contains the single `u64` seed that reproduces
//! it: `FaultPlan::from_seed(seed)` rebuilds the entire schedule.
//!
//! The default sweep (`chaos_small_sweep`) keeps tier-1 fast; the
//! 64-seed full sweep is `#[ignore]`d and run in release mode by the CI
//! `chaos` job:
//!
//! ```sh
//! cargo test --release -p sc-core --test chaos -- --ignored --nocapture
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use sc_contracts::challenge::{security_deposit, stake};
use sc_contracts::BetSecrets;
use sc_core::{
    check_conservation, check_honest_floor, check_state_commitments, BettingGame, ChallengeGame,
    CrashPoint, FaultPlan, GameConfig, Participant, Strategy, SubmitStrategy, WatchStrategy,
    XorShift64,
};
use sc_primitives::{ether, gwei, U256};

/// Base of the pinned seed schedule. Seed i is the i-th draw of an
/// [`XorShift64`] stream started here, so the CI sweep is reproducible
/// across machines and runs.
const CHAOS_BASE_SEED: u64 = 0x5EED_C0FF_EE15_600D;

/// Seeds in CI's pinned 64-seed sweep.
const FULL_SWEEP: usize = 64;

/// Seeds in the default (tier-1) sweep.
const QUICK_SWEEP: usize = 6;

fn chaos_seeds(n: usize) -> Vec<u64> {
    let mut rng = XorShift64::new(CHAOS_BASE_SEED);
    (0..n).map(|_| rng.next_u64()).collect()
}

fn secrets_bob_wins() -> BetSecrets {
    let mut s = BetSecrets {
        secret_a: U256::from_u64(41),
        secret_b: U256::from_u64(42),
        weight: 16,
    };
    while !s.winner_is_bob() {
        s.secret_a = s.secret_a.wrapping_add(U256::ONE);
    }
    s
}

/// Runs `f`; on panic, re-panics with the reproducing seed in the
/// message so one `u64` is all a debugging session needs.
fn with_seed<T>(seed: u64, what: &str, f: impl FnOnce() -> T) -> T {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => v,
        Err(cause) => {
            let msg = cause
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| cause.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic");
            panic!("chaos failure in {what} (reproduce with seed {seed:#018x}): {msg}");
        }
    }
}

const BETTING_CELLS: [(Strategy, Strategy); 6] = [
    (Strategy::Honest, Strategy::Honest),
    (Strategy::SilentLoser, Strategy::Honest),
    (Strategy::ForgingLoser, Strategy::Honest),
    (Strategy::Honest, Strategy::NoShow),
    (Strategy::Honest, Strategy::RefusesToSign),
    (Strategy::SignsTampered, Strategy::Honest),
];

const FULL_CHALLENGE_CELLS: [(SubmitStrategy, WatchStrategy, CrashPoint); 18] = {
    use CrashPoint::*;
    use SubmitStrategy::*;
    use WatchStrategy::*;
    [
        (Truthful, Vigilant, None),
        (Truthful, Asleep, None),
        (Truthful, Frivolous, None),
        (False, Vigilant, None),
        (False, Asleep, None),
        (False, Frivolous, None),
        (Truthful, Vigilant, BeforeSubmit),
        (Truthful, Asleep, BeforeSubmit),
        (Truthful, Frivolous, BeforeSubmit),
        (False, Vigilant, BeforeSubmit),
        (False, Asleep, BeforeSubmit),
        (False, Frivolous, BeforeSubmit),
        (Truthful, Vigilant, AfterSubmit),
        (Truthful, Asleep, AfterSubmit),
        (Truthful, Frivolous, AfterSubmit),
        (False, Vigilant, AfterSubmit),
        (False, Asleep, AfterSubmit),
        (False, Frivolous, AfterSubmit),
    ]
};

/// A representative 9-cell slice of the challenge matrix for the quick
/// sweep: every no-crash cell plus one of each crash/watch behaviour.
const QUICK_CHALLENGE_CELLS: [(SubmitStrategy, WatchStrategy, CrashPoint); 9] = {
    use CrashPoint::*;
    use SubmitStrategy::*;
    use WatchStrategy::*;
    [
        (Truthful, Vigilant, None),
        (Truthful, Asleep, None),
        (Truthful, Frivolous, None),
        (False, Vigilant, None),
        (False, Asleep, None),
        (False, Frivolous, None),
        (Truthful, Vigilant, BeforeSubmit),
        (Truthful, Asleep, BeforeSubmit),
        (False, Asleep, AfterSubmit),
    ]
};

/// One betting-game run under the seed's fault schedule, with all
/// invariants checked.
fn betting_cell(seed: u64, alice_strategy: Strategy, bob_strategy: Strategy) {
    let plan = FaultPlan::from_seed(seed);
    let game = BettingGame::with_faults(
        Participant::with_strategy("alice", alice_strategy),
        Participant::with_strategy("bob", bob_strategy),
        GameConfig {
            phase_seconds: 3600,
            secrets: secrets_bob_wins(),
        },
        &plan,
    );
    let alice_addr = game.alice.wallet.address;
    let bob_addr = game.bob.wallet.address;
    // Termination in a valid outcome: `run` returning at all (and Ok)
    // IS the property; a hung stage would spin forever and a panic is
    // caught by the harness.
    let (game, report) = game.run().expect("driver terminates cleanly");

    check_conservation(&game.net).unwrap();
    check_state_commitments(&game.net).unwrap();
    for (who, addr, strategy) in [
        ("alice", alice_addr, alice_strategy),
        ("bob", bob_addr, bob_strategy),
    ] {
        if strategy == Strategy::Honest {
            let gas = U256::from_u64(report.gas_spent_by(addr)).wrapping_mul(gwei(1));
            check_honest_floor(who, ether(1000), game.net.balance_of(addr), ether(1), gas).unwrap();
        }
    }
}

/// One challenge-game run under the seed's fault schedule, with all
/// invariants checked.
fn challenge_cell(seed: u64, submit: SubmitStrategy, watch: WatchStrategy, crash: CrashPoint) {
    let plan = FaultPlan::from_seed(seed);
    let game = ChallengeGame::with_faults(secrets_bob_wins(), 1800, &plan);
    let alice_addr = game.alice.wallet.address;
    let bob_addr = game.bob.wallet.address;
    let (game, report) = game.run_with_crash(submit, watch, crash);

    check_conservation(&game.net).unwrap();
    check_state_commitments(&game.net).unwrap();
    let deposit = stake().wrapping_add(security_deposit());
    // The watcher is honest under every watch behaviour; the
    // representative is honest when submitting truthfully (crashing is
    // a fault, not a deviation).
    let mut honest = vec![("bob", bob_addr)];
    if submit == SubmitStrategy::Truthful {
        honest.push(("alice", alice_addr));
    }
    for (who, addr) in honest {
        let gas = U256::from_u64(report.gas_spent_by(addr)).wrapping_mul(gwei(1));
        check_honest_floor(who, ether(1000), game.net.balance_of(addr), deposit, gas).unwrap();
    }
}

fn sweep(seeds: &[u64], challenge_cells: &[(SubmitStrategy, WatchStrategy, CrashPoint)]) {
    for &seed in seeds {
        for (a, b) in BETTING_CELLS {
            with_seed(seed, &format!("betting ({a:?}, {b:?})"), || {
                betting_cell(seed, a, b)
            });
        }
        for &(submit, watch, crash) in challenge_cells {
            with_seed(
                seed,
                &format!("challenge ({submit:?}, {watch:?}, {crash:?})"),
                || challenge_cell(seed, submit, watch, crash),
            );
        }
        println!("chaos seed {seed:#018x}: all cells hold");
    }
}

#[test]
fn chaos_small_sweep() {
    sweep(&chaos_seeds(QUICK_SWEEP), &QUICK_CHALLENGE_CELLS);
}

/// The CI chaos job's pinned 64-seed sweep over the full matrix. Run:
/// `cargo test --release -p sc-core --test chaos -- --ignored --nocapture`
#[test]
#[ignore = "64-seed full-matrix sweep; run in release by the CI chaos job"]
fn chaos_full_sweep_64_seeds() {
    sweep(&chaos_seeds(FULL_SWEEP), &FULL_CHALLENGE_CELLS);
}

/// Same seed ⇒ bit-identical run: outcomes, every tx, final balances,
/// and the injected-fault log. This is what makes a printed seed a real
/// reproduction and not a suggestion.
#[test]
fn chaos_runs_are_deterministic_per_seed() {
    let seed = chaos_seeds(1)[0];

    let run_betting = || {
        let plan = FaultPlan::from_seed(seed);
        let game = BettingGame::with_faults(
            Participant::with_strategy("alice", Strategy::SilentLoser),
            Participant::with_strategy("bob", Strategy::Honest),
            GameConfig {
                phase_seconds: 3600,
                secrets: secrets_bob_wins(),
            },
            &plan,
        );
        let alice_addr = game.alice.wallet.address;
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run().unwrap();
        (
            report.outcome,
            report
                .txs
                .iter()
                .map(|t| (t.label.clone(), t.gas_used, t.success))
                .collect::<Vec<_>>(),
            game.net.balance_of(alice_addr),
            game.net.balance_of(bob_addr),
            game.net.injected_faults().to_vec(),
            game.whisper.injected_faults().to_vec(),
        )
    };
    assert_eq!(
        run_betting(),
        run_betting(),
        "betting run not deterministic"
    );

    let run_challenge = || {
        let plan = FaultPlan::from_seed(seed);
        let game = ChallengeGame::with_faults(secrets_bob_wins(), 1800, &plan);
        let alice_addr = game.alice.wallet.address;
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run_with_crash(
            SubmitStrategy::False,
            WatchStrategy::Vigilant,
            CrashPoint::None,
        );
        (
            report.outcome,
            report
                .txs
                .iter()
                .map(|t| (t.label.clone(), t.sender, t.gas_used, t.success))
                .collect::<Vec<_>>(),
            game.net.balance_of(alice_addr),
            game.net.balance_of(bob_addr),
            game.net.injected_faults().to_vec(),
        )
    };
    assert_eq!(
        run_challenge(),
        run_challenge(),
        "challenge run not deterministic"
    );
}

/// The failure path itself: a violated invariant must surface the seed.
#[test]
fn chaos_failure_reports_the_seed() {
    let seed = 0xDEAD_BEEF_u64;
    let caught = catch_unwind(AssertUnwindSafe(|| {
        with_seed(seed, "demo", || panic!("boom"));
    }))
    .expect_err("inner panic propagates");
    let msg = caught
        .downcast_ref::<String>()
        .expect("formatted message")
        .clone();
    assert!(
        msg.contains("0x00000000deadbeef"),
        "seed missing from: {msg}"
    );
    assert!(msg.contains("boom"), "cause missing from: {msg}");
}
