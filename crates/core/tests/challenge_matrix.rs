//! The full submit/challenge strategy matrix: every combination of
//! SubmitStrategy × WatchStrategy × CrashPoint terminates in exactly the
//! expected outcome, and ether is conserved in every cell — including
//! the design's accepted residual risk (`LieStood`).

use sc_contracts::challenge::CHALLENGE_DEPLOYED_ADDR_SLOT;
use sc_contracts::BetSecrets;
use sc_core::{
    check_conservation, ChallengeGame, ChallengeOutcome, CrashPoint, SubmitStrategy, WatchStrategy,
};
use sc_primitives::U256;

const WINDOW: u64 = 1800;

fn secrets_bob_wins() -> BetSecrets {
    let mut s = BetSecrets {
        secret_a: U256::from_u64(21),
        secret_b: U256::from_u64(22),
        weight: 16,
    };
    while !s.winner_is_bob() {
        s.secret_a = s.secret_a.wrapping_add(U256::ONE);
    }
    s
}

fn run_cell(submit: SubmitStrategy, watch: WatchStrategy, crash: CrashPoint) -> ChallengeOutcome {
    let game = ChallengeGame::new(secrets_bob_wins(), WINDOW);
    let (game, report) = game.run_with_crash(submit, watch, crash);
    check_conservation(&game.net).unwrap_or_else(|e| {
        panic!("cell ({submit:?}, {watch:?}, {crash:?}): {e}");
    });
    // Every recorded tx has a sender who is one of the two participants.
    for tx in &report.txs {
        assert!(
            tx.sender == game.alice.wallet.address || tx.sender == game.bob.wallet.address,
            "unknown sender in {:?}",
            tx.label
        );
    }
    report.outcome
}

/// Acceptance for the authenticated-state loop: after a disputed game,
/// the `deployedAddr` slot the driver consumed light-client style is
/// provable against the head header's `state_root`, while a forged
/// value or a tampered Merkle path is rejected.
#[test]
fn dispute_winner_slot_proves_against_header_root() {
    let game = ChallengeGame::new(secrets_bob_wins(), WINDOW);
    let (mut game, report) = game.run(SubmitStrategy::False, WatchStrategy::Vigilant);
    assert_eq!(report.outcome, ChallengeOutcome::ResolvedByChallenge);

    let onchain = game.onchain;
    let slot = U256::from_u64(CHALLENGE_DEPLOYED_ADDR_SLOT);
    let trusted = game.net.storage_at(onchain, slot);
    assert_ne!(trusted, U256::ZERO, "challenge() recorded deployedAddr");

    let proof = game.net.prove_storage(onchain, slot);
    let header_root = game.net.head().state_root;
    assert_eq!(proof.root, header_root, "proof anchors to the sealed head");
    assert_eq!(proof.value, trusted);
    proof.verify(header_root).expect("honest witness verifies");

    // A forged winner address cannot satisfy the commitment…
    let mut forged = proof.clone();
    forged.value = forged.value.wrapping_add(U256::ONE);
    assert!(forged.verify(header_root).is_err());
    // …and neither can a tampered Merkle path.
    let mut cut = proof.clone();
    cut.storage_proof.last_mut().unwrap()[0] ^= 0x01;
    assert!(cut.verify(header_root).is_err());
}

#[test]
fn no_crash_matrix() {
    use ChallengeOutcome::*;
    use SubmitStrategy::*;
    use WatchStrategy::*;
    let expectations = [
        (Truthful, Vigilant, FinalizedUnchallenged),
        (Truthful, Asleep, FinalizedUnchallenged),
        (Truthful, Frivolous, ResolvedByChallenge),
        (False, Vigilant, ResolvedByChallenge),
        // The paper's residual risk: an unwatched lie stands.
        (False, Asleep, LieStood),
        (False, Frivolous, ResolvedByChallenge),
    ];
    for (submit, watch, expected) in expectations {
        let got = run_cell(submit, watch, CrashPoint::None);
        assert_eq!(got, expected, "cell ({submit:?}, {watch:?})");
    }
}

#[test]
fn crash_before_submit_matrix() {
    use ChallengeOutcome::*;
    use SubmitStrategy::*;
    use WatchStrategy::*;
    // The submit strategy is irrelevant — the representative crashed
    // before acting on it. What matters is whether the counterparty
    // escalates (forced resolution) or merely reclaims.
    let expectations = [
        (Truthful, Vigilant, ResolvedByChallenge),
        (Truthful, Asleep, ReclaimedStale),
        (Truthful, Frivolous, ResolvedByChallenge),
        (False, Vigilant, ResolvedByChallenge),
        (False, Asleep, ReclaimedStale),
        (False, Frivolous, ResolvedByChallenge),
    ];
    for (submit, watch, expected) in expectations {
        let got = run_cell(submit, watch, CrashPoint::BeforeSubmit);
        assert_eq!(got, expected, "cell ({submit:?}, {watch:?}, BeforeSubmit)");
    }
}

#[test]
fn crash_after_submit_matrix() {
    use ChallengeOutcome::*;
    use SubmitStrategy::*;
    use WatchStrategy::*;
    // The submission is on-chain before the crash, so the matrix looks
    // like the no-crash one — except the watcher must finalize.
    let expectations = [
        (Truthful, Vigilant, FinalizedUnchallenged),
        (Truthful, Asleep, FinalizedUnchallenged),
        (Truthful, Frivolous, ResolvedByChallenge),
        (False, Vigilant, ResolvedByChallenge),
        (False, Asleep, LieStood),
        (False, Frivolous, ResolvedByChallenge),
    ];
    for (submit, watch, expected) in expectations {
        let got = run_cell(submit, watch, CrashPoint::AfterSubmit);
        assert_eq!(got, expected, "cell ({submit:?}, {watch:?}, AfterSubmit)");
    }
}

#[test]
fn lie_stood_cell_conserves_ether_and_pays_the_liar() {
    // The LieStood cell deserves its own close look: the lie profits,
    // the sleeping honest winner eats the stake — but no wei is created
    // or destroyed, and the honest floor (deposit + gas) still bounds
    // the loss.
    let game = ChallengeGame::new(secrets_bob_wins(), WINDOW);
    let alice_addr = game.alice.wallet.address;
    let bob_addr = game.bob.wallet.address;
    let (game, report) = game.run(SubmitStrategy::False, WatchStrategy::Asleep);
    assert_eq!(report.outcome, ChallengeOutcome::LieStood);
    check_conservation(&game.net).unwrap();
    // The liar pocketed Bob's stake…
    assert!(game.net.balance_of(alice_addr) > sc_primitives::ether(1000));
    // …and Bob lost at most stake + security deposit (he spent gas only
    // on his own deposit).
    let floor = sc_primitives::ether(1000)
        .wrapping_sub(sc_contracts::challenge::stake())
        .wrapping_sub(sc_contracts::challenge::security_deposit());
    let bob_final = game.net.balance_of(bob_addr);
    assert!(bob_final >= floor.wrapping_sub(sc_primitives::ether(1) / U256::from_u64(100)));
}
