//! Light-client session suite: the same protocol sessions, run without
//! a full node.
//!
//! The acceptance property of the light-session refactor is
//! **observational equivalence**: a mixed betting / challenge /
//! settle-later scheduler run in which *every* session lives on a
//! [`LightPort`] — headers over gossip, every read witness-verified
//! against the head `state_root`, inclusion confirmed against
//! `receipts_root` — must produce session reports **bit-identical** to
//! the same specs on full-node ports under the same seed, on a quiet
//! network and under pinned chaos seeds alike. Statelessness costs
//! witness bytes, never behaviour.
//!
//! On top of equivalence the suite checks the reorg contract (a forced
//! partition heals through fork choice on the header clients and the
//! sessions re-prove/resubmit across it), per-seed determinism of the
//! light mode itself, and that the witness counters actually move.

use sc_chain::PoolConfig;
use sc_core::{
    check_conservation, check_state_commitments, BettingSpec, ChallengeSpec, NetworkScheduler,
    SessionReport, SessionSpec, SettleLaterSpec, Strategy, SubmitStrategy, WatchStrategy,
};

const NODES: usize = 3;

/// Mixed session load: an honest bet, a byzantine bet, a truthful and a
/// false-submission challenge, and a settle-later channel — two slots
/// carrying their own seeded chain/whisper fault schedules.
fn mixed_specs(seed: u64) -> Vec<SessionSpec> {
    vec![
        SessionSpec::Betting(BettingSpec::default()),
        SessionSpec::Betting(BettingSpec {
            alice: Strategy::SilentLoser,
            fault_seed: Some(seed ^ 0x1),
            start_delay: 600,
            ..BettingSpec::default()
        }),
        SessionSpec::Challenge(ChallengeSpec::default()),
        SessionSpec::Challenge(ChallengeSpec {
            submit: SubmitStrategy::False,
            watch: WatchStrategy::Vigilant,
            fault_seed: Some(seed ^ 0x2),
            start_delay: 1200,
            ..ChallengeSpec::default()
        }),
        SessionSpec::SettleLater(SettleLaterSpec {
            start_delay: 300,
            ..SettleLaterSpec::default()
        }),
    ]
}

fn assert_all_settled(reports: &[SessionReport]) {
    for r in reports {
        assert!(
            r.outcome.is_some(),
            "session {} ({}) failed: {:?}",
            r.id,
            r.kind,
            r.error
        );
    }
}

/// Full run of the mixed load in one mode; returns the reports.
fn run_mode(seed: Option<u64>, light: bool) -> Vec<SessionReport> {
    let specs = mixed_specs(seed.unwrap_or(0));
    let mut sched = if light {
        NetworkScheduler::new_light(specs, NODES, PoolConfig::default(), seed)
    } else {
        NetworkScheduler::new(specs, NODES, PoolConfig::default(), seed)
    };
    let reports = sched.run();
    let net = sched.network();
    assert!(net.converged(), "heads diverged: {:?}", net.heads());
    for i in 0..net.len() {
        check_conservation(net.node(i)).unwrap();
        check_state_commitments(net.node(i)).unwrap();
    }
    if light {
        let stats = sched.light_stats();
        assert!(stats.proofs_verified > 0, "no witness was ever verified");
        assert!(stats.receipts_verified > 0, "no inclusion was ever proven");
        assert!(stats.witness_bytes > 0);
    }
    reports
}

#[test]
fn light_run_is_bit_identical_to_full_node_run_on_a_quiet_network() {
    let full = run_mode(None, false);
    let light = run_mode(None, true);
    assert_all_settled(&full);
    assert_eq!(full, light, "light reports diverged from full-node reports");
}

#[test]
fn light_run_is_bit_identical_to_full_node_run_under_chaos_seeds() {
    // Chaos seeds draw link faults *and* per-session chain, whisper and
    // light faults. Light faults are liveness-only by construction, so
    // even with them firing the reports must not move.
    for seed in [0x5EED_C0FF_EE15_600Du64, 0xD157_EDBE_EF00] {
        let full = run_mode(Some(seed), false);
        let light = run_mode(Some(seed), true);
        assert_eq!(
            full, light,
            "light reports diverged from full-node reports under seed {seed:#x}"
        );
    }
}

#[test]
fn light_runs_are_bit_identical_per_seed() {
    let a = run_mode(Some(0x11A5_7EED), true);
    let b = run_mode(Some(0x11A5_7EED), true);
    assert_eq!(a, b);
}

#[test]
fn light_sessions_survive_a_forced_partition_and_reorg() {
    // A partition forced before the run forks the chain under the
    // sessions; healing reorgs both the full nodes and — through the
    // header push — every light client. Sessions must re-prove and
    // resubmit across the reorg and still settle cleanly.
    let mut sched = NetworkScheduler::new_light(mixed_specs(0), 4, PoolConfig::default(), None);
    sched.network_mut().force_partition(vec![0, 1], 6);
    let reports = sched.run();
    assert_all_settled(&reports);
    let net = sched.network();
    assert!(net.converged(), "heads diverged: {:?}", net.heads());
    assert!(net.stats().reorgs > 0, "partition healed without a reorg");
    for i in 0..net.len() {
        check_conservation(net.node(i)).unwrap();
        check_state_commitments(net.node(i)).unwrap();
    }
    // The reorged run must still be behaviourally equal to a full-node
    // run under the identical forced partition.
    let mut full = NetworkScheduler::new(mixed_specs(0), 4, PoolConfig::default(), None);
    full.network_mut().force_partition(vec![0, 1], 6);
    let full_reports = full.run();
    assert_eq!(full_reports, reports);
}

#[test]
fn witness_traffic_is_attributed_per_session() {
    let mut sched = NetworkScheduler::new_light(mixed_specs(0), NODES, PoolConfig::default(), None);
    let reports = sched.run();
    assert_all_settled(&reports);
    let per_session = sched.light_stats_by_session();
    assert_eq!(per_session.len(), reports.len());
    // Every session did at least some verified reading or receipt
    // confirmation — nobody rode for free on another slot's client.
    for (i, s) in per_session.iter().enumerate() {
        assert!(
            s.proofs_verified + s.receipts_verified > 0,
            "session {i} verified nothing"
        );
        assert!(s.witness_bytes > 0, "session {i} downloaded no witnesses");
    }
    let total = sched.light_stats();
    assert_eq!(
        total.witness_bytes,
        per_session.iter().map(|s| s.witness_bytes).sum::<u64>()
    );
}
