//! Settle-later session suite: the confidential channel driven end to
//! end by the session engine — deposits committed under Pedersen
//! commitments, the outcome co-signed off-chain as a voucher, and the
//! chain touched again only when somebody submits it.
//!
//! Properties:
//!
//! * **Happy path** — deploy → fund → committed deposits → activate →
//!   off-chain voucher exchange → delayed settle → both withdrawals,
//!   with the expected transaction trace.
//! * **Crash resilience** — a party that goes dark after co-signing
//!   loses nothing: the counterparty submits the same voucher alone.
//! * **Replay safety** — both parties submitting the same voucher
//!   settle exactly once; the second submission reverts on the burned
//!   nullifier.
//! * **Timeout degradation** — a session that never completes the
//!   exchange reclaims both stakes after the deadline.
//! * **Composition** — settle-later sessions interleave with betting
//!   and challenge sessions on one shared chain (outbox and pooled),
//!   and run over the multi-node network, conserving ether everywhere
//!   and staying bit-identical per seed.

use sc_chain::PoolConfig;
use sc_core::{
    check_conservation, check_state_commitments, BettingSpec, ChallengeSpec, NetworkScheduler,
    SessionReport, SessionScheduler, SessionSpec, SettleLaterCrash, SettleLaterSpec,
};

fn settle_later(tweak: impl FnOnce(&mut SettleLaterSpec)) -> SessionSpec {
    let mut spec = SettleLaterSpec::default();
    tweak(&mut spec);
    SessionSpec::SettleLater(spec)
}

fn run_single(spec: SessionSpec) -> (SessionReport, SessionScheduler) {
    let mut sched = SessionScheduler::new(vec![spec]);
    let mut reports = sched.run();
    (reports.remove(0), sched)
}

fn labels(r: &SessionReport) -> Vec<&str> {
    r.txs.iter().map(|(l, _)| l.as_str()).collect()
}

#[test]
fn happy_path_settles_by_voucher_and_withdraws() {
    let (r, sched) = run_single(settle_later(|_| {}));

    assert_eq!(r.error, None, "session failed: {:?}", r.error);
    assert_eq!(r.outcome, Some("settled"));
    assert_eq!(r.kind, "settle-later");
    assert_eq!(
        labels(&r),
        vec![
            "deploy onConfidentialDeposit",
            "deposit stake",
            "deposit stake",
            "depositCommitted",
            "depositCommitted",
            "activate",
            "settle",
            "withdraw",
            "withdraw",
        ]
    );
    assert!(r.txs.iter().all(|(_, ok)| *ok), "trace: {:?}", r.txs);
    // The voucher travelled off-chain: at least one exchange round of
    // two posts, and no outcome data in any on-chain submission until
    // the settle itself.
    assert!(r.messages_posted >= 2);
    let staged: u64 = r.stage_gas.iter().sum();
    assert_eq!(staged, r.total_gas, "stage gas must sum to total");
    assert!(r.stage_gas[0] > 0 && r.stage_gas[1] > 0 && r.stage_gas[2] > 0);
    check_conservation(sched.net()).unwrap();
    check_state_commitments(sched.net()).unwrap();
}

#[test]
fn crashed_cosigner_is_settled_by_the_counterparty() {
    let (r, sched) = run_single(settle_later(|s| {
        s.crash = SettleLaterCrash::AAfterCosign;
    }));

    assert_eq!(r.error, None, "session failed: {:?}", r.error);
    assert_eq!(r.outcome, Some("settled"));
    // B alone submits and withdraws; A's share stays claimable in the
    // contract, so exactly one settle and one withdraw appear.
    let trace = labels(&r);
    assert_eq!(trace.iter().filter(|l| **l == "settle").count(), 1);
    assert_eq!(trace.iter().filter(|l| **l == "withdraw").count(), 1);
    assert!(r.txs.iter().all(|(_, ok)| *ok), "trace: {:?}", r.txs);
    check_conservation(sched.net()).unwrap();
}

#[test]
fn double_submission_settles_exactly_once() {
    let (r, sched) = run_single(settle_later(|s| {
        s.double_submit = true;
    }));

    assert_eq!(r.error, None, "session failed: {:?}", r.error);
    assert_eq!(r.outcome, Some("settled-double-submit"));
    let settles: Vec<bool> = r
        .txs
        .iter()
        .filter(|(l, _)| l == "settle")
        .map(|(_, ok)| *ok)
        .collect();
    assert_eq!(
        settles,
        vec![true, false],
        "first submission wins, the replay must revert on the nullifier"
    );
    // Both parties still withdraw their voucher outputs.
    let trace = labels(&r);
    assert_eq!(trace.iter().filter(|l| **l == "withdraw").count(), 2);
    check_conservation(sched.net()).unwrap();
}

#[test]
fn no_voucher_degrades_to_reclaim_after_deadline() {
    let (r, sched) = run_single(settle_later(|s| {
        s.exchange_voucher = false;
        s.deadline_secs = 1800;
    }));

    assert_eq!(r.error, None, "session failed: {:?}", r.error);
    assert_eq!(r.outcome, Some("reclaimed-unsettled"));
    let trace = labels(&r);
    assert_eq!(trace.iter().filter(|l| **l == "settle").count(), 0);
    assert_eq!(trace.iter().filter(|l| **l == "reclaim").count(), 2);
    assert!(r.txs.iter().all(|(_, ok)| *ok), "trace: {:?}", r.txs);
    check_conservation(sched.net()).unwrap();
}

/// Settle-later sessions interleaved with betting and challenge games
/// on one shared chain, in both mining modes: everyone terminates
/// validly and the chain conserves ether.
#[test]
fn composes_with_other_session_kinds_on_a_shared_chain() {
    let specs = || {
        vec![
            SessionSpec::Betting(BettingSpec::default()),
            settle_later(|s| s.start_delay = 120),
            SessionSpec::Challenge(ChallengeSpec::default()),
            settle_later(|s| {
                s.double_submit = true;
                s.fault_seed = Some(0xC0FF_EE00_u64);
                s.start_delay = 300;
            }),
        ]
    };

    for pooled in [false, true] {
        let mut sched = if pooled {
            SessionScheduler::new_pooled(specs(), PoolConfig::default())
        } else {
            SessionScheduler::new(specs())
        };
        let reports = sched.run();
        for r in &reports {
            assert!(
                r.error.is_none() && r.outcome.is_some(),
                "session {} ({}) failed (pooled = {pooled}): {:?}",
                r.id,
                r.kind,
                r.error
            );
        }
        assert_eq!(reports[1].outcome, Some("settled"));
        assert_eq!(reports[3].outcome, Some("settled-double-submit"));
        check_conservation(sched.net()).unwrap();
        check_state_commitments(sched.net()).unwrap();
    }
}

/// Whisper faults on the voucher exchange delay but never corrupt the
/// settlement (signatures that fail recovery are ignored; re-posts get
/// through), and seeded runs stay bit-identical.
#[test]
fn faulted_runs_settle_and_are_deterministic() {
    let specs = || {
        (0..4u64)
            .map(|i| {
                settle_later(|s| {
                    s.fault_seed = Some(0x5E77_1E00 + i);
                    s.start_delay = i * 90;
                    s.double_submit = i % 2 == 1;
                })
            })
            .collect::<Vec<_>>()
    };

    let run = || {
        let mut sched = SessionScheduler::new(specs());
        let reports = sched.run();
        for r in &reports {
            assert!(
                r.error.is_none() && r.outcome.is_some(),
                "session {} failed: {:?}",
                r.id,
                r.error
            );
        }
        check_conservation(sched.net()).unwrap();
        let fingerprint: Vec<String> = reports
            .iter()
            .map(|r| {
                format!(
                    "{}:{:?}:{:?}:{:?}",
                    r.id, r.outcome, r.txs, r.messages_posted
                )
            })
            .collect();
        (fingerprint, sched.net().head().hash)
    };
    assert_eq!(
        run(),
        run(),
        "seeded settle-later runs must be bit-identical"
    );
}

/// Settle-later over the 4-node gossiping network, mixed with the other
/// session kinds: every session terminates, every node converges and
/// conserves ether. This is the session-engine half of the cross-node
/// story; the raw double-submit race across a partition lives in the
/// `network_chaos` suite.
#[test]
fn runs_over_the_multi_node_network() {
    let specs = vec![
        settle_later(|_| {}),
        SessionSpec::Betting(BettingSpec {
            start_delay: 240,
            ..BettingSpec::default()
        }),
        settle_later(|s| {
            s.crash = SettleLaterCrash::AAfterCosign;
            s.fault_seed = Some(0xD15C_0001);
            s.start_delay = 480;
        }),
        settle_later(|s| {
            s.double_submit = true;
            s.start_delay = 720;
        }),
    ];

    let mut sched = NetworkScheduler::new(specs, 4, PoolConfig::default(), Some(0xD15C_0002));
    let reports = sched.run();
    for r in &reports {
        assert!(
            r.error.is_none() && r.outcome.is_some(),
            "session {} ({}) failed: {:?}",
            r.id,
            r.kind,
            r.error
        );
    }
    assert_eq!(reports[0].outcome, Some("settled"));
    assert_eq!(reports[2].outcome, Some("settled"));
    assert_eq!(reports[3].outcome, Some("settled-double-submit"));

    let net = sched.network();
    assert!(net.converged(), "heads: {:?}", net.heads());
    for i in 0..net.len() {
        check_conservation(net.node(i)).unwrap_or_else(|e| panic!("conservation on node {i}: {e}"));
        check_state_commitments(net.node(i))
            .unwrap_or_else(|e| panic!("commitments on node {i}: {e}"));
    }
}
