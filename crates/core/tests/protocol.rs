//! End-to-end protocol tests: the full four-stage game on the chain
//! simulator, honest and Byzantine.

use sc_contracts::BetSecrets;
use sc_core::{BettingGame, GameConfig, Outcome, Participant, Stage, Strategy};
use sc_primitives::{ether, U256};

fn game_with(alice_strategy: Strategy, bob_strategy: Strategy, secrets: BetSecrets) -> BettingGame {
    BettingGame::new(
        Participant::with_strategy("alice", alice_strategy),
        Participant::with_strategy("bob", bob_strategy),
        GameConfig {
            phase_seconds: 3600,
            secrets,
        },
    )
}

/// Secrets where Bob wins (parity 1 after mixing).
fn bob_wins_secrets() -> BetSecrets {
    let mut s = BetSecrets {
        secret_a: U256::from_u64(7),
        secret_b: U256::from_u64(8),
        weight: 16,
    };
    // Search a nearby secret so the mixed parity favours Bob.
    while !s.winner_is_bob() {
        s.secret_a = s.secret_a.wrapping_add(U256::ONE);
    }
    s
}

/// Secrets where Alice wins.
fn alice_wins_secrets() -> BetSecrets {
    let mut s = BetSecrets {
        secret_a: U256::from_u64(100),
        secret_b: U256::from_u64(200),
        weight: 16,
    };
    while s.winner_is_bob() {
        s.secret_a = s.secret_a.wrapping_add(U256::ONE);
    }
    s
}

#[test]
fn honest_game_settles_without_revealing_anything() {
    let secrets = bob_wins_secrets();
    let game = game_with(Strategy::Honest, Strategy::Honest, secrets);
    let bob_addr = game.bob.wallet.address;
    let (game, report) = game.run().unwrap();

    assert_eq!(report.outcome, Outcome::SettledHonestly);
    assert!(!report.dispute);
    assert!(report.winner_is_bob);
    // Privacy: zero bytes of the off-chain contract touched the chain.
    assert_eq!(report.offchain_bytes_revealed, 0);
    // The dispute machinery never ran.
    assert_eq!(report.stage_gas(Stage::DisputeResolve), 0);
    // Bob ended up richer by ~1 ether (minus his own gas).
    let bob_balance = game.net.balance_of(bob_addr);
    assert!(bob_balance > ether(1000));
    // The on-chain contract is drained.
    assert_eq!(game.net.balance_of(game.onchain_addr.unwrap()), U256::ZERO);
    // Off-chain communication happened (two signatures).
    assert_eq!(report.offchain_messages, 2);
}

#[test]
fn dispute_path_enforces_true_result() {
    // Bob wins; Alice (the loser) goes silent.
    let secrets = bob_wins_secrets();
    let game = game_with(Strategy::SilentLoser, Strategy::Honest, secrets);
    let alice_addr = game.alice.wallet.address;
    let bob_addr = game.bob.wallet.address;
    let (game, report) = game.run().unwrap();

    assert_eq!(report.outcome, Outcome::SettledByDispute);
    assert!(report.dispute);
    // The true result (Bob wins) was enforced by the miners.
    let bob_balance = game.net.balance_of(bob_addr);
    assert!(
        bob_balance > ether(1000),
        "winner must receive both deposits despite the silent loser"
    );
    let alice_balance = game.net.balance_of(alice_addr);
    assert!(alice_balance < ether(1000), "loser lost the deposit");
    // Privacy cost of the dispute: the entire bytecode is now public.
    assert_eq!(report.offchain_bytes_revealed, game.offchain_bytecode.len());
    assert!(report.offchain_bytes_revealed > 500);
    // Both extra functions ran and have recorded gas.
    assert!(report.gas_of("deployVerifiedInstance").is_some());
    assert!(report.gas_of("returnDisputeResolution").is_some());
}

#[test]
fn dispute_resolves_for_alice_as_winner_too() {
    let secrets = alice_wins_secrets();
    // Alice honest winner; Bob silent loser.
    let game = game_with(Strategy::Honest, Strategy::SilentLoser, secrets);
    let alice_addr = game.alice.wallet.address;
    let (game, report) = game.run().unwrap();
    assert_eq!(report.outcome, Outcome::SettledByDispute);
    assert!(!report.winner_is_bob);
    assert!(game.net.balance_of(alice_addr) > ether(1000));
}

#[test]
fn forged_bytecode_is_rejected_on_chain() {
    let secrets = bob_wins_secrets();
    let game = game_with(Strategy::ForgingLoser, Strategy::Honest, secrets);
    let bob_addr = game.bob.wallet.address;
    let (game, report) = game.run().unwrap();

    assert_eq!(report.outcome, Outcome::SettledByDispute);
    // The forged submission is recorded as a failed tx.
    let forged = report
        .txs
        .iter()
        .find(|t| t.label == "deployVerifiedInstance (forged)")
        .expect("forged attempt recorded");
    assert!(!forged.success);
    assert!(
        forged.gas_used > 0,
        "the forger pays for the failed attempt"
    );
    // Justice still prevails.
    assert!(game.net.balance_of(bob_addr) > ether(1000));
}

#[test]
fn tampered_signature_aborts_before_any_deposit() {
    let secrets = bob_wins_secrets();
    let game = game_with(Strategy::SignsTampered, Strategy::Honest, secrets);
    let alice_addr = game.alice.wallet.address;
    let bob_addr = game.bob.wallet.address;
    let (game, report) = game.run().unwrap();

    assert_eq!(report.outcome, Outcome::AbortedAtSigning);
    // No deposits ever reached the contract.
    assert_eq!(game.net.balance_of(game.onchain_addr.unwrap()), U256::ZERO);
    // Nobody lost more than deploy gas.
    assert!(game.net.balance_of(bob_addr) == ether(1000));
    assert!(
        game.net.balance_of(alice_addr) < ether(1000),
        "deployer paid gas"
    );
}

#[test]
fn refusing_to_sign_aborts() {
    let secrets = bob_wins_secrets();
    let game = game_with(Strategy::Honest, Strategy::RefusesToSign, secrets);
    let alice_addr = game.alice.wallet.address;
    let (game, report) = game.run().unwrap();
    assert_eq!(report.outcome, Outcome::AbortedAtSigning);
    // Alice re-posts every signing round until the deadline; Bob never
    // posts anything.
    assert!(report.offchain_messages >= 1);
    let history = game.whisper.history(sc_core::protocol::SIGNATURE_TOPIC);
    assert!(!history.is_empty());
    assert!(
        history.iter().all(|env| env.from == alice_addr),
        "only Alice ever posted a signature"
    );
}

#[test]
fn no_show_leads_to_refund() {
    let secrets = bob_wins_secrets();
    let game = game_with(Strategy::Honest, Strategy::NoShow, secrets);
    let alice_addr = game.alice.wallet.address;
    let (game, report) = game.run().unwrap();
    assert_eq!(report.outcome, Outcome::Refunded);
    // Alice got her ether back (minus gas).
    let spent = ether(1000).wrapping_sub(game.net.balance_of(alice_addr));
    assert!(
        spent < ether(1) / U256::from_u64(100),
        "alice only lost gas, not the deposit: spent {spent}"
    );
    assert_eq!(game.net.balance_of(game.onchain_addr.unwrap()), U256::ZERO);
}

#[test]
fn table2_gas_shape_holds() {
    // The paper's Table II: deployVerifiedInstance = 225082 + reveal();
    // returnDisputeResolution = 37745. Absolute values differ (MiniSol is
    // not solc) but the structure must hold: deploy dominated by code
    // deposit + 2 ecrecover + CREATE, return an order of magnitude less.
    let secrets = bob_wins_secrets();
    let game = game_with(Strategy::SilentLoser, Strategy::Honest, secrets);
    let (game, report) = game.run().unwrap();
    let deploy_gas = report.gas_of("deployVerifiedInstance").unwrap();
    let return_gas = report.gas_of("returnDisputeResolution").unwrap();
    // Same order as the paper: a couple hundred k vs a few tens of k.
    assert!(
        (100_000..600_000).contains(&deploy_gas),
        "deployVerifiedInstance gas {deploy_gas}"
    );
    assert!(
        (20_000..120_000).contains(&return_gas),
        "returnDisputeResolution gas {return_gas}"
    );
    assert!(
        deploy_gas > 3 * return_gas,
        "deploy ({deploy_gas}) must dominate return ({return_gas})"
    );
    let _ = game;
}

#[test]
fn honest_path_is_much_cheaper_than_dispute_path() {
    let secrets = bob_wins_secrets();
    let (_g1, honest) = game_with(Strategy::Honest, Strategy::Honest, secrets)
        .run()
        .unwrap();
    let (_g2, dispute) = game_with(Strategy::SilentLoser, Strategy::Honest, secrets)
        .run()
        .unwrap();
    let honest_settle = honest.stage_gas(Stage::SubmitChallenge);
    let dispute_total =
        dispute.stage_gas(Stage::SubmitChallenge) + dispute.stage_gas(Stage::DisputeResolve);
    assert!(
        dispute_total > honest_settle + 150_000,
        "dispute {dispute_total} vs honest {honest_settle}"
    );
}

#[test]
fn dispute_cost_scales_with_reveal_weight() {
    let mut gas_at_weight = Vec::new();
    for weight in [0u64, 2000] {
        let mut secrets = BetSecrets {
            secret_a: U256::from_u64(3),
            secret_b: U256::from_u64(4),
            weight,
        };
        while !secrets.winner_is_bob() {
            secrets.secret_a = secrets.secret_a.wrapping_add(U256::ONE);
        }
        let game = game_with(Strategy::SilentLoser, Strategy::Honest, secrets);
        let (_g, report) = game.run().unwrap();
        gas_at_weight.push(report.gas_of("returnDisputeResolution").unwrap());
    }
    // Paper: "deployVerifiedInstance = 225082 + reveal()" — in our pair,
    // reveal() executes inside returnDisputeResolution, so that is where
    // the weight lands.
    assert!(
        gas_at_weight[1] > gas_at_weight[0] + 50_000,
        "reveal weight must surface in the dispute cost: {gas_at_weight:?}"
    );
}

#[test]
fn verified_instance_is_linked_to_its_creator() {
    // After a dispute, the instance recorded in deployedAddr must be a
    // contract created BY the on-chain contract (the unique-link
    // authorization of Algorithm 5/6).
    let secrets = bob_wins_secrets();
    let game = game_with(Strategy::SilentLoser, Strategy::Honest, secrets);
    let (game, _report) = game.run().unwrap();
    let onchain = game.onchain_addr.unwrap();
    let instance = sc_primitives::Address::from_u256(
        game.net
            .storage_at(onchain, U256::from_u64(sc_contracts::DEPLOYED_ADDR_SLOT)),
    );
    assert!(!instance.is_zero());
    // CREATE address derivation: keccak(rlp([onchain, nonce=1])).
    assert_eq!(instance, sc_evm::contract_address(onchain, 1));
    // And the instance's code is the off-chain contract's runtime.
    assert!(!game.net.code_at(instance).is_empty());
}

#[test]
fn outsider_cannot_enforce_resolution_directly() {
    // An attacker calling enforceDisputeResolution directly (not via the
    // verified instance) must be rejected by deployedAddrOnly.
    let secrets = bob_wins_secrets();
    let game = game_with(Strategy::Honest, Strategy::Honest, secrets);
    let (mut game, _report) = game.run().unwrap();
    let onchain = game.onchain_addr.unwrap();
    let mallory = game.net.funded_wallet("mallory", ether(10));
    let data = game
        .onchain_abi
        .compiled
        .calldata(
            "enforceDisputeResolution",
            &[sc_primitives::abi::Value::Bool(true)],
        )
        .unwrap();
    let r = game
        .net
        .execute(&mallory, onchain, U256::ZERO, data, 500_000)
        .unwrap();
    assert!(!r.success, "deployedAddrOnly must reject outsiders");
}

#[test]
fn full_tx_ledger_is_recorded() {
    let secrets = bob_wins_secrets();
    let game = game_with(Strategy::SilentLoser, Strategy::Honest, secrets);
    let (_g, report) = game.run().unwrap();
    let labels: Vec<&str> = report.txs.iter().map(|t| t.label.as_str()).collect();
    assert_eq!(
        labels,
        vec![
            "deploy onChain",
            "deposit",
            "deposit",
            "deployVerifiedInstance",
            "returnDisputeResolution"
        ]
    );
    assert!(report.total_gas() > 0);
    assert_eq!(
        report.total_gas(),
        report.stage_gas(Stage::DeploySign)
            + report.stage_gas(Stage::SubmitChallenge)
            + report.stage_gas(Stage::DisputeResolve)
    );
}

#[test]
fn gas_profile_of_deploy_verified_instance() {
    // Decompose the dispute deploy per-opcode with the EVM profiler: the
    // cost drivers must be CREATE (base + code deposit), the child
    // constructor's SSTOREs, the two STATICCALLs to ecrecover, and
    // KECCAK256. A completed game supplies the signed copy; the deploy is
    // then profiled against a freshly rebuilt pre-dispute state.
    let secrets = bob_wins_secrets();
    let game = game_with(Strategy::SilentLoser, Strategy::Honest, secrets);
    let (game, _report) = game.run().unwrap();

    let mut net = sc_chain::Testnet::new();
    let alice = net.funded_wallet("alice", ether(1000));
    let bob = net.funded_wallet("bob", ether(1000));
    let tl = sc_contracts::Timeline::starting_at(net.now(), 3600);
    let on = sc_contracts::OnChainContract::new();
    let onchain = net
        .deploy(
            &alice,
            on.initcode(alice.address, bob.address, tl),
            U256::ZERO,
            5_000_000,
        )
        .unwrap()
        .contract_address
        .unwrap();
    for w in [&alice, &bob] {
        assert!(
            net.execute(w, onchain, ether(1), on.deposit(), 300_000)
                .unwrap()
                .success
        );
    }
    net.advance_time(4 * 3600);

    let copy = game.signed_copy();
    let data =
        on.deploy_verified_instance(&copy.bytecode, &copy.signatures[0], &copy.signatures[1]);
    let (profile, exec_gas) = net.profile_call(bob.address, onchain, U256::ZERO, data, 7_000_000);

    assert_eq!(profile.total_gas(), exec_gas, "profiler is exhaustive");
    // CREATE's exclusive cost = 32,000 base + the 200/byte code deposit.
    let create_gas = profile.gas_of(sc_evm::Op::Create);
    assert!(
        create_gas > 80_000,
        "CREATE {create_gas} carries base + code deposit"
    );
    // The constructor's storage writes run in the child frame and are
    // tallied at SSTORE (participants, secrets, weight → ≥5 slots).
    assert!(profile.count_of(sc_evm::Op::SStore) >= 5);
    // Exactly two ecrecover STATICCALLs.
    assert_eq!(profile.count_of(sc_evm::Op::StaticCall), 2);
    assert!(profile.gas_of(sc_evm::Op::StaticCall) >= 2 * 3_000);
    // keccak over the whole bytecode ran once in the verification.
    assert!(profile.count_of(sc_evm::Op::Keccak256) >= 1);
    let _ = game;
}
