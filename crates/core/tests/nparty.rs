//! End-to-end n-party verification: the generated n-signer
//! `deployVerifiedInstance` contract enforces all-or-nothing signature
//! checks and the CREATE-link authorization for any participant count.

use sc_chain::{Testnet, Wallet};
use sc_contracts::gen::{
    nparty_ctor_args, nparty_deploy_args, nparty_deployed_addr_slot, nparty_onchain_source,
};
use sc_core::signedcopy::sign_bytecode;
use sc_lang::compile;
use sc_primitives::{ether, Address, U256};

struct NParty {
    net: Testnet,
    wallets: Vec<Wallet>,
    verifier: sc_lang::CompiledContract,
    onchain: Address,
    payload: Vec<u8>,
}

fn setup(n: usize) -> NParty {
    let mut net = Testnet::new();
    let wallets: Vec<Wallet> = (0..n)
        .map(|i| net.funded_wallet(&format!("party{i}"), ether(100)))
        .collect();
    let addrs: Vec<Address> = wallets.iter().map(|w| w.address).collect();
    let verifier = compile(&nparty_onchain_source(n), "verifierN").unwrap();
    let onchain = net
        .deploy(
            &wallets[0],
            verifier.initcode(&nparty_ctor_args(&addrs)).unwrap(),
            U256::ZERO,
            7_900_000,
        )
        .unwrap()
        .contract_address
        .unwrap();
    let payload = sc_evm::wrap_initcode(&[0x60, 0x2a, 0x60, 0x00, 0x52, 0x00]);
    NParty {
        net,
        wallets,
        verifier,
        onchain,
        payload,
    }
}

#[test]
fn four_party_copy_deploys_and_links() {
    let mut s = setup(4);
    let sigs: Vec<_> = s
        .wallets
        .iter()
        .map(|w| sign_bytecode(&w.key, &s.payload))
        .collect();
    let data = s
        .verifier
        .calldata(
            "deployVerifiedInstance",
            &nparty_deploy_args(&s.payload, &sigs),
        )
        .unwrap();
    let r = s
        .net
        .execute(&s.wallets[0], s.onchain, U256::ZERO, data, 7_900_000)
        .unwrap();
    assert!(r.success, "{:?}", r.failure);
    let instance = Address::from_u256(
        s.net
            .storage_at(s.onchain, U256::from_u64(nparty_deployed_addr_slot(4))),
    );
    assert_eq!(instance, sc_evm::contract_address(s.onchain, 1));
    assert!(!s.net.code_at(instance).is_empty());
}

#[test]
fn one_missing_signer_breaks_the_whole_copy() {
    // All-or-nothing: n−1 valid signatures + one outsider's must revert.
    let mut s = setup(5);
    let outsider = Wallet::from_seed("outsider");
    let mut sigs: Vec<_> = s
        .wallets
        .iter()
        .map(|w| sign_bytecode(&w.key, &s.payload))
        .collect();
    sigs[3] = sign_bytecode(&outsider.key, &s.payload);
    let data = s
        .verifier
        .calldata(
            "deployVerifiedInstance",
            &nparty_deploy_args(&s.payload, &sigs),
        )
        .unwrap();
    let r = s
        .net
        .execute(&s.wallets[0], s.onchain, U256::ZERO, data, 7_900_000)
        .unwrap();
    assert!(!r.success, "one bad signature of five must reject the copy");
    assert_eq!(
        s.net
            .storage_at(s.onchain, U256::from_u64(nparty_deployed_addr_slot(5))),
        U256::ZERO
    );
}

#[test]
fn signature_order_matters() {
    // Signatures must arrive in participant order (the contract binds
    // signature i to participant i).
    let mut s = setup(3);
    let mut sigs: Vec<_> = s
        .wallets
        .iter()
        .map(|w| sign_bytecode(&w.key, &s.payload))
        .collect();
    sigs.swap(0, 1);
    let data = s
        .verifier
        .calldata(
            "deployVerifiedInstance",
            &nparty_deploy_args(&s.payload, &sigs),
        )
        .unwrap();
    let r = s
        .net
        .execute(&s.wallets[0], s.onchain, U256::ZERO, data, 7_900_000)
        .unwrap();
    assert!(!r.success, "swapped signatures must be rejected");
}
