//! Partition-chaos suite: protocol sessions over a 4-node gossiping
//! network under seeded link faults (partitions, delivery delays) *and*
//! per-session chain/whisper faults, with invariants checked on every
//! node after every run.
//!
//! Property checked per seed:
//!
//! * the run **terminates** — every session reaches a valid outcome or
//!   degrades to a reported protocol error (never a panic, never a hang);
//! * every node **converges** on one canonical head once the chaos
//!   stops;
//! * **ether is conserved** on every node, and every node's header
//!   commitments (`state_root`, `receipts_root`) re-verify from scratch
//!   — reorgs must leave no trace of orphaned branches in state;
//! * the run is **bit-identical** per seed: heads, stats and outcomes.
//!
//! Every failure message contains the single `u64` seed that reproduces
//! it. The default sweep keeps tier-1 fast; the 64-seed matrix is
//! `#[ignore]`d and run in release mode by the CI `partition-chaos` job:
//!
//! ```sh
//! cargo test --release -p sc-core --test network_chaos -- --ignored --nocapture
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use sc_chain::PoolConfig;
use sc_core::{
    check_conservation, check_state_commitments, BettingSpec, ChallengeSpec, CrashPoint,
    NetworkScheduler, SessionSpec, Strategy, SubmitStrategy, WatchStrategy, XorShift64,
};

/// Base of the pinned seed schedule — the same base the single-chain
/// chaos suite uses, so one constant governs every CI sweep.
const CHAOS_BASE_SEED: u64 = 0x5EED_C0FF_EE15_600D;

/// Seeds in CI's pinned full sweep.
const FULL_SWEEP: usize = 64;

/// Seeds in the default (tier-1) sweep.
const QUICK_SWEEP: usize = 4;

/// Nodes in every chaos network.
const NODES: usize = 4;

fn chaos_seeds(n: usize) -> Vec<u64> {
    let mut rng = XorShift64::new(CHAOS_BASE_SEED);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// Runs `f`; on panic, re-panics with the reproducing seed in the
/// message so one `u64` is all a debugging session needs.
fn with_seed<T>(seed: u64, what: &str, f: impl FnOnce() -> T) -> T {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => v,
        Err(cause) => {
            let msg = cause
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| cause.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic");
            panic!("network chaos failure in {what} (reproduce with seed {seed:#018x}): {msg}");
        }
    }
}

/// The session mix homed across the nodes: honest and byzantine betting
/// games plus truthful and false-submission challenge games, two of
/// them carrying their own chain/whisper fault schedules derived from
/// the network seed.
fn mixed_specs(seed: u64) -> Vec<SessionSpec> {
    vec![
        SessionSpec::Betting(BettingSpec::default()),
        SessionSpec::Betting(BettingSpec {
            alice: Strategy::SilentLoser,
            fault_seed: Some(seed ^ 0x1),
            start_delay: 600,
            ..BettingSpec::default()
        }),
        SessionSpec::Challenge(ChallengeSpec::default()),
        SessionSpec::Challenge(ChallengeSpec {
            submit: SubmitStrategy::False,
            watch: WatchStrategy::Vigilant,
            crash: CrashPoint::None,
            fault_seed: Some(seed ^ 0x2),
            start_delay: 1200,
            ..ChallengeSpec::default()
        }),
    ]
}

/// One network run under `seed`: returns the fingerprint a determinism
/// check compares (heads, stats, per-session outcome/error).
fn network_cell(seed: u64) -> (Vec<sc_primitives::H256>, sc_core::NetStats, Vec<String>) {
    let mut sched =
        NetworkScheduler::new(mixed_specs(seed), NODES, PoolConfig::default(), Some(seed));
    let reports = sched.run();

    // Termination with grace: every session either finished with a
    // valid outcome or degraded to a *reported* protocol error.
    for r in &reports {
        assert!(
            r.outcome.is_some() || r.error.is_some(),
            "session {} ({}) settled without outcome or error",
            r.id,
            r.kind
        );
    }

    let net = sched.network();
    assert!(
        net.converged(),
        "nodes failed to converge: heads {:?}, stats {:?}",
        net.heads(),
        net.stats()
    );
    assert!(
        !net.frames_in_flight(),
        "run ended with gossip frames still queued"
    );
    for i in 0..net.len() {
        check_conservation(net.node(i)).unwrap_or_else(|e| panic!("conservation on node {i}: {e}"));
        check_state_commitments(net.node(i))
            .unwrap_or_else(|e| panic!("commitments on node {i}: {e}"));
    }

    let fingerprint: Vec<String> = reports
        .iter()
        .map(|r| format!("{}:{:?}:{:?}", r.id, r.outcome, r.error))
        .collect();
    (net.heads(), net.stats(), fingerprint)
}

fn sweep(seeds: &[u64]) {
    for &seed in seeds {
        let stats = with_seed(seed, "network run", || network_cell(seed)).1;
        println!(
            "network chaos seed {seed:#018x}: converged after {} rounds, \
             {} blocks sealed, {} reorgs (max depth {}), {} partitions, \
             {} orphans resubmitted",
            stats.rounds,
            stats.blocks_sealed,
            stats.reorgs,
            stats.max_reorg_depth,
            stats.partitions,
            stats.orphans_resubmitted
        );
    }
}

#[test]
fn network_chaos_small_sweep() {
    sweep(&chaos_seeds(QUICK_SWEEP));
}

/// The CI partition-chaos job's pinned 64-seed sweep. Run:
/// `cargo test --release -p sc-core --test network_chaos -- --ignored --nocapture`
#[test]
#[ignore = "64-seed partition sweep; run in release by the CI partition-chaos job"]
fn network_chaos_full_sweep_64_seeds() {
    sweep(&chaos_seeds(FULL_SWEEP));
}

/// Same seed ⇒ bit-identical network: every node's head, the aggregate
/// stats, and every session's outcome and error string.
#[test]
fn network_chaos_runs_are_deterministic_per_seed() {
    let seed = chaos_seeds(1)[0];
    let a = with_seed(seed, "determinism run A", || network_cell(seed));
    let b = with_seed(seed, "determinism run B", || network_cell(seed));
    assert_eq!(a, b, "same seed produced different networks");
}
