//! Partition-chaos suite: protocol sessions over a 4-node gossiping
//! network under seeded link faults (partitions, delivery delays) *and*
//! per-session chain/whisper faults, with invariants checked on every
//! node after every run.
//!
//! Property checked per seed:
//!
//! * the run **terminates** — every session reaches a valid outcome or
//!   degrades to a reported protocol error (never a panic, never a hang);
//! * every node **converges** on one canonical head once the chaos
//!   stops;
//! * **ether is conserved** on every node, and every node's header
//!   commitments (`state_root`, `receipts_root`) re-verify from scratch
//!   — reorgs must leave no trace of orphaned branches in state;
//! * the run is **bit-identical** per seed: heads, stats and outcomes.
//!
//! Every failure message contains the single `u64` seed that reproduces
//! it. The default sweep keeps tier-1 fast; the 64-seed matrix is
//! `#[ignore]`d and run in release mode by the CI `partition-chaos` job:
//!
//! ```sh
//! cargo test --release -p sc-core --test network_chaos -- --ignored --nocapture
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use sc_chain::PoolConfig;
use sc_core::{
    check_conservation, check_state_commitments, BettingSpec, ChallengeSpec, CrashPoint,
    NetworkScheduler, SessionSpec, Strategy, SubmitStrategy, WatchStrategy, XorShift64,
};

/// Base of the pinned seed schedule — the same base the single-chain
/// chaos suite uses, so one constant governs every CI sweep.
const CHAOS_BASE_SEED: u64 = 0x5EED_C0FF_EE15_600D;

/// Seeds in CI's pinned full sweep.
const FULL_SWEEP: usize = 64;

/// Seeds in the default (tier-1) sweep.
const QUICK_SWEEP: usize = 4;

/// Nodes in every chaos network.
const NODES: usize = 4;

fn chaos_seeds(n: usize) -> Vec<u64> {
    let mut rng = XorShift64::new(CHAOS_BASE_SEED);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// Runs `f`; on panic, re-panics with the reproducing seed in the
/// message so one `u64` is all a debugging session needs.
fn with_seed<T>(seed: u64, what: &str, f: impl FnOnce() -> T) -> T {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => v,
        Err(cause) => {
            let msg = cause
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| cause.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic");
            panic!("network chaos failure in {what} (reproduce with seed {seed:#018x}): {msg}");
        }
    }
}

/// The session mix homed across the nodes: honest and byzantine betting
/// games plus truthful and false-submission challenge games, two of
/// them carrying their own chain/whisper fault schedules derived from
/// the network seed.
fn mixed_specs(seed: u64) -> Vec<SessionSpec> {
    vec![
        SessionSpec::Betting(BettingSpec::default()),
        SessionSpec::Betting(BettingSpec {
            alice: Strategy::SilentLoser,
            fault_seed: Some(seed ^ 0x1),
            start_delay: 600,
            ..BettingSpec::default()
        }),
        SessionSpec::Challenge(ChallengeSpec::default()),
        SessionSpec::Challenge(ChallengeSpec {
            submit: SubmitStrategy::False,
            watch: WatchStrategy::Vigilant,
            crash: CrashPoint::None,
            fault_seed: Some(seed ^ 0x2),
            start_delay: 1200,
            ..ChallengeSpec::default()
        }),
    ]
}

/// One network run under `seed`: returns the fingerprint a determinism
/// check compares (heads, stats, per-session outcome/error).
fn network_cell(seed: u64) -> (Vec<sc_primitives::H256>, sc_core::NetStats, Vec<String>) {
    let mut sched =
        NetworkScheduler::new(mixed_specs(seed), NODES, PoolConfig::default(), Some(seed));
    let reports = sched.run();

    // Termination with grace: every session either finished with a
    // valid outcome or degraded to a *reported* protocol error.
    for r in &reports {
        assert!(
            r.outcome.is_some() || r.error.is_some(),
            "session {} ({}) settled without outcome or error",
            r.id,
            r.kind
        );
    }

    let net = sched.network();
    assert!(
        net.converged(),
        "nodes failed to converge: heads {:?}, stats {:?}",
        net.heads(),
        net.stats()
    );
    assert!(
        !net.frames_in_flight(),
        "run ended with gossip frames still queued"
    );
    for i in 0..net.len() {
        check_conservation(net.node(i)).unwrap_or_else(|e| panic!("conservation on node {i}: {e}"));
        check_state_commitments(net.node(i))
            .unwrap_or_else(|e| panic!("commitments on node {i}: {e}"));
    }

    let fingerprint: Vec<String> = reports
        .iter()
        .map(|r| format!("{}:{:?}:{:?}", r.id, r.outcome, r.error))
        .collect();
    (net.heads(), net.stats(), fingerprint)
}

fn sweep(seeds: &[u64]) {
    for &seed in seeds {
        let stats = with_seed(seed, "network run", || network_cell(seed)).1;
        println!(
            "network chaos seed {seed:#018x}: converged after {} rounds, \
             {} blocks sealed, {} reorgs (max depth {}), {} partitions, \
             {} orphans resubmitted",
            stats.rounds,
            stats.blocks_sealed,
            stats.reorgs,
            stats.max_reorg_depth,
            stats.partitions,
            stats.orphans_resubmitted
        );
    }
}

#[test]
fn network_chaos_small_sweep() {
    sweep(&chaos_seeds(QUICK_SWEEP));
}

/// The CI partition-chaos job's pinned 64-seed sweep. Run:
/// `cargo test --release -p sc-core --test network_chaos -- --ignored --nocapture`
#[test]
#[ignore = "64-seed partition sweep; run in release by the CI partition-chaos job"]
fn network_chaos_full_sweep_64_seeds() {
    sweep(&chaos_seeds(FULL_SWEEP));
}

/// Same seed ⇒ bit-identical network: every node's head, the aggregate
/// stats, and every session's outcome and error string.
#[test]
fn network_chaos_runs_are_deterministic_per_seed() {
    let seed = chaos_seeds(1)[0];
    let a = with_seed(seed, "determinism run A", || network_cell(seed));
    let b = with_seed(seed, "determinism run B", || network_cell(seed));
    assert_eq!(a, b, "same seed produced different networks");
}

// ---------------------------------------------------------------------
// Confidential double-submit race
// ---------------------------------------------------------------------
//
// The settle-later guarantee under the worst schedule: both parties
// hold the same co-signed voucher, a partition splits the network, and
// each submits the voucher on a *different side* of the cut. Both
// sides mine their submission into competing branches; healing forces
// a reorg, the losing branch's settle is orphaned and resubmitted, and
// it must then revert on the burned nullifier. Exactly one settlement
// survives on every node, every node converges and conserves ether,
// and the whole race replays bit-identically per seed.

use sc_chain::{Transaction, Wallet};
use sc_confidential::{CommitmentBackend, PedersenBackend, SettlementVoucher};
use sc_contracts::confidential::{ConfidentialContracts, ConfidentialParams};
use sc_core::{FaultPlan, NetStats, Network};
use sc_crypto::secp256k1::{n as curve_order, scalar};
use sc_primitives::{ether, Address, H256, U256};

/// Self-signs one transaction against `node`'s current nonce view and
/// submits it into that node's pool only — gossip spreads it no further
/// than the blocks that mine it, which is what lets a partition hold
/// different submissions on its two sides.
fn submit_on(
    net: &mut Network,
    node: usize,
    wallet: &Wallet,
    to: Option<Address>,
    value: U256,
    data: Vec<u8>,
    gas: u64,
) -> H256 {
    let chain = net.node(node);
    let tx = Transaction {
        nonce: chain.effective_nonce(wallet.address),
        gas_price: chain.config().default_gas_price,
        gas_limit: gas,
        to,
        value,
        data,
    };
    let signed = tx.sign(&wallet.key);
    let hash = signed.hash();
    net.node_mut(node)
        .submit(signed)
        .unwrap_or_else(|e| panic!("node {node} rejected submission: {e:?}"));
    hash
}

/// Runs rounds until every hash has a receipt on every node and the
/// network has converged with no frames in flight.
fn land_everywhere(net: &mut Network, hashes: &[H256], max_rounds: u64) {
    for _ in 0..max_rounds {
        net.round();
        let landed = hashes
            .iter()
            .all(|h| (0..net.len()).all(|i| net.node(i).receipt(*h).is_some()));
        if landed && net.converged() && !net.frames_in_flight() {
            return;
        }
    }
    panic!(
        "transactions failed to land on every node within {max_rounds} rounds; heads: {:?}",
        net.heads()
    );
}

/// One double-submit race under `seed`; returns the fingerprint the
/// determinism check compares.
fn double_submit_cell(seed: u64) -> (Vec<H256>, NetStats, bool, bool) {
    let alice = Wallet::from_seed("ds-alice");
    let bob = Wallet::from_seed("ds-bob");
    let funding = [(alice.address, ether(10)), (bob.address, ether(10))];
    let mut net = Network::new(NODES, &FaultPlan::none(), PoolConfig::default(), &funding);
    let contracts = ConfidentialContracts::new();
    let backend = PedersenBackend;
    let p = ConfidentialParams {
        units_a: 30,
        units_b: 12,
        unit_scale: U256::from_u64(1_000_000_000),
        range_bits: 16,
        deadline: net.node(0).now() + 1_000_000,
    };

    // Channel setup, landed network-wide before any cut: deploy, both
    // public stakes, both committed deposits (cancelling blindings, so
    // the sum commitment opens to the pot), activation.
    let deploy = submit_on(
        &mut net,
        0,
        &alice,
        None,
        U256::ZERO,
        contracts.initcode(alice.address, bob.address, p),
        5_000_000,
    );
    land_everywhere(&mut net, &[deploy], 64);
    let receipt = net.node(0).receipt(deploy).expect("deploy mined").clone();
    assert!(receipt.success, "deploy reverted");
    let contract = receipt.contract_address.expect("created");

    let r_a = scalar::reduce(U256::from_u64(seed | 1));
    let r_b = curve_order().wrapping_sub(r_a);
    let c_a = backend.commit(U256::from_u64(p.units_a), r_a);
    let c_b = backend.commit(U256::from_u64(p.units_b), r_b);
    let setup = [
        submit_on(
            &mut net,
            0,
            &alice,
            Some(contract),
            p.stake_wei(p.units_a),
            contracts.fund(),
            300_000,
        ),
        submit_on(
            &mut net,
            1,
            &bob,
            Some(contract),
            p.stake_wei(p.units_b),
            contracts.fund(),
            300_000,
        ),
    ];
    land_everywhere(&mut net, &setup, 64);
    let proof_a = backend
        .prove_range(U256::from_u64(p.units_a), r_a, p.range_bits)
        .expect("in range");
    let proof_b = backend
        .prove_range(U256::from_u64(p.units_b), r_b, p.range_bits)
        .expect("in range");
    let deposits = [
        submit_on(
            &mut net,
            0,
            &alice,
            Some(contract),
            U256::ZERO,
            contracts.deposit_committed(&c_a, p.range_bits, proof_a.as_bytes()),
            2_500_000,
        ),
        submit_on(
            &mut net,
            1,
            &bob,
            Some(contract),
            U256::ZERO,
            contracts.deposit_committed(&c_b, p.range_bits, proof_b.as_bytes()),
            2_500_000,
        ),
    ];
    land_everywhere(&mut net, &deposits, 64);
    let activate = submit_on(
        &mut net,
        0,
        &alice,
        Some(contract),
        U256::ZERO,
        contracts.activate(&backend.add(&c_a, &c_b)),
        600_000,
    );
    land_everywhere(&mut net, &[activate], 64);
    for h in setup.iter().chain(&deposits).chain([&activate]) {
        assert!(
            net.node(0).receipt(*h).expect("mined").success,
            "channel setup transaction reverted"
        );
    }

    // The co-signed voucher: 9 units move from A to B, output blindings
    // cancel. This is the artifact both parties hold off-chain.
    let out_ra = scalar::reduce(U256::from_u64(seed ^ 0xAB1E));
    let out_rb = curve_order().wrapping_sub(out_ra);
    let voucher = SettlementVoucher {
        contract,
        out_a: backend.commit(U256::from_u64(21), out_ra),
        out_b: backend.commit(U256::from_u64(21), out_rb),
    };
    let signed = voucher.co_sign(&alice.key, &bob.key);
    let settle_data = contracts.settle(&signed);

    // The race: cut {0,1} from {2,3}, then submit the same voucher from
    // Alice on one side and Bob on the other. Both sides mine it.
    let cut_rounds = 6 + seed % 6;
    net.force_partition(vec![0, 1], cut_rounds);
    let settle_a = submit_on(
        &mut net,
        0,
        &alice,
        Some(contract),
        U256::ZERO,
        settle_data.clone(),
        1_500_000,
    );
    let settle_b = submit_on(
        &mut net,
        3,
        &bob,
        Some(contract),
        U256::ZERO,
        settle_data.clone(),
        1_500_000,
    );
    land_everywhere(&mut net, &[settle_a, settle_b], 256);

    // Exactly one settlement, agreed on by every node.
    let a_won = net.node(0).receipt(settle_a).expect("mined").success;
    let b_won = net.node(0).receipt(settle_b).expect("mined").success;
    assert!(
        a_won ^ b_won,
        "exactly one settle must succeed (alice {a_won}, bob {b_won})"
    );
    for i in 0..net.len() {
        assert_eq!(
            net.node(i).receipt(settle_a).expect("mined").success,
            a_won,
            "node {i} disagrees on alice's settle"
        );
        assert_eq!(
            net.node(i).receipt(settle_b).expect("mined").success,
            b_won,
            "node {i} disagrees on bob's settle"
        );
    }

    // A post-heal replay of the same voucher reverts everywhere: the
    // nullifier is burned in the canonical state, not in a branch.
    let replay = submit_on(
        &mut net,
        2,
        &alice,
        Some(contract),
        U256::ZERO,
        settle_data,
        1_500_000,
    );
    land_everywhere(&mut net, &[replay], 64);
    assert!(
        !net.node(0).receipt(replay).expect("mined").success,
        "replay after the race must revert"
    );

    for i in 0..net.len() {
        check_conservation(net.node(i)).unwrap_or_else(|e| panic!("conservation on node {i}: {e}"));
        check_state_commitments(net.node(i))
            .unwrap_or_else(|e| panic!("commitments on node {i}: {e}"));
    }
    (net.heads(), net.stats(), a_won, b_won)
}

#[test]
fn confidential_double_submit_settles_exactly_once_across_a_partition() {
    for seed in chaos_seeds(2) {
        let seed = seed ^ 0x00D0_B1E5;
        with_seed(seed, "double-submit race", || double_submit_cell(seed));
    }
}

/// Same seed ⇒ the same race: winner, heads and stats all identical.
#[test]
fn confidential_double_submit_race_is_deterministic_per_seed() {
    let seed = chaos_seeds(1)[0] ^ 0x00D0_B1E5;
    let a = with_seed(seed, "double-submit determinism A", || {
        double_submit_cell(seed)
    });
    let b = with_seed(seed, "double-submit determinism B", || {
        double_submit_cell(seed)
    });
    assert_eq!(a, b, "same seed produced a different race");
}
