//! End-to-end validation of the automatic splitter: the pair generated
//! from the monolithic betting contract must run the full protocol —
//! deposits on the generated on-chain contract, signatures over the
//! generated off-chain initcode, and a complete dispute resolution.

use sc_chain::Testnet;
use sc_contracts::{BetSecrets, MONOLITHIC_SRC};
use sc_core::{generate_pair, SignedCopy};
use sc_lang::parse;
use sc_primitives::abi::Value;
use sc_primitives::{ether, Address, U256};

#[test]
fn generated_pair_resolves_a_dispute_end_to_end() {
    let whole = parse(MONOLITHIC_SRC).unwrap().contracts[0].clone();
    let pair = generate_pair(&whole).expect("pair generates");

    // The generated on-chain constructor kept exactly the parameters its
    // variables need: (a, b, t1, t2).
    let ctor = pair.onchain.analyzed.contract.constructor.as_ref().unwrap();
    let names: Vec<&str> = ctor.0.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, vec!["a", "b", "t1", "t2"]);
    // The off-chain constructor kept (a, b, sa, sb, w).
    let octor = pair
        .offchain
        .analyzed
        .contract
        .constructor
        .as_ref()
        .unwrap();
    let onames: Vec<&str> = octor.0.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(onames, vec!["a", "b", "sa", "sb", "w"]);

    let mut net = Testnet::new();
    let alice = net.funded_wallet("alice", ether(1000));
    let bob = net.funded_wallet("bob", ether(1000));
    let t1 = net.now() + 3600;
    let t2 = net.now() + 7200;

    // Secrets that make Bob the winner.
    let mut secrets = BetSecrets {
        secret_a: U256::from_u64(11),
        secret_b: U256::from_u64(22),
        weight: 20,
    };
    while !secrets.winner_is_bob() {
        secrets.secret_a = secrets.secret_a.wrapping_add(U256::ONE);
    }

    // Deploy the generated on-chain contract.
    let initcode = pair
        .onchain
        .initcode(&[
            Value::Address(alice.address),
            Value::Address(bob.address),
            Value::Uint(U256::from_u64(t1)),
            Value::Uint(U256::from_u64(t2)),
        ])
        .unwrap();
    let r = net.deploy(&alice, initcode, U256::ZERO, 7_000_000).unwrap();
    assert!(r.success, "generated on-chain deploys: {:?}", r.failure);
    let onchain = r.contract_address.unwrap();

    // Deposits through the generated deposit().
    let deposit = pair.onchain.calldata("deposit", &[]).unwrap();
    for w in [&alice, &bob] {
        let r = net
            .execute(w, onchain, ether(1), deposit.clone(), 300_000)
            .unwrap();
        assert!(r.success, "generated deposit: {:?}", r.failure);
    }
    assert_eq!(net.balance_of(onchain), ether(2));

    // Both sign the generated off-chain initcode.
    let off_initcode = pair
        .offchain
        .initcode(&[
            Value::Address(alice.address),
            Value::Address(bob.address),
            Value::Uint(secrets.secret_a),
            Value::Uint(secrets.secret_b),
            Value::Uint(U256::from_u64(secrets.weight)),
        ])
        .unwrap();
    let copy = SignedCopy::create(off_initcode, &[&alice.key, &bob.key]);
    copy.verify(&[alice.address, bob.address]).unwrap();

    // Dispute: create the verified instance from the signed copy.
    let data = pair
        .onchain
        .calldata(
            "deployVerifiedInstance",
            &[
                Value::Bytes(copy.bytecode.clone()),
                Value::Uint(U256::from_u64(copy.signatures[0].v as u64)),
                Value::Bytes32(copy.signatures[0].r),
                Value::Bytes32(copy.signatures[0].s),
                Value::Uint(U256::from_u64(copy.signatures[1].v as u64)),
                Value::Bytes32(copy.signatures[1].r),
                Value::Bytes32(copy.signatures[1].s),
            ],
        )
        .unwrap();
    let r = net
        .execute(&bob, onchain, U256::ZERO, data, 7_900_000)
        .unwrap();
    assert!(
        r.success,
        "generated deployVerifiedInstance: {:?}",
        r.failure
    );

    // Locate deployedAddr through the generated contract's storage layout.
    let slot = pair
        .onchain
        .analyzed
        .contract
        .state
        .iter()
        .find(|sv| sv.name == "deployedAddr")
        .unwrap()
        .slot;
    let instance = Address::from_u256(net.storage_at(onchain, U256::from_u64(slot)));
    assert!(!instance.is_zero());
    assert_eq!(instance, sc_evm::contract_address(onchain, 1));

    // Enforce through the generated returnDisputeResolution.
    let bob_before = net.balance_of(bob.address);
    let data = pair
        .offchain
        .calldata("returnDisputeResolution", &[Value::Address(onchain)])
        .unwrap();
    let r = net
        .execute(&bob, instance, U256::ZERO, data, 7_900_000)
        .unwrap();
    assert!(r.success, "generated resolution: {:?}", r.failure);
    assert!(
        net.balance_of(bob.address) > bob_before,
        "the generated pair enforced the true result"
    );
    assert_eq!(net.balance_of(onchain), U256::ZERO);
}

#[test]
fn generated_pair_rejects_tampered_bytecode() {
    let whole = parse(MONOLITHIC_SRC).unwrap().contracts[0].clone();
    let pair = generate_pair(&whole).expect("pair generates");
    let mut net = Testnet::new();
    let alice = net.funded_wallet("alice", ether(1000));
    let bob = net.funded_wallet("bob", ether(1000));
    let initcode = pair
        .onchain
        .initcode(&[
            Value::Address(alice.address),
            Value::Address(bob.address),
            Value::Uint(U256::from_u64(net.now() + 3600)),
            Value::Uint(U256::from_u64(net.now() + 7200)),
        ])
        .unwrap();
    let onchain = net
        .deploy(&alice, initcode, U256::ZERO, 7_000_000)
        .unwrap()
        .contract_address
        .unwrap();

    let off_initcode = pair
        .offchain
        .initcode(&[
            Value::Address(alice.address),
            Value::Address(bob.address),
            Value::Uint(U256::ONE),
            Value::Uint(U256::ONE),
            Value::Uint(U256::from_u64(4)),
        ])
        .unwrap();
    let mut copy = SignedCopy::create(off_initcode, &[&alice.key, &bob.key]);
    copy.bytecode[64] ^= 0xff;

    let data = pair
        .onchain
        .calldata(
            "deployVerifiedInstance",
            &[
                Value::Bytes(copy.bytecode.clone()),
                Value::Uint(U256::from_u64(copy.signatures[0].v as u64)),
                Value::Bytes32(copy.signatures[0].r),
                Value::Bytes32(copy.signatures[0].s),
                Value::Uint(U256::from_u64(copy.signatures[1].v as u64)),
                Value::Bytes32(copy.signatures[1].r),
                Value::Bytes32(copy.signatures[1].s),
            ],
        )
        .unwrap();
    let r = net
        .execute(&bob, onchain, U256::ZERO, data, 7_900_000)
        .unwrap();
    assert!(
        !r.success,
        "tampered bytecode rejected by the generated pair"
    );
}
