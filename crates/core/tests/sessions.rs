//! Session-engine suite: N heterogeneous sessions multiplexed over one
//! shared chain must behave exactly like the same sessions run alone.
//!
//! Properties:
//!
//! * **Interleaving is invisible** — a session's outcome and observable
//!   transaction trace are the same whether it shares the chain with
//!   arbitrary other sessions or runs solo (proptest over random mixes).
//! * **Determinism** — identical spec lists (fault seeds included)
//!   produce bit-identical reports, stats and chain heads.
//! * **Conservation** — a shared chain carrying mixed honest/Byzantine
//!   sessions under seeded fault schedules still conserves ether
//!   globally, and every session terminates in a valid outcome.
//! * **Batching is real** — at 256 concurrent sessions the mean number
//!   of admitted transactions per shared block exceeds 1.

use proptest::collection::vec;
use proptest::prelude::*;
use sc_chain::PoolConfig;
use sc_contracts::BetSecrets;
use sc_core::{
    check_conservation, check_state_commitments, BettingSpec, ChallengeSpec, CrashPoint,
    SessionReport, SessionScheduler, SessionSpec, Strategy, SubmitStrategy, WatchStrategy,
};
use sc_primitives::U256;

fn secrets_bob_wins() -> BetSecrets {
    let mut s = BetSecrets {
        secret_a: U256::from_u64(41),
        secret_b: U256::from_u64(42),
        weight: 16,
    };
    while !s.winner_is_bob() {
        s.secret_a = s.secret_a.wrapping_add(U256::ONE);
    }
    s
}

/// The 10 behavioural cells random mixes draw from: every betting
/// strategy pair the chaos matrix exercises plus representative
/// challenge cells (honest, lying, sleeping, crashed).
fn spec_cell(code: u8, fault_seed: Option<u64>, start_delay: u64) -> SessionSpec {
    let secrets = secrets_bob_wins();
    let betting = |alice, bob| {
        SessionSpec::Betting(BettingSpec {
            alice,
            bob,
            secrets,
            fault_seed,
            start_delay,
            ..BettingSpec::default()
        })
    };
    let challenge = |submit, watch, crash| {
        SessionSpec::Challenge(ChallengeSpec {
            secrets,
            submit,
            watch,
            crash,
            fault_seed,
            start_delay,
            ..ChallengeSpec::default()
        })
    };
    match code % 10 {
        0 => betting(Strategy::Honest, Strategy::Honest),
        1 => betting(Strategy::SilentLoser, Strategy::Honest),
        2 => betting(Strategy::ForgingLoser, Strategy::Honest),
        3 => betting(Strategy::Honest, Strategy::NoShow),
        4 => betting(Strategy::Honest, Strategy::RefusesToSign),
        5 => betting(Strategy::SignsTampered, Strategy::Honest),
        6 => challenge(
            SubmitStrategy::Truthful,
            WatchStrategy::Vigilant,
            CrashPoint::None,
        ),
        7 => challenge(
            SubmitStrategy::False,
            WatchStrategy::Vigilant,
            CrashPoint::None,
        ),
        8 => challenge(
            SubmitStrategy::False,
            WatchStrategy::Asleep,
            CrashPoint::None,
        ),
        _ => challenge(
            SubmitStrategy::Truthful,
            WatchStrategy::Vigilant,
            CrashPoint::BeforeSubmit,
        ),
    }
}

/// The parts of a report that must not depend on who else shared the
/// chain: kind, outcome, error, `(label, success)` trace, messages —
/// not gas (wallets derive from the slot id, so gas varies benignly).
type Observable = (
    String,
    Option<String>,
    Option<String>,
    Vec<(String, bool)>,
    usize,
);

fn observable(r: &SessionReport) -> Observable {
    (
        r.kind.to_string(),
        r.outcome.map(str::to_string),
        r.error.clone(),
        r.txs.clone(),
        r.messages_posted,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any random mix of sessions, interleaved over one shared chain,
    /// ends outcome-for-outcome and trace-for-trace the same as each
    /// session run on its own scheduler. (Fault-free: injected faults
    /// are drawn against session-local submission sequences, so their
    /// *schedules* are only comparable within one mode.)
    #[test]
    fn interleaved_matches_sequential_outcomes(
        cells in vec((0u8..10, 0u64..180), 2..5)
    ) {
        let specs: Vec<SessionSpec> = cells
            .iter()
            .map(|&(code, delay)| spec_cell(code, None, delay))
            .collect();

        let interleaved = SessionScheduler::new(specs.clone()).run();

        for (i, spec) in specs.into_iter().enumerate() {
            let solo = SessionScheduler::new(vec![spec]).run();
            prop_assert_eq!(
                observable(&interleaved[i]),
                observable(&solo[0]),
                "session {} diverged between interleaved and solo runs",
                i
            );
        }
    }
}

/// Identical specs (fault seeds included) ⇒ bit-identical scheduler
/// runs: reports, chain head, block/tx counts. This is what makes a
/// multi-session failure reproducible from its spec list alone.
#[test]
fn scheduler_runs_are_deterministic() {
    let specs: Vec<SessionSpec> = (0..8u8)
        .map(|i| spec_cell(i, Some(0xC0FFEE ^ u64::from(i)), u64::from(i) * 37))
        .collect();

    let run = || {
        let mut sched = SessionScheduler::new(specs.clone());
        let reports: Vec<_> = sched.run().iter().map(observable).collect();
        let stats = sched.stats();
        (
            reports,
            sched.net().head().hash,
            stats.blocks_mined,
            stats.txs_mined,
        )
    };
    assert_eq!(run(), run(), "scheduler run not deterministic");
}

/// Mixed honest/Byzantine sessions under seeded fault schedules on one
/// shared chain: every session terminates in a valid outcome and the
/// chain conserves ether globally (Σ balances == minted supply).
#[test]
fn shared_chain_conserves_ether_under_mixed_byzantine_load() {
    let specs: Vec<SessionSpec> = (0..12u8)
        .map(|i| {
            let seed = (i % 3 != 0).then_some(0x5EED_0000_u64 + u64::from(i));
            spec_cell(i, seed, u64::from(i) * 61)
        })
        .collect();

    let mut sched = SessionScheduler::new(specs);
    let reports = sched.run();

    for r in &reports {
        assert!(
            r.error.is_none(),
            "session {} ({}) failed: {:?}",
            r.id,
            r.kind,
            r.error
        );
        assert!(r.outcome.is_some(), "session {} has no outcome", r.id);
    }
    check_conservation(sched.net()).unwrap();
    check_state_commitments(sched.net()).unwrap();
}

/// The scale target: 256 concurrent mixed sessions over one shared
/// chain, with real block sharing (mean admitted txs per block > 1).
#[test]
fn sessions_share_blocks_at_scale_256() {
    let specs: Vec<SessionSpec> = (0..256u16)
        .map(|i| {
            let code = (i % 10) as u8;
            let seed = (i % 4 == 0).then_some(0xAB5_0000_u64 + u64::from(i));
            // Staggered starts spread load; 40 distinct offsets still
            // leave ~6 sessions per offset contending for each block.
            spec_cell(code, seed, u64::from(i % 40) * 30)
        })
        .collect();

    let mut sched = SessionScheduler::new(specs);
    let reports = sched.run();
    let stats = sched.stats();

    assert_eq!(reports.len(), 256);
    for r in &reports {
        assert!(
            r.error.is_none() && r.outcome.is_some(),
            "session {} ({}): outcome {:?}, error {:?}",
            r.id,
            r.kind,
            r.outcome,
            r.error
        );
    }
    check_conservation(sched.net()).unwrap();
    check_state_commitments(sched.net()).unwrap();
    assert!(
        stats.mean_txs_per_block() > 1.0,
        "sessions did not share blocks: {} txs over {} blocks",
        stats.txs_mined,
        stats.blocks_mined
    );
    // Sanity: the mix genuinely hits every outcome family.
    let outcomes: std::collections::BTreeSet<_> =
        reports.iter().filter_map(|r| r.outcome).collect();
    assert!(outcomes.len() >= 5, "outcome mix too narrow: {outcomes:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Pooled mining is as reproducible as outbox mining: any random
    /// mix of sessions (fault seeds included) run twice through
    /// [`SessionScheduler::new_pooled`] produces bit-identical reports,
    /// chain heads and pool statistics. The fee market adds ordering
    /// and eviction decisions, but never a source of nondeterminism.
    #[test]
    fn pooled_runs_are_deterministic(
        cells in vec((0u8..10, 0u64..180, 0u8..2), 2..6)
    ) {
        let specs: Vec<SessionSpec> = cells
            .iter()
            .enumerate()
            .map(|(i, &(code, delay, faulty))| {
                let seed = (faulty == 1).then_some(0xD00_0000_u64 + i as u64);
                spec_cell(code, seed, delay)
            })
            .collect();

        let run = || {
            let mut sched = SessionScheduler::new_pooled(specs.clone(), PoolConfig::default());
            let reports: Vec<_> = sched.run().iter().map(observable).collect();
            let stats = sched.stats();
            (
                reports,
                sched.net().head().hash,
                stats.blocks_mined,
                stats.txs_mined,
                stats.pool_evicted,
            )
        };
        prop_assert_eq!(run(), run(), "pooled scheduler run not deterministic");
    }
}

/// Pooled mode at N = 16: every session still terminates validly, the
/// chain still conserves ether, and the patient packer genuinely lifts
/// block utilization above the one-flush-one-block baseline.
#[test]
fn pooled_chain_settles_conserves_and_packs_denser_blocks() {
    let specs = |()| -> Vec<SessionSpec> {
        (0..16u8)
            .map(|i| {
                let seed = (i % 4 == 0).then_some(0xF00D_0000_u64 + u64::from(i));
                spec_cell(i % 10, seed, u64::from(i % 2) * 30)
            })
            .collect()
    };

    let mut outbox = SessionScheduler::new(specs(()));
    outbox.run();

    let mut pooled = SessionScheduler::new_pooled(specs(()), PoolConfig::default());
    let reports = pooled.run();

    for r in &reports {
        assert!(
            r.error.is_none() && r.outcome.is_some(),
            "pooled session {} ({}): outcome {:?}, error {:?}",
            r.id,
            r.kind,
            r.outcome,
            r.error
        );
        let staged: u64 = r.stage_gas.iter().sum();
        assert_eq!(staged, r.total_gas, "stage gas must sum to total gas");
    }
    check_conservation(pooled.net()).unwrap();
    check_state_commitments(pooled.net()).unwrap();
    assert_eq!(
        pooled.stats().txs_mined,
        outbox.stats().txs_mined,
        "both modes mine the same workload"
    );
    assert!(
        pooled.stats().mean_txs_per_block() > outbox.stats().mean_txs_per_block(),
        "fee market must pack denser blocks: pooled {:.2} vs outbox {:.2}",
        pooled.stats().mean_txs_per_block(),
        outbox.stats().mean_txs_per_block()
    );
}

/// Clock-jump regression: when one session sleeps toward a *far* wake
/// target (a huge start delay) while another runs on a *tight* phase
/// schedule, the scheduler's idle jump must stop at the nearer
/// deadline. An overshoot would blow the tight session past its
/// contract windows (deposits after T1 bounce, refunds replace
/// settlement), which would surface as a diverged trace vs its solo
/// run — in both outbox and pooled mode.
#[test]
fn clock_jump_never_overshoots_a_nearer_deadline() {
    let tight = SessionSpec::Betting(BettingSpec {
        secrets: secrets_bob_wins(),
        phase_seconds: 120,
        ..BettingSpec::default()
    });
    let distant = SessionSpec::Betting(BettingSpec {
        secrets: secrets_bob_wins(),
        start_delay: 50_000,
        ..BettingSpec::default()
    });
    let specs = vec![tight.clone(), distant.clone()];

    let solo_tight = SessionScheduler::new(vec![tight]).run();
    let solo_distant = SessionScheduler::new(vec![distant]).run();
    assert_eq!(
        solo_tight[0].outcome,
        Some("settled-honestly"),
        "the tight schedule must still be honestly settleable solo"
    );

    for pooled in [false, true] {
        let mut sched = if pooled {
            SessionScheduler::new_pooled(specs.clone(), PoolConfig::default())
        } else {
            SessionScheduler::new(specs.clone())
        };
        let reports = sched.run();
        assert_eq!(
            observable(&reports[0]),
            observable(&solo_tight[0]),
            "tight-deadline session diverged (pooled = {pooled}): the idle \
             clock jump overshot its phase window"
        );
        assert_eq!(
            observable(&reports[1]),
            observable(&solo_distant[0]),
            "delayed session diverged (pooled = {pooled})"
        );
    }
}
