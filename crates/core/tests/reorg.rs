//! Reorg regression suite: rollback, heavier-fork replay, and the
//! `BLOCKHASH` window across a reorg boundary.
//!
//! These tests drive [`Testnet`]'s history/undo machinery through the
//! shapes a gossiping network produces — multi-block rollbacks, forks
//! replayed from a peer, orphaned transactions — and pin the invariants
//! that must survive every one of them: ether conservation, the
//! header's `state_root`/`receipts_root` commitments, and the 256-entry
//! `BLOCKHASH` window tracking the *canonical* branch only.

use sc_chain::{ImportOutcome, Testnet, Wallet};
use sc_core::{check_conservation, check_state_commitments};
use sc_primitives::{ether, Address, H256, U256};

/// Two nodes with identical genesis state (same wallets funded with the
/// same amounts before any block) and history enabled, so blocks sealed
/// on one replay verbatim on the other.
fn twins() -> (Testnet, Testnet, Wallet, Wallet) {
    let alice = Wallet::from_seed("reorg-alice");
    let carol = Wallet::from_seed("reorg-carol");
    let mk = || {
        let mut net = Testnet::new();
        net.faucet(alice.address, ether(10));
        net.faucet(carol.address, ether(10));
        net.enable_history();
        net
    };
    (mk(), mk(), alice, carol)
}

fn transfer(net: &mut Testnet, from: &Wallet, to: Address, wei: u64) {
    net.execute(from, to, U256::from_u64(wei), Vec::new(), 21_000)
        .expect("transfer mines");
}

#[test]
fn rollback_restores_state_across_four_blocks() {
    let (mut net, _, alice, carol) = twins();
    let sink = Address([0x51; 20]);

    // Four blocks, alternating senders; snapshot the observable state
    // after each seal.
    let mut snaps = vec![(
        net.head().hash,
        net.balance_of(sink),
        net.nonce_of(alice.address),
        net.nonce_of(carol.address),
        net.now(),
    )];
    for i in 0..4u64 {
        let (from, wei) = if i % 2 == 0 {
            (&alice, 1_000 + i)
        } else {
            (&carol, 2_000 + i)
        };
        transfer(&mut net, from, sink, wei);
        snaps.push((
            net.head().hash,
            net.balance_of(sink),
            net.nonce_of(alice.address),
            net.nonce_of(carol.address),
            net.now(),
        ));
    }
    assert_eq!(net.head().number, 4);
    assert_eq!(net.rollback_capacity(), 4);

    // Unwind block by block; every snapshot must come back exactly, and
    // the chain's own commitments must keep verifying at every depth.
    for depth in (0..4).rev() {
        let popped = net.rollback_head_block().expect("history covers this");
        assert_eq!(popped.number, depth as u64 + 1);
        let (hash, sink_bal, a_nonce, c_nonce, now) = snaps[depth];
        assert_eq!(net.head().hash, hash, "head at depth {depth}");
        assert_eq!(net.balance_of(sink), sink_bal, "balance at depth {depth}");
        assert_eq!(net.nonce_of(alice.address), a_nonce);
        assert_eq!(net.nonce_of(carol.address), c_nonce);
        assert_eq!(net.now(), now, "clock at depth {depth}");
        check_conservation(&net).unwrap();
        if depth > 0 {
            // Genesis itself can't verify: the faucet mints postdate the
            // genesis seal and are first committed by block 1.
            check_state_commitments(&net).unwrap();
        }
    }
    assert_eq!(net.head().number, 0);
    // At genesis the undo stack is spent; a further rollback refuses.
    assert!(net.rollback_head_block().is_none());
}

#[test]
fn heavier_fork_replays_with_conservation_and_commitments() {
    let (mut a, mut b, alice, carol) = twins();
    let sink = Address([0x52; 20]);

    // Shared prefix: block 1 sealed on A, replayed on B.
    transfer(&mut a, &alice, sink, 500);
    assert_eq!(
        b.import_block(a.block(1).unwrap().clone()).unwrap(),
        ImportOutcome::Extended
    );

    // Fork: A seals one block, B seals two — B's branch is heavier.
    transfer(&mut a, &alice, sink, 111);
    transfer(&mut b, &carol, sink, 222);
    transfer(&mut b, &carol, sink, 333);
    let orphaned_head = a.head().hash;

    // Equal heights tiebreak on the smaller hash, so importing B's
    // block 2 either parks it as a side block or reorgs immediately;
    // either way, once block 3 arrives B's branch has strictly greater
    // height and must win, orphaning alice's fork-only transfer.
    let mut reverted_total = 0;
    let mut orphans = Vec::new();
    for n in 2..=3 {
        match a.import_block(b.block(n).unwrap().clone()).unwrap() {
            ImportOutcome::Side | ImportOutcome::Extended => {}
            ImportOutcome::Reorged {
                reverted,
                orphaned_txs,
                ..
            } => {
                reverted_total += reverted;
                orphans.extend(orphaned_txs);
            }
            other => panic!("unexpected import outcome {other:?}"),
        }
    }
    assert_eq!(reverted_total, 1, "exactly one block rolled back");
    assert_eq!(orphans.len(), 1, "alice's 111-wei transfer orphaned");
    assert_eq!(a.head().hash, b.head().hash, "A adopted B's branch");
    assert_ne!(a.head().hash, orphaned_head);

    // Alice's fork-only transfer is gone from the canonical state: her
    // nonce rolled back and the sink holds only the canonical sums.
    assert_eq!(a.nonce_of(alice.address), 1);
    assert_eq!(a.balance_of(sink), U256::from_u64(500 + 222 + 333));

    check_conservation(&a).unwrap();
    check_state_commitments(&a).unwrap();
    check_conservation(&b).unwrap();
    check_state_commitments(&b).unwrap();

    // The orphaned transfer resubmits cleanly against the new branch
    // and both nodes converge again.
    transfer(&mut a, &alice, sink, 111);
    assert_eq!(a.balance_of(sink), U256::from_u64(500 + 222 + 333 + 111));
    assert_eq!(
        b.import_block(a.block(4).unwrap().clone()).unwrap(),
        ImportOutcome::Extended
    );
    assert_eq!(a.head().hash, b.head().hash);
    check_state_commitments(&a).unwrap();
    check_state_commitments(&b).unwrap();
}

#[test]
fn four_block_reorg_replays_a_five_block_branch() {
    let (mut a, mut b, alice, carol) = twins();
    let sink = Address([0x53; 20]);

    // Shared prefix of one block.
    transfer(&mut a, &alice, sink, 1);
    b.import_block(a.block(1).unwrap().clone()).unwrap();

    // A builds four fork blocks, B builds five.
    for i in 0..4 {
        transfer(&mut a, &alice, sink, 10 + i);
    }
    for i in 0..5 {
        transfer(&mut b, &carol, sink, 20 + i);
    }

    let mut last = ImportOutcome::AlreadyKnown;
    for n in 2..=6 {
        last = a.import_block(b.block(n).unwrap().clone()).unwrap();
    }
    match last {
        ImportOutcome::Reorged {
            reverted,
            applied,
            orphaned_txs,
        } => {
            assert_eq!(reverted, 4);
            assert_eq!(applied, 5);
            assert_eq!(orphaned_txs.len(), 4);
        }
        other => panic!("expected a depth-4 reorg, got {other:?}"),
    }
    assert_eq!(a.head().hash, b.head().hash);
    assert_eq!(a.nonce_of(alice.address), 1, "fork nonces rolled back");
    assert_eq!(
        a.balance_of(sink),
        U256::from_u64(1 + 20 + 21 + 22 + 23 + 24)
    );
    check_conservation(&a).unwrap();
    check_state_commitments(&a).unwrap();
}

#[test]
fn blockhash_window_tracks_the_canonical_branch_after_a_reorg() {
    let (mut a, mut b, alice, carol) = twins();
    let sink = Address([0x54; 20]);

    // Shared block 1, then a fork at height 2: the two branches commit
    // *different* block-2 hashes.
    transfer(&mut a, &alice, sink, 5);
    b.import_block(a.block(1).unwrap().clone()).unwrap();
    transfer(&mut a, &alice, sink, 6);
    transfer(&mut b, &carol, sink, 7);
    transfer(&mut b, &carol, sink, 8);
    let orphaned_b2 = a.block(2).unwrap().hash;
    let canonical_b2 = b.block(2).unwrap().hash;
    assert_ne!(orphaned_b2, canonical_b2);

    a.import_block(b.block(2).unwrap().clone()).unwrap();
    match a.import_block(b.block(3).unwrap().clone()).unwrap() {
        ImportOutcome::Reorged { reverted: 1, .. } => {}
        other => panic!("expected a reorg, got {other:?}"),
    }

    // A contract whose constructor stores BLOCKHASH(2) into slot 0:
    // PUSH1 2, BLOCKHASH, PUSH1 0, SSTORE, STOP. Executed *after* the
    // reorg, it must observe the adopted branch's block 2, not the
    // orphaned one the node originally sealed.
    let initcode = vec![0x60, 0x02, 0x40, 0x60, 0x00, 0x55, 0x00];
    let receipt = a.deploy(&alice, initcode, U256::ZERO, 200_000).unwrap();
    assert!(receipt.success);
    let recorder = receipt.contract_address.unwrap();
    let seen = a.storage_at(recorder, U256::ZERO);
    assert_eq!(H256::from_u256(seen), canonical_b2);
    assert_ne!(H256::from_u256(seen), orphaned_b2);
    check_state_commitments(&a).unwrap();
}
