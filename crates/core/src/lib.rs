//! The paper's contribution: scalable and privacy-preserving on/off-chain
//! smart contracts.
//!
//! * [`splitter`] — split/generate: function classification
//!   (light/public vs heavy/private), static gas estimation, and the
//!   padding plan for the dispute extra-functions.
//! * [`signedcopy`] — the signed copy of the off-chain contract:
//!   `(bytecode, {(v,r,s)})` construction and verification (Algorithm 4
//!   and the off-chain mirror of Algorithm 5's checks).
//! * [`whisper`] — the off-chain message bus used in deploy/sign.
//! * [`participant`] — participants with honest and Byzantine strategies.
//! * [`protocol`] — the four-stage engine driving a full betting game on
//!   the chain simulator, with per-stage gas and privacy accounting.
//! * [`challenge_protocol`] — extension: the paper's submit/challenge
//!   stage implemented literally (representative submission, challenge
//!   window, security-deposit penalties), with crash-resilient
//!   escalation past the stale deadline.
//! * [`faults`] — deterministic fault injection: a seeded PRNG schedule
//!   of message drops/duplicates/reorders/corruption/delays and
//!   transient chain failures, wrapped around the bus and the testnet.
//! * [`session`] — the session engine: both protocols as resumable
//!   state machines, plus a [`SessionScheduler`] multiplexing N
//!   heterogeneous sessions over one shared chain with shared blocks.
//! * [`net`] — the multi-node network: N gossiping chain nodes under
//!   seeded partitions and link delays, longest-chain fork choice with
//!   reorgs, and a [`NetworkScheduler`] running sessions on top.
//! * [`invariants`] — post-run checks (ether conservation, the honest
//!   participant floor, header Merkle-root commitments) used by the
//!   chaos suite.

#![warn(missing_docs)]

pub mod challenge_protocol;
pub mod faults;
pub mod generate;
pub mod invariants;
pub mod net;
pub mod participant;
pub mod protocol;
pub mod session;
pub mod signedcopy;
pub mod splitter;
pub mod whisper;

pub use challenge_protocol::{
    ChallengeGame, ChallengeOutcome, ChallengeReport, ChallengeTx, CrashPoint, SubmitStrategy,
    WatchStrategy,
};
pub use faults::{
    ChainFaults, FaultPlan, FaultyWhisper, FlakyNet, LightFaults, LinkFaults, NetError, Partition,
    SubmitFault, WhisperFaults, XorShift64, MAX_INJECTED_SECS,
};
pub use generate::{generate_pair, GenerateError, GeneratedPair};
pub use invariants::{
    check_conservation, check_honest_floor, check_state_commitments, gas_spent_by,
    InvariantViolation,
};
pub use net::{NetStats, Network, NetworkScheduler};
pub use participant::{Participant, Strategy};
pub use protocol::{
    BettingGame, GameConfig, Outcome, ProtocolError, ProtocolReport, Stage, TxRecord,
};
pub use session::{
    stage_bucket, BettingSession, BettingSessionParams, BettingSpec, BusPort, ChainAccess,
    ChainPort, ChainReader, ChallengeSession, ChallengeSessionParams, ChallengeSpec, LightPort,
    LightStats, SchedulerStats, Session, SessionCtx, SessionReport, SessionScheduler, SessionSpec,
    SettleLaterCrash, SettleLaterOutcome, SettleLaterSession, SettleLaterSessionParams,
    SettleLaterSpec, StepOutcome, TxSubmitter, STAGE_NAMES,
};
pub use signedcopy::{bytecode_hash, sign_bytecode, SignedCopy, SignedCopyError};
pub use splitter::{classify_function, split, Classification, FunctionClass, SplitPlan};
pub use whisper::{Envelope, Topic, Whisper};
