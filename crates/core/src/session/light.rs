//! Stateless chain access: sessions driven from a light client.
//!
//! A [`LightPort`] is the third way a session reaches the chain, after
//! [`ChainPort::Immediate`](super::ChainPort) and the shared/node
//! modes: the session holds **no chain state at all**. Its view of the
//! chain is a [`HeaderClient`] — verified headers only — and every
//! answer it accepts is checked against a commitment in a tracked
//! header before it reaches the session:
//!
//! * storage reads verify a [`StorageProof`] against the head's
//!   `state_root` ([`HeaderClient::verified_storage`]);
//! * its own nonce is floored by an account witness
//!   ([`HeaderClient::verified_account`]) instead of trusting the
//!   relay's account map;
//! * transaction inclusion is confirmed by a receipt witness against a
//!   tracked header's `receipts_root`
//!   ([`HeaderClient::verified_receipt`]) — the relay can *withhold* a
//!   receipt (liveness), but cannot fabricate one (safety).
//!
//! The untrusted full node the witnesses come from is the **relay**.
//! In the simulation it is a direct `&mut Testnet` borrow of the
//! session's home node; the trust boundary is that nothing read from it
//! is believed until a proof anchors it to a header the client tracks.
//!
//! ## Reorg behaviour
//!
//! The client runs the same fork choice as a full node, so when the
//! relay reorgs, the client's head follows and previously fetched
//! witnesses for orphaned blocks stop verifying. Because the port
//! fetches a *fresh* witness on every read, a session simply re-proves
//! against the new canonical head; a queued transaction orphaned by the
//! reorg loses its receipt witness, [`ChainReader::tx_known`] turns
//! false, and the retry task resubmits — exactly the
//! [`ChainPort::Node`](super::ChainPort) contract.
//!
//! ## Fault model keeps traces bit-identical
//!
//! Light-specific faults ([`LightFaults`]) are deliberately
//! *liveness-only* and absorbed inside the port: a dropped witness is
//! refetched in the same call (the drop is budget-bounded, so the loop
//! terminates), and a lagging header push is recovered by the pull path
//! ([`LightPort::sync`]) before the session steps. Sessions therefore
//! observe the identical sequence of answers they would on a full-node
//! port under the same seed — which is what lets the scheduler's
//! light-mode reports be compared bit-for-bit against full-node runs —
//! while the retry/re-prove machinery still gets exercised and counted
//! in [`LightStats`].

use super::{ChainReader, SendOutcome, TxSubmitter};
use crate::faults::{ChainFaults, LightFaults, PoolFault, SubmitFault};
use sc_chain::{
    HeaderClient, ProofVerifyError, Receipt, SignedTransaction, Testnet, Transaction, TxError,
    Wallet,
};
use sc_primitives::{Address, H256, U256};
use std::collections::HashMap;

/// Witness-traffic counters for one light session — the observable cost
/// of statelessness (the bench's witness-bytes-per-session metric).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LightStats {
    /// Headers imported through the pull path (gossip pushes are
    /// counted by the network layer, not here).
    pub headers_pulled: u64,
    /// State witnesses (storage + account) fetched and verified.
    pub proofs_verified: u64,
    /// Receipt-inclusion witnesses verified against a tracked header.
    pub receipts_verified: u64,
    /// Witness fetches dropped in transit by the fault injector and
    /// refetched.
    pub proofs_dropped: u64,
    /// Total Merkle-path bytes downloaded across all verified
    /// witnesses.
    pub witness_bytes: u64,
}

impl LightStats {
    /// Folds another session's counters into this one (fleet totals).
    pub fn absorb(&mut self, other: &LightStats) {
        self.headers_pulled += other.headers_pulled;
        self.proofs_verified += other.proofs_verified;
        self.receipts_verified += other.receipts_verified;
        self.proofs_dropped += other.proofs_dropped;
        self.witness_bytes += other.witness_bytes;
    }
}

/// Chain access for a stateless session: a [`HeaderClient`] view plus
/// an untrusted relay node that serves witnesses and forwards
/// transactions. Implements [`ChainReader`] + [`TxSubmitter`], so a
/// `&mut LightPort` is a `dyn ChainAccess` like any [`ChainPort`]
/// variant — the session machines cannot tell the difference.
///
/// [`ChainPort`]: super::ChainPort
pub struct LightPort<'a> {
    /// The session's own verified-header view of the chain.
    pub client: &'a mut HeaderClient,
    /// The untrusted full node witnesses and submissions go through.
    pub relay: &'a mut Testnet,
    /// This session's chain fault schedule — the *same* streams a
    /// full-node port rolls, in the same order, so pinned chaos seeds
    /// replay unchanged.
    pub faults: &'a mut ChainFaults,
    /// Light-specific (liveness-only) fault schedule.
    pub light_faults: &'a mut LightFaults,
    /// The round's per-node transaction queue (shared with every other
    /// session homed on the relay).
    pub outbox: &'a mut Vec<(Address, SignedTransaction)>,
    /// Admission errors from the last flush, routed back by tx hash.
    pub rejections: &'a mut HashMap<H256, TxError>,
    /// Witness-traffic counters.
    pub stats: &'a mut LightStats,
}

impl LightPort<'_> {
    /// Pull path: walks the relay's canonical chain backwards from its
    /// head to the first header the client already tracks, then imports
    /// the gap oldest-first. Covers both a lagging gossip push and a
    /// reorg (the walk crosses the fork point, so the imported branch
    /// wins fork choice on the client too). A no-op when heads agree.
    pub fn sync(&mut self) {
        if self.client.head().hash == self.relay.head().hash {
            return;
        }
        let mut missing = Vec::new();
        let mut cur = self.relay.head().header();
        loop {
            if self.client.header_by_hash(cur.hash).is_some() {
                break;
            }
            let parent_hash = cur.parent_hash;
            let number = cur.number;
            missing.push(cur);
            if number == 0 {
                break;
            }
            match self.relay.block_by_hash(parent_hash) {
                Some(b) => cur = b.header(),
                None => break,
            }
        }
        for h in missing.into_iter().rev() {
            if self.client.import_header(h).is_ok() {
                self.stats.headers_pulled += 1;
            }
        }
    }

    /// One witness fetch through the fault injector: every drop costs
    /// light-fault budget and forces a refetch, so the loop is bounded
    /// by the budget and the *last* fetch always delivers.
    fn fetch<T>(&mut self, mut fetch: impl FnMut(&mut Testnet) -> T) -> T {
        let mut witness = fetch(self.relay);
        while self.light_faults.drop_proof() {
            self.stats.proofs_dropped += 1;
            witness = fetch(self.relay);
        }
        witness
    }
}

impl ChainReader for LightPort<'_> {
    /// The clock is ambient simulation time, not a proven quantity —
    /// the relay answers it, like any RPC node answers `now` queries
    /// for a wall-clock-less embedded client.
    fn now(&self) -> u64 {
        self.relay.now()
    }

    /// From the client's own verified head — no relay involved.
    fn head_timestamp(&self) -> u64 {
        self.client.head().timestamp
    }

    /// From the client's tracked headers; falls back to the head's
    /// timestamp for an untracked height, mirroring the full-node port.
    fn block_timestamp(&self, number: u64) -> u64 {
        self.client
            .header(number)
            .map_or_else(|| self.client.head().timestamp, |h| h.timestamp)
    }

    /// Even the "unverified" read path is proven on a light port: there
    /// is no local trie to fall back to, so the answer *is* the proven
    /// value. Anchoring failures surface as the zero value — the same
    /// thing a session would read from an absent slot — and the typed
    /// path ([`ChainReader::verified_storage_at`]) exists for callers
    /// that need to distinguish.
    fn storage_at(&mut self, a: Address, key: U256) -> U256 {
        self.verified_storage_at(a, key).unwrap_or(U256::ZERO)
    }

    /// Fetches a fresh storage witness from the relay and accepts the
    /// value only if its Merkle path checks out against the **client
    /// head's** `state_root` — strict anchoring, no fallback: a witness
    /// for any other root (a stale pre-reorg proof, a forged branch) is
    /// a typed error, never a value.
    fn verified_storage_at(&mut self, a: Address, key: U256) -> Result<U256, ProofVerifyError> {
        self.sync();
        let proof = self.fetch(|relay| relay.prove_storage(a, key));
        let value = self.client.verified_storage(&proof)?;
        self.stats.proofs_verified += 1;
        self.stats.witness_bytes += proof.witness_bytes() as u64;
        Ok(value)
    }

    /// A receipt is only surfaced once the relay can *prove* inclusion:
    /// the claimed block must be a tracked canonical header committing
    /// the transaction hash, and the receipt's Merkle path must check
    /// out against that header's `receipts_root`. Until then the answer
    /// is `None` and the retry task simply polls again — withholding is
    /// a liveness fault, not a forgery vector. The returned receipt's
    /// consensus encoding must equal the proven leaf byte-for-byte, so
    /// the relay cannot attach a doctored receipt to a valid path.
    fn receipt(&mut self, hash: H256) -> Option<Receipt> {
        self.sync();
        let proof = self.fetch(|relay| relay.prove_receipt(hash))?;
        self.client.verified_receipt(&proof).ok()?;
        let receipt = self.relay.receipt(hash)?.clone();
        if receipt.rlp_encode() != proof.receipt_rlp {
            return None;
        }
        self.stats.receipts_verified += 1;
        self.stats.witness_bytes += proof.witness_bytes() as u64;
        Some(receipt)
    }

    /// Advisory liveness signal, answered by the relay like the node
    /// port answers from its own pool. A lying relay could at worst
    /// trigger a spurious resubmission, which admission dedups by
    /// nonce — safety never rests on this answer.
    fn tx_known(&self, hash: H256) -> bool {
        self.relay.receipt(hash).is_some()
            || self.relay.tx_is_pending(hash)
            || self.outbox.iter().any(|(_, tx)| tx.hash() == hash)
    }
}

impl TxSubmitter for LightPort<'_> {
    /// Rolls the *same* fault streams in the same order as the
    /// shared/node port, then self-signs and queues into the relay's
    /// outbox. The nonce is the relay's mempool-aware advice, floored
    /// by the client-verified account witness — on an honest relay the
    /// advice already covers the proven nonce (it includes pooled
    /// transactions), so the choice is invisible; a relay advising a
    /// *stale* nonce is overridden by the proof.
    fn submit(
        &mut self,
        wallet: &Wallet,
        to: Option<Address>,
        value: U256,
        data: Vec<u8>,
        gas_limit: u64,
        gas_price: Option<U256>,
        roll_fault: bool,
    ) -> SendOutcome {
        if roll_fault {
            match self.faults.pre_submit() {
                SubmitFault::None => {}
                SubmitFault::Transient(_) => return SendOutcome::Transient,
                SubmitFault::MiningDelay(secs) => return SendOutcome::HeldFor(secs),
            }
            if self.relay.pool_enabled() {
                match self.faults.pre_pool() {
                    PoolFault::None => {}
                    PoolFault::DroppedGossip => return SendOutcome::Transient,
                    PoolFault::DelayedAdmission(secs) => return SendOutcome::HeldFor(secs),
                }
            }
        }
        self.sync();
        let advised = self.relay.effective_nonce(wallet.address);
        let address = wallet.address;
        let proof = self.fetch(|relay| relay.prove_account(address));
        let floor = match self.client.verified_account(&proof) {
            Ok((nonce, _balance)) => {
                self.stats.proofs_verified += 1;
                self.stats.witness_bytes += proof.witness_bytes() as u64;
                nonce
            }
            // An unanchorable account witness cannot *raise* the nonce;
            // fall back to the advice alone (admission rejects a wrong
            // guess deterministically, so this is liveness, not safety).
            Err(_) => 0,
        };
        let queued = self
            .outbox
            .iter()
            .filter(|(from, _)| *from == wallet.address)
            .count() as u64;
        let tx = Transaction {
            nonce: advised.max(floor) + queued,
            gas_price: gas_price.unwrap_or(self.relay.config().default_gas_price),
            gas_limit,
            to,
            value,
            data,
        };
        let signed = tx.sign(&wallet.key);
        let hash = signed.hash();
        self.outbox.push((wallet.address, signed));
        SendOutcome::Queued(hash)
    }

    fn take_rejection(&mut self, hash: H256) -> Option<TxError> {
        self.rejections.remove(&hash)
    }

    fn default_gas_price(&self) -> U256 {
        self.relay.config().default_gas_price
    }

    /// Light sessions are funded at genesis (see the trait docs); the
    /// delegation exists so standalone light harnesses can still mint.
    fn faucet(&mut self, a: Address, amount: U256) {
        self.relay.faucet(a, amount);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::session::{ChainAccess, ChainPort};
    use sc_primitives::ether;

    /// A funded chain, a synced client, and the session wallet.
    fn rig() -> (Testnet, HeaderClient, Wallet) {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        let client = HeaderClient::new(net.block(0).unwrap().header());
        (net, client, alice)
    }

    fn plan_with_light_faults() -> FaultPlan {
        FaultPlan {
            proof_drop_permille: 1000,
            light_fault_budget: 3,
            ..FaultPlan::none()
        }
    }

    #[test]
    fn light_port_submits_and_proves_receipt_end_to_end() {
        let (mut net, mut client, alice) = rig();
        let plan = FaultPlan::none();
        let mut faults = ChainFaults::new(&plan);
        let mut light_faults = LightFaults::new(&plan);
        let mut outbox = Vec::new();
        let mut rejections = HashMap::new();
        let mut stats = LightStats::default();

        // `PUSH1 42 PUSH1 1 SSTORE STOP` as initcode.
        let initcode = vec![0x60, 0x2a, 0x60, 0x01, 0x55, 0x00];
        let hash = {
            let mut port = LightPort {
                client: &mut client,
                relay: &mut net,
                faults: &mut faults,
                light_faults: &mut light_faults,
                outbox: &mut outbox,
                rejections: &mut rejections,
                stats: &mut stats,
            };
            match port.submit(&alice, None, U256::ZERO, initcode, 200_000, None, true) {
                SendOutcome::Queued(h) => h,
                _ => panic!("light submission queues"),
            }
        };

        // Flush the outbox the way the scheduler would and mine.
        let batch: Vec<SignedTransaction> = outbox.drain(..).map(|(_, tx)| tx).collect();
        let results = net.submit_batch(batch);
        assert!(results.iter().all(|r| r.is_ok()));
        net.mine_block();

        let mut port = LightPort {
            client: &mut client,
            relay: &mut net,
            faults: &mut faults,
            light_faults: &mut light_faults,
            outbox: &mut outbox,
            rejections: &mut rejections,
            stats: &mut stats,
        };
        // The receipt is only surfaced with a verified inclusion proof.
        let receipt = port.receipt(hash).expect("mined and provable");
        assert!(receipt.success);
        let contract = receipt.contract_address.expect("deployment");
        // And the read back is the proven value.
        assert_eq!(
            port.verified_storage_at(contract, U256::ONE).unwrap(),
            U256::from_u64(42)
        );
        assert_eq!(port.storage_at(contract, U256::ONE), U256::from_u64(42));
        assert!(stats.receipts_verified >= 1);
        assert!(stats.proofs_verified >= 2); // account witness + storage
        assert!(stats.witness_bytes > 0);
        assert!(stats.headers_pulled >= 1);
    }

    #[test]
    fn dropped_witnesses_are_refetched_within_the_call() {
        let (mut net, mut client, alice) = rig();
        let plan = plan_with_light_faults();
        let chain_plan = FaultPlan::none();
        let mut faults = ChainFaults::new(&chain_plan);
        let mut light_faults = LightFaults::new(&plan);
        let mut outbox = Vec::new();
        let mut rejections = HashMap::new();
        let mut stats = LightStats::default();
        let mut port = LightPort {
            client: &mut client,
            relay: &mut net,
            faults: &mut faults,
            light_faults: &mut light_faults,
            outbox: &mut outbox,
            rejections: &mut rejections,
            stats: &mut stats,
        };
        // 100% drop rate, budget 3: the first read burns the entire
        // budget on refetches and still answers.
        let balance_slot = U256::from_u64(7);
        let v = port
            .verified_storage_at(alice.address, balance_slot)
            .expect("refetch loop is budget-bounded and then delivers");
        assert_eq!(v, U256::ZERO);
        assert_eq!(stats.proofs_dropped, 3);
        assert_eq!(light_faults.remaining_budget(), 0);
    }

    #[test]
    fn light_port_is_a_chain_access_object() {
        // The coercion the scheduler relies on: &mut LightPort is a
        // &mut dyn ChainAccess exactly like &mut ChainPort.
        let (mut net, mut client, _alice) = rig();
        let plan = FaultPlan::none();
        let mut faults = ChainFaults::new(&plan);
        let mut light_faults = LightFaults::new(&plan);
        let mut outbox = Vec::new();
        let mut rejections = HashMap::new();
        let mut stats = LightStats::default();
        {
            let mut port = LightPort {
                client: &mut client,
                relay: &mut net,
                faults: &mut faults,
                light_faults: &mut light_faults,
                outbox: &mut outbox,
                rejections: &mut rejections,
                stats: &mut stats,
            };
            let access: &mut dyn ChainAccess = &mut port;
            assert_eq!(access.head_timestamp(), access.block_timestamp(0));
        }
        let mut flaky = crate::faults::FlakyNet::new(net, &plan);
        let mut port = ChainPort::Immediate(&mut flaky);
        let access: &mut dyn ChainAccess = &mut port;
        let _ = access.now();
    }
}
