//! The deploy/sign signature exchange as a resumable sub-machine.
//!
//! Bounded rounds of re-post + poll until both participants hold a
//! valid signature from each side. Candidates count only if they claim
//! the right sender *and* cryptographically recover to them, so dropped,
//! duplicated, corrupted and deliberately tampered messages are all
//! absorbed the same way: by waiting for a later round to deliver a good
//! copy. The posting half lives in the betting session (it is
//! strategy-dependent); this type owns the collection state.

use super::BusPort;
use crate::signedcopy::SignedCopy;
use sc_crypto::ecdsa::{recover_address, Signature};
use sc_primitives::{Address, H256};

/// Simulated seconds between signature-exchange rounds.
pub const SIGN_ROUND_SECS: u64 = 30;

/// Signature-exchange rounds before an honest participant gives up.
/// Exceeds any whisper fault budget's ability to suppress a re-posted
/// signature, and `16 × 30s` stays well inside the pre-T1 phase.
pub const MAX_SIGN_ROUNDS: u32 = 16;

/// Collection state of one two-party signature exchange:
/// `seen[reader][signer]` is the valid signature `reader` holds from
/// `signer`, once one arrived.
pub struct SignExchange {
    digest: H256,
    expected: [Address; 2],
    seen: [[Option<Signature>; 2]; 2],
    rounds_run: u32,
}

impl SignExchange {
    /// Starts an exchange over `digest` between the two `expected`
    /// signers (who are also the two readers).
    pub fn new(digest: H256, expected: [Address; 2]) -> SignExchange {
        SignExchange {
            digest,
            expected,
            seen: [[None, None], [None, None]],
            rounds_run: 0,
        }
    }

    /// Rounds completed so far.
    pub fn rounds_run(&self) -> u32 {
        self.rounds_run
    }

    /// Marks one post+poll round as completed.
    pub fn advance_round(&mut self) {
        self.rounds_run += 1;
    }

    /// Polls the topic for both readers and absorbs every candidate that
    /// verifies. Corruption and tampering both fail the recovery check
    /// and are simply ignored.
    pub fn absorb(&mut self, bus: &mut BusPort<'_>, topic: &str) {
        for (reader, me) in self.expected.into_iter().enumerate() {
            for env in bus.poll(me, topic) {
                let Ok(sig) = Signature::from_bytes(&env.payload) else {
                    continue; // truncated or corrupted beyond parsing
                };
                for (i, &who) in self.expected.iter().enumerate() {
                    if env.from == who
                        && self.seen[reader][i].is_none()
                        && recover_address(self.digest, &sig) == Ok(who)
                    {
                        self.seen[reader][i] = Some(sig);
                    }
                }
            }
        }
    }

    /// True once every reader holds a signature from every signer.
    pub fn complete(&self) -> bool {
        self.seen.iter().flatten().all(Option::is_some)
    }

    /// Runs each participant's assembled copy through full
    /// [`SignedCopy::verify`] (the off-chain mirror of
    /// `deployVerifiedInstance`'s checks).
    pub fn copies_verify(&self, bytecode: &[u8]) -> bool {
        self.seen.iter().all(|assembled| {
            let copy = SignedCopy {
                bytecode: bytecode.to_vec(),
                signatures: assembled.iter().copied().flatten().collect(),
            };
            copy.verify(&self.expected).is_ok()
        })
    }
}
