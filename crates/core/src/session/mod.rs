//! The session engine: protocol drivers as resumable state machines.
//!
//! PR 2 left the repo with two near-duplicate *blocking* drivers
//! ([`crate::protocol`] and [`crate::challenge_protocol`]), each owning
//! a private chain that mines one block per transaction. This module
//! extracts the shared machinery — deadline-driven retry with capped
//! backoff ([`retry`]), the signature re-post/verify exchange
//! ([`sign`]), transaction submission with receipt tracking and report
//! accumulation — and rewrites each protocol as a state machine that
//! makes *one bounded unit of progress per [`Session::step`] call* and
//! yields whenever it must wait for the clock or for a block.
//!
//! Yielding is what makes multi-tenancy possible: a
//! [`scheduler::SessionScheduler`] interleaves N heterogeneous sessions
//! (betting and challenge, honest and Byzantine, each under its own
//! [`FaultPlan`](crate::faults::FaultPlan) and whisper topic namespace)
//! over **one shared [`Testnet`]**, batching every session's pending
//! transactions into shared blocks via `submit_batch`. The legacy
//! single-session `run()` entry points survive as thin wrappers that
//! drive the same state machines in [`ChainPort::Immediate`] mode,
//! reproducing the old one-block-per-transaction behaviour exactly.

pub mod betting;
pub mod challenge;
pub mod light;
pub mod retry;
pub mod scheduler;
pub mod settle_later;
pub mod sign;

pub use betting::{BettingSession, BettingSessionParams};
pub use challenge::{ChallengeSession, ChallengeSessionParams};
pub use light::{LightPort, LightStats};
pub use retry::{TaskPoll, TxTask, BACKOFF_BASE_SECS, MAX_ATTEMPTS};
pub use scheduler::{
    BettingSpec, ChallengeSpec, SchedulerStats, SessionReport, SessionScheduler, SessionSpec,
};
pub use settle_later::{
    SettleLaterCrash, SettleLaterOutcome, SettleLaterSession, SettleLaterSessionParams,
    SettleLaterSpec,
};
pub use sign::{SignExchange, MAX_SIGN_ROUNDS, SIGN_ROUND_SECS};

use crate::faults::{
    ChainFaults, FaultyWhisper, FlakyNet, NetError, PoolFault, SubmitFault, WhisperFaults,
};
use crate::protocol::ProtocolError;
use crate::whisper::{Envelope, Whisper};
use sc_chain::{
    ProofVerifyError, Receipt, SignedTransaction, Testnet, Transaction, TxError, Wallet,
};
use sc_primitives::{Address, H256, U256};
use std::collections::HashMap;

/// What one [`Session::step`] call achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The machine advanced and can be stepped again immediately.
    Progress,
    /// A transaction was queued for the next shared block; step again
    /// after the block is mined. Never returned in immediate mode.
    Pending,
    /// Nothing to do until the chain clock reaches this timestamp.
    WaitUntil(u64),
    /// The session reached a terminal outcome.
    Done,
}

/// How a session reaches the chain.
///
/// The two variants are the whole difference between the legacy
/// single-tenant drivers and the scheduler: `Immediate` signs, submits
/// and mines one block per transaction on a session-private [`FlakyNet`]
/// (receipts are synchronous, injected mining delays move that chain's
/// clock); `Shared` self-signs against the mempool-aware nonce and
/// queues into the tick's shared outbox — the scheduler flushes all
/// sessions' queues into one `submit_batch` call and mines one shared
/// block, and injected mining delays become session-local waits so one
/// session's bad luck never moves the shared clock.
pub enum ChainPort<'a> {
    /// Legacy mode: a session-private chain; submissions mine instantly.
    Immediate(&'a mut FlakyNet),
    /// Scheduler mode: one shared chain, per-session fault schedule,
    /// shared outbox and admission-error routing.
    Shared {
        /// The shared chain.
        net: &'a mut Testnet,
        /// This session's chain fault schedule.
        faults: &'a mut ChainFaults,
        /// The tick's shared transaction queue, tagged with the sender so
        /// nonce assignment for a wallet's next tx in the same tick does
        /// not need to re-recover signers.
        outbox: &'a mut Vec<(Address, SignedTransaction)>,
        /// Admission errors from the last flush, routed back by tx hash.
        rejections: &'a mut HashMap<H256, TxError>,
    },
    /// Multi-node mode: the session is homed on one node of a gossiping
    /// network. Mechanically identical to `Shared` — self-sign, queue,
    /// flush — but reorg-aware: the home chain's head can *move
    /// backwards* when a heavier fork arrives, so verified reads
    /// re-prove against whatever the current head commits, and
    /// [`ChainPort::tx_known`] lets a task detect that its queued
    /// transaction was orphaned by a reorg (no receipt, no longer
    /// pooled) and resubmit instead of waiting forever.
    Node {
        /// The home node's chain.
        net: &'a mut Testnet,
        /// This session's chain fault schedule.
        faults: &'a mut ChainFaults,
        /// The round's per-node transaction queue.
        outbox: &'a mut Vec<(Address, SignedTransaction)>,
        /// Admission errors from the last flush, routed back by tx hash.
        rejections: &'a mut HashMap<H256, TxError>,
    },
}

/// Result of one [`TxSubmitter::submit`] attempt.
pub enum SendOutcome {
    /// The transaction was mined (immediate mode only).
    Landed(Receipt),
    /// The transaction joined the shared outbox (shared mode only);
    /// poll [`ChainPort::receipt`] after the next block.
    Queued(H256),
    /// An injected transient failure ate the submission; back off and
    /// retry.
    Transient,
    /// An injected mining delay: retry after this many seconds
    /// *without* a new fault roll (shared mode only — immediate mode
    /// applies the delay to its private clock internally).
    HeldFor(u64),
    /// The node rejected the transaction for a deterministic reason.
    Rejected(TxError),
}

/// The read half of the chain-access boundary: everything a session
/// needs to *observe* the chain. A full-node port answers from its own
/// state; a [`light::LightPort`] answers only what it can check against
/// a tracked header — which is why the mutating `&mut self` receivers
/// exist even for reads (a light reader fetches and verifies witnesses,
/// and may pull missing headers, on the way to an answer).
pub trait ChainReader {
    /// The timestamp the next block will carry.
    fn now(&self) -> u64;

    /// Timestamp of the current head block.
    fn head_timestamp(&self) -> u64;

    /// Timestamp of the block a receipt landed in (head's timestamp if
    /// the number is somehow unknown, which cannot happen for a mined
    /// receipt).
    fn block_timestamp(&self, number: u64) -> u64;

    /// Storage slot lookup. Full-node ports read their own trie; a
    /// light port returns the *proven* value of a fetched witness.
    fn storage_at(&mut self, a: Address, key: U256) -> U256;

    /// Light-verified storage read: the value is only returned after a
    /// Merkle proof for the slot checked out against the chain's
    /// `state_root` commitment.
    fn verified_storage_at(&mut self, a: Address, key: U256) -> Result<U256, ProofVerifyError>;

    /// Receipt of a previously queued transaction, once mined on the
    /// canonical chain. A reorg that orphans the transaction makes the
    /// receipt disappear again; a light port additionally refuses
    /// receipts it cannot prove included under a tracked header.
    fn receipt(&mut self, hash: H256) -> Option<Receipt>;

    /// True while the chain still knows about a queued transaction:
    /// mined (receipt), pooled (awaiting a block), or queued in this
    /// round's outbox. `false` means a reorg orphaned it *and* the new
    /// branch didn't re-include it — the task must resubmit.
    fn tx_known(&self, hash: H256) -> bool;
}

/// The write half of the chain-access boundary: submitting transactions
/// and observing their admission fate.
pub trait TxSubmitter {
    /// Submits one transaction through the session's fault schedule.
    /// `gas_price: None` bids the chain's default; tasks re-pricing
    /// after a fee-market rejection pass their raised bid. `roll_fault`
    /// is false when resuming after [`SendOutcome::HeldFor`] (that
    /// submission's fault was already drawn).
    #[allow(clippy::too_many_arguments)] // mirrors the Transaction fields
    fn submit(
        &mut self,
        wallet: &Wallet,
        to: Option<Address>,
        value: U256,
        data: Vec<u8>,
        gas_limit: u64,
        gas_price: Option<U256>,
        roll_fault: bool,
    ) -> SendOutcome;

    /// Takes the admission error routed back for a queued transaction,
    /// if its batch flush rejected it.
    fn take_rejection(&mut self, hash: H256) -> Option<TxError>;

    /// The gas price the chain's convenience senders assume — the
    /// starting bid for fee-market re-pricing.
    fn default_gas_price(&self) -> U256;

    /// Mints balance for a session wallet (scheduler-funded sessions).
    /// Multi-node and light sessions are funded at genesis instead — an
    /// out-of-band mint on one node would desynchronize replay
    /// verification of its blocks on every other node.
    fn faucet(&mut self, a: Address, amount: U256);
}

/// The full capability set a session steps against: reads + submission.
/// Blanket-implemented, so any `ChainReader + TxSubmitter` — the
/// [`ChainPort`] variants or a [`light::LightPort`] — is a
/// `dyn ChainAccess` without further ceremony.
pub trait ChainAccess: ChainReader + TxSubmitter {}

impl<T: ChainReader + TxSubmitter + ?Sized> ChainAccess for T {}

impl ChainReader for ChainPort<'_> {
    fn now(&self) -> u64 {
        match self {
            ChainPort::Immediate(net) => net.now(),
            ChainPort::Shared { net, .. } | ChainPort::Node { net, .. } => net.now(),
        }
    }

    fn head_timestamp(&self) -> u64 {
        match self {
            ChainPort::Immediate(net) => net.head().timestamp,
            ChainPort::Shared { net, .. } | ChainPort::Node { net, .. } => net.head().timestamp,
        }
    }

    fn block_timestamp(&self, number: u64) -> u64 {
        let lookup = |net: &Testnet| {
            net.block(number)
                .map_or_else(|| net.head().timestamp, |b| b.timestamp)
        };
        match self {
            ChainPort::Immediate(net) => lookup(net),
            ChainPort::Shared { net, .. } | ChainPort::Node { net, .. } => lookup(net),
        }
    }

    fn storage_at(&mut self, a: Address, key: U256) -> U256 {
        match self {
            ChainPort::Immediate(net) => net.storage_at(a, key),
            ChainPort::Shared { net, .. } | ChainPort::Node { net, .. } => net.storage_at(a, key),
        }
    }

    /// Light-verified storage read: fetches a Merkle proof for the slot
    /// and checks it against the chain's `state_root` commitment before
    /// returning the value, instead of trusting the node's storage map.
    ///
    /// When the live state still matches the sealed head (always true
    /// immediately after a block, which is when sessions read results),
    /// the proof is checked against the **head header's** `state_root` —
    /// exactly what a stateless light client would do. If other
    /// sessions' faucet funding has already moved the live state past
    /// the last seal, the proof necessarily anchors to the root the
    /// *next* header will commit; it still binds the value to the trie.
    /// In `Node` mode the anchoring is what makes reads reorg-safe: a
    /// proof generated before a reorg would anchor to the orphaned
    /// fork's root, but this method fetches a *fresh* proof from the
    /// live trie on every call, so after a rollback-and-replay it
    /// re-proves against exactly what the current head commits.
    fn verified_storage_at(&mut self, a: Address, key: U256) -> Result<U256, ProofVerifyError> {
        let net: &mut Testnet = match self {
            ChainPort::Immediate(net) => net,
            ChainPort::Shared { net, .. } | ChainPort::Node { net, .. } => net,
        };
        let proof = net.prove_storage(a, key);
        let sealed = net.head().state_root;
        let anchor = if proof.root == sealed {
            sealed
        } else {
            proof.root
        };
        proof.verify(anchor)?;
        Ok(proof.value)
    }

    /// Receipt of a previously queued transaction, once mined. In
    /// `Node` mode this reflects the *canonical* chain only: a reorg
    /// that orphans the transaction makes the receipt disappear again.
    fn receipt(&mut self, hash: H256) -> Option<Receipt> {
        match self {
            ChainPort::Immediate(net) => net.receipt(hash).cloned(),
            ChainPort::Shared { net, .. } | ChainPort::Node { net, .. } => {
                net.receipt(hash).cloned()
            }
        }
    }

    /// Single-chain modes can never lose a transaction, so `Immediate`
    /// and `Shared` are always `true` (which keeps pinned single-node
    /// chaos schedules untouched); only `Node` mode can answer `false`,
    /// after a reorg orphaned the transaction.
    fn tx_known(&self, hash: H256) -> bool {
        match self {
            ChainPort::Immediate(_) | ChainPort::Shared { .. } => true,
            ChainPort::Node { net, outbox, .. } => {
                net.receipt(hash).is_some()
                    || net.tx_is_pending(hash)
                    || outbox.iter().any(|(_, tx)| tx.hash() == hash)
            }
        }
    }
}

impl TxSubmitter for ChainPort<'_> {
    fn faucet(&mut self, a: Address, amount: U256) {
        match self {
            ChainPort::Immediate(net) => net.faucet(a, amount),
            ChainPort::Shared { net, .. } | ChainPort::Node { net, .. } => net.faucet(a, amount),
        }
    }

    fn take_rejection(&mut self, hash: H256) -> Option<TxError> {
        match self {
            ChainPort::Immediate(_) => None,
            ChainPort::Shared { rejections, .. } | ChainPort::Node { rejections, .. } => {
                rejections.remove(&hash)
            }
        }
    }

    fn default_gas_price(&self) -> U256 {
        match self {
            ChainPort::Immediate(net) => net.config().default_gas_price,
            ChainPort::Shared { net, .. } | ChainPort::Node { net, .. } => {
                net.config().default_gas_price
            }
        }
    }

    /// Immediate mode has no fee market and always pays the default
    /// price; shared and node modes self-sign against the mempool-aware
    /// nonce and queue into the tick's shared outbox.
    fn submit(
        &mut self,
        wallet: &Wallet,
        to: Option<Address>,
        value: U256,
        data: Vec<u8>,
        gas_limit: u64,
        gas_price: Option<U256>,
        roll_fault: bool,
    ) -> SendOutcome {
        match self {
            ChainPort::Immediate(net) => {
                let sent = match to {
                    Some(to) => net.execute(wallet, to, value, data, gas_limit),
                    None => net.deploy(wallet, data, value, gas_limit),
                };
                match sent {
                    Ok(r) => SendOutcome::Landed(r),
                    Err(NetError::Transient(_)) => SendOutcome::Transient,
                    Err(NetError::Rejected(e)) => SendOutcome::Rejected(e),
                }
            }
            ChainPort::Shared {
                net,
                faults,
                outbox,
                ..
            }
            | ChainPort::Node {
                net,
                faults,
                outbox,
                ..
            } => {
                if roll_fault {
                    match faults.pre_submit() {
                        SubmitFault::None => {}
                        SubmitFault::Transient(_) => return SendOutcome::Transient,
                        SubmitFault::MiningDelay(secs) => return SendOutcome::HeldFor(secs),
                    }
                    // Pool-level faults (separate stream and budget) fire
                    // only when the shared chain actually runs a pool.
                    if net.pool_enabled() {
                        match faults.pre_pool() {
                            PoolFault::None => {}
                            PoolFault::DroppedGossip => return SendOutcome::Transient,
                            PoolFault::DelayedAdmission(secs) => return SendOutcome::HeldFor(secs),
                        }
                    }
                }
                // Self-signing against the shared mempool: the nonce must
                // account for this wallet's queued-but-unflushed txs too.
                let queued = outbox
                    .iter()
                    .filter(|(from, _)| *from == wallet.address)
                    .count() as u64;
                let tx = Transaction {
                    nonce: net.effective_nonce(wallet.address) + queued,
                    gas_price: gas_price.unwrap_or(net.config().default_gas_price),
                    gas_limit,
                    to,
                    value,
                    data,
                };
                let signed = tx.sign(&wallet.key);
                let hash = signed.hash();
                outbox.push((wallet.address, signed));
                SendOutcome::Queued(hash)
            }
        }
    }
}

/// How a session reaches the off-chain message bus.
pub enum BusPort<'a> {
    /// Legacy mode: a session-private faulty bus.
    Owned(&'a mut FaultyWhisper),
    /// Scheduler mode: one shared bus, per-session fault schedule.
    Shared {
        /// The shared bus.
        bus: &'a mut Whisper,
        /// This session's whisper fault schedule.
        faults: &'a mut WhisperFaults,
    },
}

impl BusPort<'_> {
    /// Publishes through the session's fault schedule.
    pub fn post(&mut self, from: Address, topic: &str, payload: Vec<u8>) {
        match self {
            BusPort::Owned(w) => w.post(from, topic, payload),
            BusPort::Shared { bus, faults } => faults.post(bus, from, topic, payload),
        }
    }

    /// Polls unseen messages through the session's fault schedule.
    pub fn poll(&mut self, reader: Address, topic: &str) -> Vec<Envelope> {
        match self {
            BusPort::Owned(w) => w.poll(reader, topic),
            BusPort::Shared { bus, faults } => faults.poll(bus, reader, topic),
        }
    }
}

/// Everything a session may touch during one step.
///
/// The chain is a capability object, not a concrete port: sessions are
/// generic over *how* they reach the chain (a private [`ChainPort`], a
/// shared one, a networked node, or a stateless [`light::LightPort`])
/// and can only do what [`ChainReader`] + [`TxSubmitter`] allow.
pub struct SessionCtx<'a> {
    /// The chain, behind whichever capability stack homes this session.
    pub chain: &'a mut (dyn ChainAccess + 'a),
    /// The message bus, owned or shared.
    pub bus: BusPort<'a>,
}

/// A protocol session the scheduler can drive to completion.
pub trait Session {
    /// Makes one bounded unit of progress.
    fn step(&mut self, ctx: &mut SessionCtx<'_>) -> Result<StepOutcome, ProtocolError>;

    /// True once the session reached a terminal outcome.
    fn is_done(&self) -> bool;

    /// Short human label for the terminal outcome (`None` until done).
    fn outcome_label(&self) -> Option<&'static str>;

    /// Gas charged across every transaction this session sent.
    fn total_gas(&self) -> u64;

    /// `(label, success)` of every on-chain transaction, in order —
    /// the observable trace the determinism tests compare.
    fn tx_trace(&self) -> Vec<(String, bool)>;

    /// Off-chain messages this session attempted to post (pre-fault).
    fn messages_posted(&self) -> usize;

    /// Gas charged per protocol stage, bucketed by [`stage_bucket`]:
    /// `[deploy, deposit, submit, dispute]`. Sums to
    /// [`Session::total_gas`].
    fn gas_by_stage(&self) -> [u64; 4];
}

/// Declared gas limit for the dispute-resolution call. Its execution
/// cost grows linearly with the reveal weight (~290 gas per unit
/// measured), so the estimate scales the same way with headroom rather
/// than declaring the whole block — in pooled mode the packer budgets
/// blocks by *declared* gas, so honest estimates are what let disputes
/// share blocks. Capped at the default block gas limit so the
/// transaction stays admissible at any weight.
pub(crate) fn dispute_gas_limit(weight: u64) -> u64 {
    150_000_u64
        .saturating_add(weight.saturating_mul(350))
        .min(8_000_000)
}

/// Names of the four stage-gas buckets, index-aligned with
/// [`stage_bucket`] and [`Session::gas_by_stage`].
pub const STAGE_NAMES: [&str; 4] = ["deploy", "deposit", "submit", "dispute"];

/// Buckets a transaction label into the four-stage gas breakdown the
/// benches report: initial on-chain deployment, deposits, voluntary
/// settlement (result submission, refunds, reassignment, finalize),
/// and the dispute path (challenges, verified-instance deployment,
/// miner-enforced resolution).
pub fn stage_bucket(label: &str) -> usize {
    if label.starts_with("deploy on") {
        0
    } else if label.starts_with("deposit") || label == "activate" {
        1
    } else if matches!(
        label,
        "submitResult"
            | "reassign"
            | "refundRoundOne"
            | "refundRoundTwo"
            | "finalize"
            | "reclaimNoSubmission"
            | "settle"
            | "withdraw"
            | "reclaim"
    ) {
        2
    } else {
        // "challenge", "returnDisputeResolution", "deployVerifiedInstance"
        // (honest or forged) and anything unclassified: the dispute path.
        3
    }
}
