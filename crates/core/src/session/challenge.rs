//! The submit/challenge protocol variant as a resumable state machine.
//!
//! Mirrors [`crate::challenge_protocol::ChallengeGame`] phase for
//! phase: setup (deploy, stake + security deposits, wait out T2), then
//! the representative's submission, the challenge window, and the
//! escalation paths for a crashed representative (forced resolution for
//! a watching counterparty, stake reclamation for a sleeping one). The
//! behaviours — submit/watch strategies and the crash point — can be
//! bound after setup, which is how the legacy wrapper reproduces its
//! two-call `with_faults()` + `run_with_crash()` API on top of one
//! machine.

use super::{Session, SessionCtx, StepOutcome, TaskPoll, TxTask};
use crate::challenge_protocol::{
    ChallengeOutcome, ChallengeReport, ChallengeTx, CrashPoint, SubmitStrategy, WatchStrategy,
};
use crate::participant::Participant;
use crate::protocol::ProtocolError;
use crate::signedcopy::SignedCopy;
use sc_chain::Receipt;
use sc_contracts::challenge::{
    security_deposit, stake, ChallengeContracts, CHALLENGE_DEPLOYED_ADDR_SLOT,
};
use sc_contracts::{BetSecrets, Timeline};
use sc_primitives::{Address, U256};

/// Where the machine is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Fund wallets, wait out the staggered start, fix the timeline.
    Start,
    /// Alice deploys the on-chain challenge contract.
    Deploy,
    /// Deposit (stake + security deposit) of participant `0`/`1`.
    Deposit(usize),
    /// Wait out T2 so results can be submitted.
    AwaitT2,
    /// Setup complete; route on the bound behaviours.
    Ready,
    /// Crashed representative: wait out the stale deadline.
    StaleWait,
    /// The watcher forces resolution with the signed copy.
    StaleChallenge,
    /// `returnDisputeResolution` after a stale-deadline challenge.
    StaleResolve,
    /// Sleeping parties reclaim their own funds, `bob` then `alice`.
    Reclaim(usize),
    /// The representative submits the (possibly false) result.
    Submit,
    /// The watcher challenges inside the window.
    Challenge,
    /// `returnDisputeResolution` after an in-window challenge.
    ChallengeResolve,
    /// Wait out the unchallenged window.
    FinalizeWait,
    /// Whoever is still up finalizes.
    Finalize,
    /// Terminal.
    Done,
}

/// A mandatory send either landed successfully or tells the caller how
/// to hold; everything else already became a [`ProtocolError`].
enum Mandatory {
    /// The receipt landed and succeeded.
    Landed(Receipt),
    /// Still in flight — surface this outcome to the scheduler.
    Hold(StepOutcome),
}

/// Construction parameters for a [`ChallengeSession`].
pub struct ChallengeSessionParams {
    /// Participant 0 — the representative who submits.
    pub alice: Participant,
    /// Participant 1 — the watcher.
    pub bob: Participant,
    /// The private bet.
    pub secrets: BetSecrets,
    /// Challenge window in seconds.
    pub window: u64,
    /// Compiled contract pair (compile once, clone per session).
    pub contracts: ChallengeContracts,
    /// `Some` = use as-is (legacy); `None` = derive at session start.
    pub timeline: Option<Timeline>,
    /// Seconds after creation before the session begins deploying.
    pub start_delay: u64,
    /// Wei to mint per wallet at the first step (`None` = pre-funded).
    pub funding: Option<U256>,
    /// What the representative submits.
    pub submit: SubmitStrategy,
    /// What the watcher does during the window.
    pub watch: WatchStrategy,
    /// Whether (and when) the representative crashes.
    pub crash: CrashPoint,
}

/// One challenge-variant game as a pollable state machine.
pub struct ChallengeSession {
    /// Compiled contract pair.
    pub contracts: ChallengeContracts,
    /// Participant 0 (also the representative who submits).
    pub alice: Participant,
    /// Participant 1 (the watcher).
    pub bob: Participant,
    /// Deployed on-chain contract.
    pub onchain: Address,
    /// The signed off-chain initcode.
    pub bytecode: Vec<u8>,
    /// The game's T1/T2 windows (T3 unused by this variant).
    pub timeline: Timeline,
    secrets: BetSecrets,
    window: u64,
    submit: SubmitStrategy,
    watch: WatchStrategy,
    crash: CrashPoint,
    dynamic_timeline: bool,
    start_delay: u64,
    start_at: Option<u64>,
    funding: Option<U256>,
    phase: Phase,
    task: Option<TxTask>,
    proposed_at: u64,
    revealed: usize,
    txs: Vec<ChallengeTx>,
    outcome: Option<ChallengeOutcome>,
}

impl ChallengeSession {
    /// Builds the machine at its start state (nothing touched the chain
    /// yet; the off-chain initcode is derived immediately).
    pub fn new(params: ChallengeSessionParams) -> ChallengeSession {
        let bytecode = params.contracts.offchain_initcode(
            params.alice.wallet.address,
            params.bob.wallet.address,
            params.secrets,
        );
        let (timeline, dynamic_timeline) = match params.timeline {
            Some(t) => (t, false),
            None => (Timeline::starting_at(0, 3600), true),
        };
        ChallengeSession {
            contracts: params.contracts,
            alice: params.alice,
            bob: params.bob,
            onchain: Address::ZERO,
            bytecode,
            timeline,
            secrets: params.secrets,
            window: params.window,
            submit: params.submit,
            watch: params.watch,
            crash: params.crash,
            dynamic_timeline,
            start_delay: params.start_delay,
            start_at: None,
            funding: params.funding,
            phase: Phase::Start,
            task: None,
            proposed_at: 0,
            revealed: 0,
            txs: Vec::new(),
            outcome: None,
        }
    }

    /// Rebinds the behaviours. Only meaningful while the machine sits at
    /// `Ready` — the legacy wrapper finishes setup first, then binds the
    /// strategies its `run_with_crash()` caller chose.
    pub fn set_behaviour(
        &mut self,
        submit: SubmitStrategy,
        watch: WatchStrategy,
        crash: CrashPoint,
    ) {
        self.submit = submit;
        self.watch = watch;
        self.crash = crash;
    }

    /// True while the machine sits at the post-setup hold point.
    pub fn is_ready(&self) -> bool {
        self.phase == Phase::Ready
    }

    /// The fully signed copy of the off-chain contract.
    pub fn signed_copy(&self) -> SignedCopy {
        SignedCopy::create(
            self.bytecode.clone(),
            &[&self.alice.wallet.key, &self.bob.wallet.key],
        )
    }

    /// The terminal outcome, once the session is done.
    pub fn outcome(&self) -> Option<ChallengeOutcome> {
        self.outcome
    }

    /// Builds the run report.
    pub fn report(&self) -> ChallengeReport {
        ChallengeReport {
            txs: self.txs.clone(),
            outcome: self.outcome.expect("session not finished"),
            winner_is_bob: self.secrets.winner_is_bob(),
            offchain_bytes_revealed: self.revealed,
        }
    }

    fn record(&mut self, label: &str, sender: Address, r: &Receipt) {
        self.txs.push(ChallengeTx {
            label: label.into(),
            sender,
            gas_used: r.gas_used,
            success: r.success,
        });
    }

    fn finish(&mut self, outcome: ChallengeOutcome) -> StepOutcome {
        self.outcome = Some(outcome);
        self.phase = Phase::Done;
        StepOutcome::Done
    }

    fn claimed(&self) -> bool {
        let truth = self.secrets.winner_is_bob();
        match self.submit {
            SubmitStrategy::Truthful => truth,
            SubmitStrategy::False => !truth,
        }
    }

    /// The address the miner-enforced resolution instance was deployed
    /// to by a successful `challenge()` — read *light-client style*:
    /// the `deployedAddr` slot is fetched with a Merkle proof and
    /// verified against the header's `state_root` commitment rather
    /// than trusted from the node's storage map.
    fn challenge_instance(&self, ctx: &mut SessionCtx<'_>) -> Result<Address, ProtocolError> {
        let slot = U256::from_u64(CHALLENGE_DEPLOYED_ADDR_SLOT);
        let value = ctx
            .chain
            .verified_storage_at(self.onchain, slot)
            .map_err(|e| ProtocolError::StateUnverified(format!("deployedAddr: {e}")))?;
        Ok(Address::from_u256(value))
    }

    /// Polls the current task; a landed receipt is recorded and must be
    /// successful, anything else (deadline, rejection, revert) is a
    /// protocol failure. This is the common shape of every mandatory
    /// send in this variant — the legacy driver `.expect()`ed them all.
    fn poll_mandatory(
        &mut self,
        ctx: &mut SessionCtx<'_>,
        sender: Address,
    ) -> Result<Mandatory, ProtocolError> {
        let task = self.task.as_mut().expect("task set");
        let label = task.label();
        match task.poll(ctx.chain) {
            TaskPoll::Landed(r) => {
                self.task = None;
                self.record(label, sender, &r);
                if !r.success {
                    return Err(ProtocolError::TxFailed(label.into()));
                }
                Ok(Mandatory::Landed(r))
            }
            TaskPoll::Pending => Ok(Mandatory::Hold(StepOutcome::Pending)),
            TaskPoll::Wait(t) => Ok(Mandatory::Hold(StepOutcome::WaitUntil(t))),
            TaskPoll::DeadlineMissed => Err(ProtocolError::TxFailed(label.into())),
            TaskPoll::Rejected(e) => Err(ProtocolError::TxFailed(format!("{label}: {e}"))),
        }
    }

    /// Makes one bounded unit of progress.
    pub fn step(&mut self, ctx: &mut SessionCtx<'_>) -> Result<StepOutcome, ProtocolError> {
        match self.phase {
            Phase::Start => {
                if let Some(amount) = self.funding.take() {
                    ctx.chain.faucet(self.alice.wallet.address, amount);
                    ctx.chain.faucet(self.bob.wallet.address, amount);
                }
                let now = ctx.chain.now();
                let start = *self.start_at.get_or_insert(now + self.start_delay);
                if now < start {
                    return Ok(StepOutcome::WaitUntil(start));
                }
                if self.dynamic_timeline {
                    self.timeline = Timeline::starting_at(now, 3600);
                }
                self.phase = Phase::Deploy;
                Ok(StepOutcome::Progress)
            }

            Phase::Deploy => {
                if self.task.is_none() {
                    let initcode = self.contracts.onchain_initcode(
                        self.alice.wallet.address,
                        self.bob.wallet.address,
                        self.timeline,
                        self.window,
                    );
                    self.task = Some(TxTask::new(
                        "deploy onChainChallenge",
                        self.alice.wallet.clone(),
                        None,
                        U256::ZERO,
                        initcode,
                        1_700_000,
                        None,
                    ));
                }
                let sender = self.alice.wallet.address;
                match self.poll_mandatory(ctx, sender)? {
                    Mandatory::Landed(r) => {
                        self.onchain = r.contract_address.expect("created");
                        self.phase = Phase::Deposit(0);
                        Ok(StepOutcome::Progress)
                    }
                    Mandatory::Hold(h) => Ok(h),
                }
            }

            Phase::Deposit(idx) => {
                if idx >= 2 {
                    self.phase = Phase::AwaitT2;
                    return Ok(StepOutcome::Progress);
                }
                let wallet = if idx == 0 {
                    self.alice.wallet.clone()
                } else {
                    self.bob.wallet.clone()
                };
                if self.task.is_none() {
                    self.task = Some(TxTask::new(
                        "deposit",
                        wallet.clone(),
                        Some(self.onchain),
                        stake().wrapping_add(security_deposit()),
                        self.contracts.deposit(),
                        400_000,
                        Some(self.timeline.t1),
                    ));
                }
                match self.poll_mandatory(ctx, wallet.address)? {
                    Mandatory::Landed(_) => {
                        self.phase = Phase::Deposit(idx + 1);
                        Ok(StepOutcome::Progress)
                    }
                    Mandatory::Hold(h) => Ok(h),
                }
            }

            Phase::AwaitT2 => {
                // Move past T2 so results can be submitted.
                let now = ctx.chain.now();
                if now <= self.timeline.t2 {
                    return Ok(StepOutcome::WaitUntil(self.timeline.t2 + 60));
                }
                self.phase = Phase::Ready;
                Ok(StepOutcome::Progress)
            }

            Phase::Ready => {
                // Route on the (possibly re-bound) behaviours. A crashed
                // representative never submits; everyone else does.
                self.phase = if self.crash == CrashPoint::BeforeSubmit {
                    Phase::StaleWait
                } else {
                    Phase::Submit
                };
                Ok(StepOutcome::Progress)
            }

            Phase::StaleWait => {
                // No result ever arrives; the counterparty waits out the
                // stale deadline, then escalates per its watch strategy.
                let stale_deadline = self.timeline.t2 + self.window;
                let now = ctx.chain.now();
                if now <= stale_deadline {
                    return Ok(StepOutcome::WaitUntil(stale_deadline + 60));
                }
                self.phase = match self.watch {
                    WatchStrategy::Vigilant | WatchStrategy::Frivolous => Phase::StaleChallenge,
                    WatchStrategy::Asleep => Phase::Reclaim(0),
                };
                Ok(StepOutcome::Progress)
            }

            Phase::StaleChallenge => {
                // Force the miner-enforced resolution with the signed
                // copy — the crashed side's stake is not a hostage.
                if self.task.is_none() {
                    let copy = self.signed_copy();
                    let data = self.contracts.challenge(
                        &copy.bytecode,
                        &copy.signatures[0],
                        &copy.signatures[1],
                    );
                    self.task = Some(TxTask::new(
                        "challenge",
                        self.bob.wallet.clone(),
                        Some(self.onchain),
                        U256::ZERO,
                        data,
                        600_000,
                        None,
                    ));
                }
                let sender = self.bob.wallet.address;
                match self.poll_mandatory(ctx, sender)? {
                    Mandatory::Landed(_) => {
                        self.revealed = self.bytecode.len();
                        self.phase = Phase::StaleResolve;
                        Ok(StepOutcome::Progress)
                    }
                    Mandatory::Hold(h) => Ok(h),
                }
            }

            Phase::StaleResolve | Phase::ChallengeResolve => {
                if self.task.is_none() {
                    let instance = self.challenge_instance(ctx)?;
                    self.task = Some(TxTask::new(
                        "returnDisputeResolution",
                        self.bob.wallet.clone(),
                        Some(instance),
                        U256::ZERO,
                        self.contracts.return_dispute_resolution(self.onchain),
                        super::dispute_gas_limit(self.secrets.weight),
                        None,
                    ));
                }
                let sender = self.bob.wallet.address;
                match self.poll_mandatory(ctx, sender)? {
                    Mandatory::Landed(_) => Ok(self.finish(ChallengeOutcome::ResolvedByChallenge)),
                    Mandatory::Hold(h) => Ok(h),
                }
            }

            Phase::Reclaim(idx) => {
                if idx >= 2 {
                    return Ok(self.finish(ChallengeOutcome::ReclaimedStale));
                }
                // The watcher first, then the (restarted) representative.
                let wallet = if idx == 0 {
                    self.bob.wallet.clone()
                } else {
                    self.alice.wallet.clone()
                };
                if self.task.is_none() {
                    self.task = Some(TxTask::new(
                        "reclaimNoSubmission",
                        wallet.clone(),
                        Some(self.onchain),
                        U256::ZERO,
                        self.contracts.reclaim_no_submission(),
                        400_000,
                        None,
                    ));
                }
                match self.poll_mandatory(ctx, wallet.address)? {
                    Mandatory::Landed(_) => {
                        self.phase = Phase::Reclaim(idx + 1);
                        Ok(StepOutcome::Progress)
                    }
                    Mandatory::Hold(h) => Ok(h),
                }
            }

            Phase::Submit => {
                if self.task.is_none() {
                    self.task = Some(TxTask::new(
                        "submitResult",
                        self.alice.wallet.clone(),
                        Some(self.onchain),
                        U256::ZERO,
                        self.contracts.submit_result(self.claimed()),
                        400_000,
                        None,
                    ));
                }
                let sender = self.alice.wallet.address;
                match self.poll_mandatory(ctx, sender)? {
                    Mandatory::Landed(r) => {
                        // The challenge window opens at the block that
                        // mined the submission (mining delays included).
                        self.proposed_at = ctx.chain.block_timestamp(r.block_number);
                        let wants_challenge = match self.watch {
                            WatchStrategy::Vigilant => {
                                self.claimed() != self.secrets.winner_is_bob()
                            }
                            WatchStrategy::Asleep => false,
                            WatchStrategy::Frivolous => true,
                        };
                        self.phase = if wants_challenge {
                            Phase::Challenge
                        } else {
                            Phase::FinalizeWait
                        };
                        Ok(StepOutcome::Progress)
                    }
                    Mandatory::Hold(h) => Ok(h),
                }
            }

            Phase::Challenge => {
                // Bob challenges with the signed copy inside the window.
                // This send is *not* mandatory: a challenge that cannot
                // land before the window closes (injected delays), is
                // rejected outright, or lands reverted degrades to the
                // finalize path.
                if self.task.is_none() {
                    let copy = self.signed_copy();
                    let data = self.contracts.challenge(
                        &copy.bytecode,
                        &copy.signatures[0],
                        &copy.signatures[1],
                    );
                    self.task = Some(TxTask::new(
                        "challenge",
                        self.bob.wallet.clone(),
                        Some(self.onchain),
                        U256::ZERO,
                        data,
                        600_000,
                        Some(self.proposed_at + self.window),
                    ));
                }
                let sender = self.bob.wallet.address;
                let task = self.task.as_mut().expect("task set");
                match task.poll(ctx.chain) {
                    TaskPoll::Landed(r) => {
                        self.task = None;
                        self.record("challenge", sender, &r);
                        self.phase = if r.success {
                            self.revealed = self.bytecode.len();
                            Phase::ChallengeResolve
                        } else {
                            Phase::FinalizeWait
                        };
                        Ok(StepOutcome::Progress)
                    }
                    TaskPoll::Pending => Ok(StepOutcome::Pending),
                    TaskPoll::Wait(t) => Ok(StepOutcome::WaitUntil(t)),
                    TaskPoll::DeadlineMissed | TaskPoll::Rejected(_) => {
                        self.task = None;
                        self.phase = Phase::FinalizeWait;
                        Ok(StepOutcome::Progress)
                    }
                }
            }

            Phase::FinalizeWait => {
                // Window passes quietly (or the challenge missed it).
                let window_end = self.proposed_at + self.window;
                let now = ctx.chain.now();
                if now <= window_end {
                    return Ok(StepOutcome::WaitUntil(window_end + 60));
                }
                self.phase = Phase::Finalize;
                Ok(StepOutcome::Progress)
            }

            Phase::Finalize => {
                // Whoever is still up finalizes — the crashed
                // representative cannot, the watcher can.
                let wallet = if self.crash == CrashPoint::AfterSubmit {
                    self.bob.wallet.clone()
                } else {
                    self.alice.wallet.clone()
                };
                if self.task.is_none() {
                    self.task = Some(TxTask::new(
                        "finalize",
                        wallet.clone(),
                        Some(self.onchain),
                        U256::ZERO,
                        self.contracts.finalize(),
                        300_000,
                        None,
                    ));
                }
                match self.poll_mandatory(ctx, wallet.address)? {
                    Mandatory::Landed(_) => {
                        let outcome = if self.claimed() == self.secrets.winner_is_bob() {
                            ChallengeOutcome::FinalizedUnchallenged
                        } else {
                            ChallengeOutcome::LieStood
                        };
                        Ok(self.finish(outcome))
                    }
                    Mandatory::Hold(h) => Ok(h),
                }
            }

            Phase::Done => Ok(StepOutcome::Done),
        }
    }
}

impl Session for ChallengeSession {
    fn step(&mut self, ctx: &mut SessionCtx<'_>) -> Result<StepOutcome, ProtocolError> {
        ChallengeSession::step(self, ctx)
    }

    fn is_done(&self) -> bool {
        self.outcome.is_some()
    }

    fn outcome_label(&self) -> Option<&'static str> {
        self.outcome.map(|o| match o {
            ChallengeOutcome::FinalizedUnchallenged => "finalized-unchallenged",
            ChallengeOutcome::ResolvedByChallenge => "resolved-by-challenge",
            ChallengeOutcome::LieStood => "lie-stood",
            ChallengeOutcome::ReclaimedStale => "reclaimed-stale",
        })
    }

    fn total_gas(&self) -> u64 {
        self.txs.iter().map(|t| t.gas_used).sum()
    }

    fn tx_trace(&self) -> Vec<(String, bool)> {
        self.txs
            .iter()
            .map(|t| (t.label.clone(), t.success))
            .collect()
    }

    fn messages_posted(&self) -> usize {
        0 // this variant exchanges no off-chain messages in-protocol
    }

    fn gas_by_stage(&self) -> [u64; 4] {
        let mut buckets = [0u64; 4];
        for t in &self.txs {
            buckets[super::stage_bucket(&t.label)] += t.gas_used;
        }
        buckets
    }
}
