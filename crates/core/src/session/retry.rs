//! Deadline-driven transaction retry as a pollable task.
//!
//! Both legacy drivers carried a private copy of the same blocking loop:
//! try to send, back off exponentially on injected transient failures,
//! give up when the contract window closes or a deterministic rejection
//! arrives. [`TxTask`] is that loop turned inside out — each
//! [`TxTask::poll`] makes at most one submission attempt and reports
//! what the caller should do next, so a scheduler can interleave many
//! sessions' retries instead of blocking on one.

use super::{ChainAccess, SendOutcome};
use crate::faults::MAX_INJECTED_SECS;
use sc_chain::{Receipt, TxError, Wallet};
use sc_primitives::{Address, H256, U256};

/// Most submission attempts per task. Far above any fault budget, so
/// exhaustion implies a deterministic failure, not bad luck.
pub const MAX_ATTEMPTS: u32 = 64;

/// First retry backoff in seconds (doubles, capped at
/// [`MAX_INJECTED_SECS`]).
pub const BACKOFF_BASE_SECS: u64 = 15;

/// What one [`TxTask::poll`] concluded.
#[derive(Debug)]
pub enum TaskPoll {
    /// The transaction was mined; here is its receipt (possibly a
    /// revert — the caller decides what a failure means).
    Landed(Receipt),
    /// The transaction is queued for the next shared block; poll again
    /// after it is mined.
    Pending,
    /// Back off: poll again once the chain clock reaches this timestamp.
    Wait(u64),
    /// The contract window closed (or attempts ran out) before the
    /// transaction could land.
    DeadlineMissed,
    /// The node rejected the transaction deterministically.
    Rejected(TxError),
}

/// One transaction being pushed toward the chain through faults and
/// deadlines. Create it when a protocol phase needs a send; poll it
/// every step until it resolves.
pub struct TxTask {
    label: &'static str,
    wallet: Wallet,
    to: Option<Address>,
    value: U256,
    data: Vec<u8>,
    gas: u64,
    /// The current gas-price bid: `None` until a fee-market rejection
    /// forces a raise (pooled shared mode), then the raised price. Each
    /// raise is strictly higher, so re-pricing terminates — either the
    /// transaction out-bids the market or the sender's balance check
    /// turns the rejection deterministic.
    gas_price: Option<U256>,
    deadline: Option<u64>,
    backoff: u64,
    attempts: u32,
    /// Set after an injected mining delay in shared mode: the fault for
    /// this submission was already drawn, so the resumed attempt must
    /// not roll again (that would double-draw the fault stream).
    skip_fault_roll: bool,
    in_flight: Option<H256>,
}

impl TxTask {
    /// Describes a transaction to be sent. `to: None` deploys `data` as
    /// initcode; `deadline: None` retries without a window.
    pub fn new(
        label: &'static str,
        wallet: Wallet,
        to: Option<Address>,
        value: U256,
        data: Vec<u8>,
        gas: u64,
        deadline: Option<u64>,
    ) -> TxTask {
        TxTask {
            label,
            wallet,
            to,
            value,
            data,
            gas,
            gas_price: None,
            deadline,
            backoff: BACKOFF_BASE_SECS,
            attempts: 0,
            skip_fault_roll: false,
            in_flight: None,
        }
    }

    /// The label this transaction is recorded under.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// The sending address.
    pub fn sender(&self) -> Address {
        self.wallet.address
    }

    /// Makes at most one submission attempt (or checks on an in-flight
    /// queued transaction) and reports how to proceed. Generic over the
    /// chain capability, so the same retry machine drives a private
    /// chain, a shared one, a networked node, or a light relay.
    pub fn poll(&mut self, chain: &mut (dyn ChainAccess + '_)) -> TaskPoll {
        if let Some(hash) = self.in_flight {
            // Receipt first: on a multi-node chain a transaction can be
            // mined via a *gossiped* block and still show up in the
            // eviction log when the pool prunes its now-stale nonce. A
            // mined transaction is done — a routed rejection for it is a
            // stale price signal, not a failure. (Single-chain modes
            // never produce both, so the order is observationally
            // unchanged there.)
            if let Some(r) = chain.receipt(hash) {
                self.in_flight = None;
                let _ = chain.take_rejection(hash);
                return TaskPoll::Landed(r);
            }
            if let Some(e) = chain.take_rejection(hash) {
                self.in_flight = None;
                // Fee-market rejections (pooled mode) are price signals,
                // not protocol failures: raise the bid and resubmit.
                match e {
                    TxError::Underpriced { required } => {
                        return self.reprice(chain, required);
                    }
                    TxError::PoolFull { must_exceed } => {
                        return self.reprice(chain, bumped(must_exceed));
                    }
                    TxError::Evicted => {
                        let current = self.gas_price.unwrap_or_else(|| chain.default_gas_price());
                        return self.reprice(chain, bumped(current));
                    }
                    other => return TaskPoll::Rejected(other),
                }
            }
            if chain.tx_known(hash) {
                return TaskPoll::Pending;
            }
            // The transaction vanished: a reorg orphaned it and the new
            // branch didn't re-include it (node mode only — single-chain
            // ports report every queued transaction as known). Fall
            // through to resubmission against the new canonical chain,
            // still bounded by the deadline and the attempt cap.
            self.in_flight = None;
        }
        if let Some(d) = self.deadline {
            if chain.now() >= d {
                return TaskPoll::DeadlineMissed;
            }
        }
        if self.attempts >= MAX_ATTEMPTS {
            // Unreachable while MAX_ATTEMPTS exceeds every fault budget,
            // but bounded regardless: a task can stall, never hang.
            return TaskPoll::DeadlineMissed;
        }
        self.attempts += 1;
        let roll = !self.skip_fault_roll;
        self.skip_fault_roll = false;
        match chain.submit(
            &self.wallet,
            self.to,
            self.value,
            self.data.clone(),
            self.gas,
            self.gas_price,
            roll,
        ) {
            SendOutcome::Landed(r) => TaskPoll::Landed(r),
            SendOutcome::Queued(hash) => {
                self.in_flight = Some(hash);
                TaskPoll::Pending
            }
            SendOutcome::Transient => {
                // The injected failure consumed fault budget; wait it out
                // and try again.
                let at = chain.now() + self.backoff;
                self.backoff = (self.backoff * 2).min(MAX_INJECTED_SECS);
                TaskPoll::Wait(at)
            }
            SendOutcome::HeldFor(secs) => {
                // A mining delay holds only this session back; the
                // submission itself is still owed, without a re-roll.
                self.attempts -= 1;
                self.skip_fault_roll = true;
                TaskPoll::Wait(chain.now() + secs)
            }
            SendOutcome::Rejected(e) => TaskPoll::Rejected(e),
        }
    }

    /// Raises the bid to `new_price` (never lowering it) and backs off
    /// before resubmitting. Consumes an attempt, so a sender that keeps
    /// losing the fee market stalls deterministically instead of
    /// spinning.
    fn reprice(&mut self, chain: &(dyn ChainAccess + '_), new_price: U256) -> TaskPoll {
        let current = self.gas_price.unwrap_or_else(|| chain.default_gas_price());
        self.gas_price = Some(if new_price > current {
            new_price
        } else {
            current
        });
        let at = chain.now() + self.backoff;
        self.backoff = (self.backoff * 2).min(MAX_INJECTED_SECS);
        TaskPoll::Wait(at)
    }
}

/// A strictly-higher bid: +25% and one wei, so repeated bumps grow
/// geometrically from any starting price (including zero).
fn bumped(price: U256) -> U256 {
    let (q, _) = price
        .wrapping_mul(U256::from_u64(5))
        .div_rem(U256::from_u64(4));
    q.wrapping_add(U256::ONE)
}
