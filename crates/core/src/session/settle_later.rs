//! The confidential settle-later protocol as a resumable state machine.
//!
//! Two parties open a confidential channel on the
//! [`confidentialDeposit`](sc_contracts::confidential) contract: public
//! stakes, committed claims (Pedersen commitment + range proof, no
//! amount in calldata), and an activation step that pins the
//! conservation anchor. The *outcome* never touches the chain while
//! both parties are live — they exchange a co-signed
//! [`SettlementVoucher`] over whisper, and **either** participant
//! (including one that crashed right after co-signing and came back, or
//! one stranded behind a partition) submits it on-chain later. The
//! contract burns one nullifier per voucher digest, so a double
//! submission — same voucher from both parties, possibly racing across
//! nodes — settles exactly once and every replay reverts.
//!
//! The machine drives both wallets, mirroring the other session
//! variants: crash and double-submit behaviour are spec knobs routed at
//! the settle phase, whisper faults stress the voucher exchange, and an
//! exchange that never completes degrades to the post-deadline reclaim
//! path.

use super::sign::{SignExchange, MAX_SIGN_ROUNDS, SIGN_ROUND_SECS};
use super::{Session, SessionCtx, StepOutcome, TaskPoll, TxTask};
use crate::protocol::ProtocolError;
use sc_chain::{Receipt, Wallet};
use sc_confidential::{CommitmentBackend, PedersenBackend, SettlementVoucher, SignedVoucher};
use sc_contracts::confidential::{ConfidentialContracts, ConfidentialParams};
use sc_crypto::keccak256;
use sc_crypto::secp256k1::{n as curve_order, scalar};
use sc_primitives::{Address, U256};

/// Whether (and which) participant crashes after co-signing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SettleLaterCrash {
    /// Both parties stay up.
    #[default]
    None,
    /// Party A goes dark right after the voucher exchange: B submits
    /// the voucher alone and A never withdraws (their share stays
    /// claimable in the contract).
    AAfterCosign,
}

/// Specification of one settle-later session.
#[derive(Debug, Clone)]
pub struct SettleLaterSpec {
    /// Party A's stake in units.
    pub units_a: u64,
    /// Party B's stake in units.
    pub units_b: u64,
    /// Units the voucher moves from A to B.
    pub delta_units: u64,
    /// Wei per unit.
    pub unit_scale: u64,
    /// Range-proof width for deposit commitments.
    pub range_bits: u32,
    /// `false` skips the voucher exchange entirely: the channel times
    /// out and both parties reclaim their stakes.
    pub exchange_voucher: bool,
    /// Crash behaviour after co-signing.
    pub crash: SettleLaterCrash,
    /// Both parties submit the same voucher (the second lands as a
    /// nullifier revert).
    pub double_submit: bool,
    /// Seconds between co-signing and the on-chain submission — the
    /// "later" in settle-later.
    pub settle_delay: u64,
    /// Reclaim deadline, seconds after deployment.
    pub deadline_secs: u64,
    /// `Some(seed)` injects that deterministic fault schedule.
    pub fault_seed: Option<u64>,
    /// Seconds after scheduler start before this session begins.
    pub start_delay: u64,
}

impl Default for SettleLaterSpec {
    fn default() -> Self {
        SettleLaterSpec {
            units_a: 30,
            units_b: 12,
            delta_units: 9,
            unit_scale: 1_000_000_000, // 1 gwei per unit
            range_bits: 16,
            exchange_voucher: true,
            crash: SettleLaterCrash::None,
            double_submit: false,
            settle_delay: 900,
            deadline_secs: 7200,
            fault_seed: None,
            start_delay: 0,
        }
    }
}

/// Terminal outcome of a settle-later session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SettleLaterOutcome {
    /// The voucher landed (submitted by whoever was up) and every live
    /// party withdrew its opening.
    Settled,
    /// Both parties submitted; the first won the nullifier, the
    /// replay reverted, withdrawals still went through.
    SettledDoubleSubmit,
    /// No voucher ever completed; both stakes were reclaimed after the
    /// deadline.
    ReclaimedUnsettled,
}

/// One on-chain transaction of a settle-later run.
#[derive(Debug, Clone)]
struct SettleTx {
    label: String,
    gas_used: u64,
    success: bool,
}

/// Where the machine is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Fund wallets, wait out the staggered start.
    Start,
    /// Deploy the confidential-deposit contract.
    Deploy,
    /// Public stake of participant `0`/`1`.
    Fund(usize),
    /// Committed claim (+ range proof) of participant `0`/`1`.
    Deposit(usize),
    /// Pin the conservation anchor.
    Activate,
    /// Off-chain voucher co-signing over whisper.
    Exchange,
    /// Hold the co-signed voucher off-chain for `settle_delay`.
    SettleHold,
    /// Submission `idx` of the submitter list (double submit = 2).
    Settle(usize),
    /// Withdrawal of participant `0`/`1` (crashed parties skip).
    Withdraw(usize),
    /// No voucher: wait out the reclaim deadline.
    AwaitDeadline,
    /// Post-deadline stake reclamation of participant `0`/`1`.
    Reclaim(usize),
    /// Terminal.
    Done,
}

/// Construction parameters for a [`SettleLaterSession`].
pub struct SettleLaterSessionParams {
    /// Party A's wallet.
    pub alice: Wallet,
    /// Party B's wallet.
    pub bob: Wallet,
    /// Behaviour knobs.
    pub spec: SettleLaterSpec,
    /// Whisper topic for the voucher exchange.
    pub topic: String,
    /// Compiled contract (compile once, clone per session).
    pub contracts: ConfidentialContracts,
    /// Wei to mint per wallet at the first step (`None` = pre-funded).
    pub funding: Option<U256>,
}

/// One confidential settle-later channel as a pollable state machine.
pub struct SettleLaterSession {
    contracts: ConfidentialContracts,
    alice: Wallet,
    bob: Wallet,
    spec: SettleLaterSpec,
    topic: String,
    funding: Option<U256>,
    /// Deployed contract address.
    pub onchain: Address,
    params: Option<ConfidentialParams>,
    phase: Phase,
    task: Option<TxTask>,
    exchange: Option<SignExchange>,
    start_at: Option<u64>,
    settle_at: u64,
    posts: usize,
    txs: Vec<SettleTx>,
    outcome: Option<SettleLaterOutcome>,
}

/// A mandatory send either landed successfully or tells the caller how
/// to hold; everything else already became a [`ProtocolError`].
enum Mandatory {
    Landed(Receipt),
    Hold(StepOutcome),
}

/// A session-deterministic blinding scalar: every run derives the same
/// commitments from the same topic, which is what keeps chaos replays
/// bit-identical.
fn derive_blinding(topic: &str, tag: &str) -> U256 {
    let mut buf = Vec::with_capacity(topic.len() + tag.len() + 1);
    buf.extend_from_slice(topic.as_bytes());
    buf.push(b'|');
    buf.extend_from_slice(tag.as_bytes());
    scalar::reduce(keccak256(&buf).to_u256())
}

impl SettleLaterSession {
    /// Builds the machine at its start state.
    pub fn new(params: SettleLaterSessionParams) -> SettleLaterSession {
        SettleLaterSession {
            contracts: params.contracts,
            alice: params.alice,
            bob: params.bob,
            spec: params.spec,
            topic: params.topic,
            funding: params.funding,
            onchain: Address::ZERO,
            params: None,
            phase: Phase::Start,
            task: None,
            exchange: None,
            start_at: None,
            settle_at: 0,
            posts: 0,
            txs: Vec::new(),
            outcome: None,
        }
    }

    /// The terminal outcome, once the session is done.
    pub fn outcome(&self) -> Option<SettleLaterOutcome> {
        self.outcome
    }

    /// The channel parameters, fixed at deploy time.
    fn channel(&self) -> ConfidentialParams {
        self.params.expect("channel deployed")
    }

    /// Input blindings: A's derives from the topic, B's cancels it so
    /// the deposit commitments sum to `potUnits·G`.
    fn input_blindings(&self) -> (U256, U256) {
        let ra = derive_blinding(&self.topic, "in-a");
        (ra, curve_order().wrapping_sub(ra))
    }

    /// Output blindings, same cancellation.
    fn output_blindings(&self) -> (U256, U256) {
        let ra = derive_blinding(&self.topic, "out-a");
        (ra, curve_order().wrapping_sub(ra))
    }

    /// The final split the voucher encodes.
    fn final_units(&self) -> (u64, u64) {
        (
            self.spec.units_a - self.spec.delta_units,
            self.spec.units_b + self.spec.delta_units,
        )
    }

    /// The settlement voucher both parties sign.
    fn voucher(&self) -> SettlementVoucher {
        let backend = PedersenBackend;
        let (va, vb) = self.final_units();
        let (ra, rb) = self.output_blindings();
        SettlementVoucher {
            contract: self.onchain,
            out_a: backend.commit(U256::from_u64(va), ra),
            out_b: backend.commit(U256::from_u64(vb), rb),
        }
    }

    /// The co-signed voucher (the exchange phase simulates delivery;
    /// the signatures themselves are deterministic).
    fn signed_voucher(&self) -> SignedVoucher {
        self.voucher().co_sign(&self.alice.key, &self.bob.key)
    }

    /// The submitter order at the settle phase.
    fn submitters(&self) -> Vec<Wallet> {
        match (self.spec.crash, self.spec.double_submit) {
            (SettleLaterCrash::AAfterCosign, _) => vec![self.bob.clone()],
            (SettleLaterCrash::None, true) => vec![self.alice.clone(), self.bob.clone()],
            (SettleLaterCrash::None, false) => vec![self.alice.clone()],
        }
    }

    fn record(&mut self, label: &str, r: &Receipt) {
        self.txs.push(SettleTx {
            label: label.into(),
            gas_used: r.gas_used,
            success: r.success,
        });
    }

    fn finish(&mut self, outcome: SettleLaterOutcome) -> StepOutcome {
        self.outcome = Some(outcome);
        self.phase = Phase::Done;
        StepOutcome::Done
    }

    /// Polls the current task; a landed receipt is recorded and must be
    /// successful, anything else is a protocol failure.
    fn poll_mandatory(&mut self, ctx: &mut SessionCtx<'_>) -> Result<Mandatory, ProtocolError> {
        let task = self.task.as_mut().expect("task set");
        let label = task.label();
        match task.poll(ctx.chain) {
            TaskPoll::Landed(r) => {
                self.task = None;
                self.record(label, &r);
                if !r.success {
                    return Err(ProtocolError::TxFailed(label.into()));
                }
                Ok(Mandatory::Landed(r))
            }
            TaskPoll::Pending => Ok(Mandatory::Hold(StepOutcome::Pending)),
            TaskPoll::Wait(t) => Ok(Mandatory::Hold(StepOutcome::WaitUntil(t))),
            TaskPoll::DeadlineMissed => Err(ProtocolError::TxFailed(label.into())),
            TaskPoll::Rejected(e) => Err(ProtocolError::TxFailed(format!("{label}: {e}"))),
        }
    }

    /// Makes one bounded unit of progress.
    pub fn step(&mut self, ctx: &mut SessionCtx<'_>) -> Result<StepOutcome, ProtocolError> {
        match self.phase {
            Phase::Start => {
                if let Some(amount) = self.funding.take() {
                    ctx.chain.faucet(self.alice.address, amount);
                    ctx.chain.faucet(self.bob.address, amount);
                }
                let now = ctx.chain.now();
                let start = *self.start_at.get_or_insert(now + self.spec.start_delay);
                if now < start {
                    return Ok(StepOutcome::WaitUntil(start));
                }
                self.phase = Phase::Deploy;
                Ok(StepOutcome::Progress)
            }

            Phase::Deploy => {
                if self.task.is_none() {
                    let p = *self.params.get_or_insert(ConfidentialParams {
                        units_a: self.spec.units_a,
                        units_b: self.spec.units_b,
                        unit_scale: U256::from_u64(self.spec.unit_scale),
                        range_bits: self.spec.range_bits,
                        deadline: ctx.chain.now() + self.spec.deadline_secs,
                    });
                    let initcode = self
                        .contracts
                        .initcode(self.alice.address, self.bob.address, p);
                    self.task = Some(TxTask::new(
                        "deploy onConfidentialDeposit",
                        self.alice.clone(),
                        None,
                        U256::ZERO,
                        initcode,
                        5_000_000,
                        None,
                    ));
                }
                match self.poll_mandatory(ctx)? {
                    Mandatory::Landed(r) => {
                        self.onchain = r.contract_address.expect("created");
                        self.phase = Phase::Fund(0);
                        Ok(StepOutcome::Progress)
                    }
                    Mandatory::Hold(h) => Ok(h),
                }
            }

            Phase::Fund(idx) => {
                if idx >= 2 {
                    self.phase = Phase::Deposit(0);
                    return Ok(StepOutcome::Progress);
                }
                let p = self.channel();
                let (wallet, units) = if idx == 0 {
                    (self.alice.clone(), p.units_a)
                } else {
                    (self.bob.clone(), p.units_b)
                };
                if self.task.is_none() {
                    self.task = Some(TxTask::new(
                        "deposit stake",
                        wallet,
                        Some(self.onchain),
                        p.stake_wei(units),
                        self.contracts.fund(),
                        300_000,
                        Some(p.deadline),
                    ));
                }
                match self.poll_mandatory(ctx)? {
                    Mandatory::Landed(_) => {
                        self.phase = Phase::Fund(idx + 1);
                        Ok(StepOutcome::Progress)
                    }
                    Mandatory::Hold(h) => Ok(h),
                }
            }

            Phase::Deposit(idx) => {
                if idx >= 2 {
                    self.phase = Phase::Activate;
                    return Ok(StepOutcome::Progress);
                }
                let p = self.channel();
                let backend = PedersenBackend;
                let (r_a, r_b) = self.input_blindings();
                let (wallet, units, r) = if idx == 0 {
                    (self.alice.clone(), p.units_a, r_a)
                } else {
                    (self.bob.clone(), p.units_b, r_b)
                };
                if self.task.is_none() {
                    let c = backend.commit(U256::from_u64(units), r);
                    let proof = backend
                        .prove_range(U256::from_u64(units), r, p.range_bits)
                        .ok_or_else(|| {
                            ProtocolError::TxFailed("stake exceeds range width".into())
                        })?;
                    self.task = Some(TxTask::new(
                        "depositCommitted",
                        wallet,
                        Some(self.onchain),
                        U256::ZERO,
                        self.contracts
                            .deposit_committed(&c, p.range_bits, proof.as_bytes()),
                        2_500_000,
                        Some(p.deadline),
                    ));
                }
                match self.poll_mandatory(ctx)? {
                    Mandatory::Landed(_) => {
                        self.phase = Phase::Deposit(idx + 1);
                        Ok(StepOutcome::Progress)
                    }
                    Mandatory::Hold(h) => Ok(h),
                }
            }

            Phase::Activate => {
                if self.task.is_none() {
                    let p = self.channel();
                    let backend = PedersenBackend;
                    let (r_a, r_b) = self.input_blindings();
                    let c_a = backend.commit(U256::from_u64(p.units_a), r_a);
                    let c_b = backend.commit(U256::from_u64(p.units_b), r_b);
                    let sum = backend.add(&c_a, &c_b);
                    self.task = Some(TxTask::new(
                        "activate",
                        self.alice.clone(),
                        Some(self.onchain),
                        U256::ZERO,
                        self.contracts.activate(&sum),
                        600_000,
                        Some(p.deadline),
                    ));
                }
                match self.poll_mandatory(ctx)? {
                    Mandatory::Landed(_) => {
                        self.phase = Phase::Exchange;
                        Ok(StepOutcome::Progress)
                    }
                    Mandatory::Hold(h) => Ok(h),
                }
            }

            Phase::Exchange => {
                if !self.spec.exchange_voucher {
                    self.phase = Phase::AwaitDeadline;
                    return Ok(StepOutcome::Progress);
                }
                let digest = self.voucher().digest();
                let expected = [self.alice.address, self.bob.address];
                if self.exchange.is_none() {
                    self.exchange = Some(SignExchange::new(digest, expected));
                }
                // One exchange round: both parties (re-)post their
                // voucher signature, then absorb whatever the faulty bus
                // delivered.
                let sig_a = self.voucher().sign(&self.alice.key);
                let sig_b = self.voucher().sign(&self.bob.key);
                let topic = self.topic.clone();
                ctx.bus
                    .post(self.alice.address, &topic, sig_a.to_bytes().to_vec());
                ctx.bus
                    .post(self.bob.address, &topic, sig_b.to_bytes().to_vec());
                self.posts += 2;
                let deadline = self.channel().deadline;
                let ex = self.exchange.as_mut().expect("exchange started");
                ex.absorb(&mut ctx.bus, &topic);
                ex.advance_round();
                if ex.complete() {
                    self.settle_at = ctx.chain.now() + self.spec.settle_delay;
                    self.phase = Phase::SettleHold;
                    return Ok(StepOutcome::Progress);
                }
                let now = ctx.chain.now();
                if ex.rounds_run() >= MAX_SIGN_ROUNDS || now + SIGN_ROUND_SECS >= deadline {
                    // The bus ate every copy: no co-signed voucher exists,
                    // fall back to the timeout path.
                    self.phase = Phase::AwaitDeadline;
                    return Ok(StepOutcome::Progress);
                }
                Ok(StepOutcome::WaitUntil(now + SIGN_ROUND_SECS))
            }

            Phase::SettleHold => {
                // The voucher lives off-chain; nobody is in a hurry. A
                // crash in this window is exactly what settle-later
                // absorbs: the voucher is all either party needs.
                let now = ctx.chain.now();
                if now < self.settle_at {
                    return Ok(StepOutcome::WaitUntil(self.settle_at));
                }
                self.phase = Phase::Settle(0);
                Ok(StepOutcome::Progress)
            }

            Phase::Settle(idx) => {
                let submitters = self.submitters();
                if idx >= submitters.len() {
                    self.phase = Phase::Withdraw(0);
                    return Ok(StepOutcome::Progress);
                }
                if self.task.is_none() {
                    let signed = self.signed_voucher();
                    self.task = Some(TxTask::new(
                        "settle",
                        submitters[idx].clone(),
                        Some(self.onchain),
                        U256::ZERO,
                        self.contracts.settle(&signed),
                        1_500_000,
                        None,
                    ));
                }
                if idx == 0 {
                    // The first submission must land and succeed.
                    match self.poll_mandatory(ctx)? {
                        Mandatory::Landed(_) => {
                            self.phase = Phase::Settle(idx + 1);
                            Ok(StepOutcome::Progress)
                        }
                        Mandatory::Hold(h) => Ok(h),
                    }
                } else {
                    // The replay must land and *revert*: the nullifier is
                    // burned. A second success would be a double
                    // settlement — a protocol violation, not bad luck.
                    let task = self.task.as_mut().expect("task set");
                    match task.poll(ctx.chain) {
                        TaskPoll::Landed(r) => {
                            self.task = None;
                            self.record("settle", &r);
                            if r.success {
                                return Err(ProtocolError::TxFailed(
                                    "voucher settled twice".into(),
                                ));
                            }
                            self.phase = Phase::Settle(idx + 1);
                            Ok(StepOutcome::Progress)
                        }
                        TaskPoll::Pending => Ok(StepOutcome::Pending),
                        TaskPoll::Wait(t) => Ok(StepOutcome::WaitUntil(t)),
                        TaskPoll::DeadlineMissed | TaskPoll::Rejected(_) => {
                            self.task = None;
                            self.phase = Phase::Settle(idx + 1);
                            Ok(StepOutcome::Progress)
                        }
                    }
                }
            }

            Phase::Withdraw(idx) => {
                if idx >= 2 {
                    let outcome = if self.spec.double_submit {
                        SettleLaterOutcome::SettledDoubleSubmit
                    } else {
                        SettleLaterOutcome::Settled
                    };
                    return Ok(self.finish(outcome));
                }
                if idx == 0 && self.spec.crash == SettleLaterCrash::AAfterCosign {
                    // A is still dark; their share stays claimable.
                    self.phase = Phase::Withdraw(1);
                    return Ok(StepOutcome::Progress);
                }
                let (va, vb) = self.final_units();
                let (ra, rb) = self.output_blindings();
                let (wallet, v, r) = if idx == 0 {
                    (self.alice.clone(), va, ra)
                } else {
                    (self.bob.clone(), vb, rb)
                };
                if self.task.is_none() {
                    self.task = Some(TxTask::new(
                        "withdraw",
                        wallet,
                        Some(self.onchain),
                        U256::ZERO,
                        self.contracts.withdraw(U256::from_u64(v), r),
                        600_000,
                        None,
                    ));
                }
                match self.poll_mandatory(ctx)? {
                    Mandatory::Landed(_) => {
                        self.phase = Phase::Withdraw(idx + 1);
                        Ok(StepOutcome::Progress)
                    }
                    Mandatory::Hold(h) => Ok(h),
                }
            }

            Phase::AwaitDeadline => {
                let deadline = self.channel().deadline;
                let now = ctx.chain.now();
                if now < deadline {
                    return Ok(StepOutcome::WaitUntil(deadline + 60));
                }
                self.phase = Phase::Reclaim(0);
                Ok(StepOutcome::Progress)
            }

            Phase::Reclaim(idx) => {
                if idx >= 2 {
                    return Ok(self.finish(SettleLaterOutcome::ReclaimedUnsettled));
                }
                let wallet = if idx == 0 {
                    self.alice.clone()
                } else {
                    self.bob.clone()
                };
                if self.task.is_none() {
                    self.task = Some(TxTask::new(
                        "reclaim",
                        wallet,
                        Some(self.onchain),
                        U256::ZERO,
                        self.contracts.reclaim(),
                        300_000,
                        None,
                    ));
                }
                match self.poll_mandatory(ctx)? {
                    Mandatory::Landed(_) => {
                        self.phase = Phase::Reclaim(idx + 1);
                        Ok(StepOutcome::Progress)
                    }
                    Mandatory::Hold(h) => Ok(h),
                }
            }

            Phase::Done => Ok(StepOutcome::Done),
        }
    }
}

impl Session for SettleLaterSession {
    fn step(&mut self, ctx: &mut SessionCtx<'_>) -> Result<StepOutcome, ProtocolError> {
        SettleLaterSession::step(self, ctx)
    }

    fn is_done(&self) -> bool {
        self.outcome.is_some()
    }

    fn outcome_label(&self) -> Option<&'static str> {
        self.outcome.map(|o| match o {
            SettleLaterOutcome::Settled => "settled",
            SettleLaterOutcome::SettledDoubleSubmit => "settled-double-submit",
            SettleLaterOutcome::ReclaimedUnsettled => "reclaimed-unsettled",
        })
    }

    fn total_gas(&self) -> u64 {
        self.txs.iter().map(|t| t.gas_used).sum()
    }

    fn tx_trace(&self) -> Vec<(String, bool)> {
        self.txs
            .iter()
            .map(|t| (t.label.clone(), t.success))
            .collect()
    }

    fn messages_posted(&self) -> usize {
        self.posts
    }

    fn gas_by_stage(&self) -> [u64; 4] {
        let mut buckets = [0u64; 4];
        for t in &self.txs {
            buckets[super::stage_bucket(&t.label)] += t.gas_used;
        }
        buckets
    }
}
