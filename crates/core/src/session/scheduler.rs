//! Multiplexes N heterogeneous protocol sessions over one shared chain.
//!
//! Each [`SessionSpec`] becomes a slot holding a boxed [`Session`] state
//! machine plus that session's private fault schedules. One scheduler
//! *tick* wakes every slot whose wait expired, steps each runnable slot
//! until it yields, then flushes every session's queued transactions
//! into a single `submit_batch` call and mines **one shared block** —
//! the multi-tenancy the paper's design implies but the legacy
//! one-chain-per-game drivers never exercised. When nothing is runnable
//! and nothing is queued, the clock jumps straight to the earliest wait
//! target, so hour-long contract windows cost nothing to simulate.
//!
//! Determinism: slots are stepped in fixed index order, each slot owns
//! its own seeded [`FaultPlan`] streams, wallets derive from the slot
//! id, and whisper traffic is namespaced per session via
//! [`Topic::scoped`] — two runs from identical specs produce identical
//! chains, traces and outcomes.

use super::{
    BettingSession, BettingSessionParams, BusPort, ChainPort, ChallengeSession,
    ChallengeSessionParams, Session, SessionCtx, SettleLaterSession, SettleLaterSessionParams,
    SettleLaterSpec, StepOutcome,
};
use crate::challenge_protocol::{CrashPoint, SubmitStrategy, WatchStrategy};
use crate::faults::{ChainFaults, FaultPlan, WhisperFaults};
use crate::participant::{Participant, Strategy};
use crate::protocol::GameConfig;
use crate::whisper::{Topic, Whisper};
use sc_chain::{PoolConfig, SignedTransaction, Testnet, TxError};
use sc_contracts::challenge::ChallengeContracts;
use sc_contracts::confidential::ConfidentialContracts;
use sc_contracts::{BetSecrets, OffChainContract, OnChainContract};
use sc_primitives::{ether, Address, H256};
use std::collections::HashMap;

/// Ticks before the scheduler declares itself stalled and panics with a
/// state dump. Every tick does real work (a step, a block, or a clock
/// jump), so even 256 fault-ridden sessions finish in a few thousand.
const MAX_TICKS: u64 = 2_000_000;

/// Specification of one betting-variant session.
#[derive(Debug, Clone)]
pub struct BettingSpec {
    /// Participant 0's strategy.
    pub alice: Strategy,
    /// Participant 1's strategy.
    pub bob: Strategy,
    /// The private bet.
    pub secrets: BetSecrets,
    /// Seconds between T0→T1→T2→T3.
    pub phase_seconds: u64,
    /// `Some(seed)` injects that deterministic fault schedule.
    pub fault_seed: Option<u64>,
    /// Seconds after scheduler start before this session begins.
    pub start_delay: u64,
}

impl Default for BettingSpec {
    fn default() -> Self {
        BettingSpec {
            alice: Strategy::Honest,
            bob: Strategy::Honest,
            secrets: GameConfig::default().secrets,
            phase_seconds: 3600,
            fault_seed: None,
            start_delay: 0,
        }
    }
}

/// Specification of one challenge-variant session.
#[derive(Debug, Clone)]
pub struct ChallengeSpec {
    /// The private bet.
    pub secrets: BetSecrets,
    /// Challenge window in seconds.
    pub window: u64,
    /// What the representative submits.
    pub submit: SubmitStrategy,
    /// What the watcher does during the window.
    pub watch: WatchStrategy,
    /// Whether (and when) the representative crashes.
    pub crash: CrashPoint,
    /// `Some(seed)` injects that deterministic fault schedule.
    pub fault_seed: Option<u64>,
    /// Seconds after scheduler start before this session begins.
    pub start_delay: u64,
}

impl Default for ChallengeSpec {
    fn default() -> Self {
        ChallengeSpec {
            secrets: GameConfig::default().secrets,
            window: 1800,
            submit: SubmitStrategy::Truthful,
            watch: WatchStrategy::Vigilant,
            crash: CrashPoint::None,
            fault_seed: None,
            start_delay: 0,
        }
    }
}

/// One session to multiplex: which protocol variant, with which knobs.
#[derive(Debug, Clone)]
pub enum SessionSpec {
    /// A four-stage betting game.
    Betting(BettingSpec),
    /// A submit/challenge game.
    Challenge(ChallengeSpec),
    /// A confidential channel settled later by voucher.
    SettleLater(SettleLaterSpec),
}

/// Terminal record of one multiplexed session. `PartialEq` because the
/// light-session acceptance test compares whole reports bit-for-bit
/// against a full-node run under the same seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionReport {
    /// Slot index (also the wallet-seed and topic namespace).
    pub id: usize,
    /// `"betting"`, `"challenge"` or `"settle-later"`.
    pub kind: &'static str,
    /// Outcome label, `None` if the session failed.
    pub outcome: Option<&'static str>,
    /// Protocol error, for failed sessions.
    pub error: Option<String>,
    /// Gas charged across every transaction the session sent.
    pub total_gas: u64,
    /// Gas per protocol stage `[deploy, deposit, submit, dispute]`
    /// (see [`super::stage_bucket`]); sums to `total_gas`.
    pub stage_gas: [u64; 4],
    /// `(label, success)` of every on-chain transaction, in order.
    pub txs: Vec<(String, bool)>,
    /// Off-chain messages the session attempted to post.
    pub messages_posted: usize,
}

/// Aggregate chain-level statistics of one scheduler run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerStats {
    /// Shared blocks mined (only non-empty flushes mine).
    pub blocks_mined: u64,
    /// Transactions admitted into those blocks.
    pub txs_mined: u64,
    /// Scheduler ticks executed.
    pub ticks: u64,
    /// Transactions displaced from the pool (capacity eviction or
    /// same-nonce replacement) and routed back for re-pricing. Always 0
    /// in outbox mode.
    pub pool_evicted: u64,
}

impl SchedulerStats {
    /// Mean admitted transactions per shared block — the batching
    /// metric: above 1 means sessions genuinely share blocks.
    pub fn mean_txs_per_block(&self) -> f64 {
        self.txs_mined as f64 / (self.blocks_mined.max(1)) as f64
    }
}

/// Where one slot stands between ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Step it this tick.
    Runnable,
    /// Asleep until the shared clock reaches the target.
    Waiting(u64),
    /// Has a transaction in the shared outbox / mempool.
    Pending,
    /// Finished with a valid outcome.
    Done,
    /// Finished with a protocol error.
    Failed,
}

/// One multiplexed session plus its private fault state.
struct Slot {
    session: Box<dyn Session>,
    kind: &'static str,
    chain_faults: ChainFaults,
    whisper_faults: WhisperFaults,
    state: SlotState,
    error: Option<String>,
}

/// Compiled contracts shared across sessions of one run (compiled once
/// per variant, cloned into each session that needs them).
#[derive(Default)]
pub(crate) struct ContractCache {
    betting: Option<(OnChainContract, OffChainContract)>,
    challenge: Option<ChallengeContracts>,
    confidential: Option<ConfidentialContracts>,
}

/// The deterministic wallets a session slot plays with, derivable from
/// the slot id alone — what lets a multi-node run pre-fund every
/// participant at genesis, before the session even exists.
pub(crate) fn session_wallets(id: usize) -> [sc_chain::Wallet; 2] {
    [
        sc_chain::Wallet::from_seed(&format!("s{id}-alice")),
        sc_chain::Wallet::from_seed(&format!("s{id}-bob")),
    ]
}

/// Builds one session state machine from its spec.
///
/// `topic` namespaces the session's off-chain traffic on the shared
/// bus; `funding` is minted to each participant at the session's first
/// step — `None` when the wallets are pre-funded at genesis, which
/// multi-node runs require (an out-of-band mint on one node would break
/// replay verification of its blocks everywhere else).
///
/// Returns the boxed machine, its kind label, and the fault seed.
pub(crate) fn build_session(
    id: usize,
    spec: SessionSpec,
    topic: String,
    funding: Option<sc_primitives::U256>,
    contracts: &mut ContractCache,
) -> (Box<dyn Session>, &'static str, Option<u64>) {
    match spec {
        SessionSpec::Betting(s) => {
            let pair = contracts
                .betting
                .get_or_insert_with(|| (OnChainContract::new(), OffChainContract::new()))
                .clone();
            let session = BettingSession::new(BettingSessionParams {
                alice: Participant::with_strategy(&format!("s{id}-alice"), s.alice),
                bob: Participant::with_strategy(&format!("s{id}-bob"), s.bob),
                config: GameConfig {
                    phase_seconds: s.phase_seconds,
                    secrets: s.secrets,
                },
                topic,
                contracts: pair,
                timeline: None,
                start_delay: s.start_delay,
                funding,
            });
            (
                Box::new(session) as Box<dyn Session>,
                "betting",
                s.fault_seed,
            )
        }
        SessionSpec::Challenge(s) => {
            let pair = contracts
                .challenge
                .get_or_insert_with(ChallengeContracts::new)
                .clone();
            let session = ChallengeSession::new(ChallengeSessionParams {
                alice: Participant::honest(&format!("s{id}-alice")),
                bob: Participant::honest(&format!("s{id}-bob")),
                secrets: s.secrets,
                window: s.window,
                contracts: pair,
                timeline: None,
                start_delay: s.start_delay,
                funding,
                submit: s.submit,
                watch: s.watch,
                crash: s.crash,
            });
            (
                Box::new(session) as Box<dyn Session>,
                "challenge",
                s.fault_seed,
            )
        }
        SessionSpec::SettleLater(s) => {
            let contracts = contracts
                .confidential
                .get_or_insert_with(ConfidentialContracts::new)
                .clone();
            let [alice, bob] = session_wallets(id);
            let fault_seed = s.fault_seed;
            let session = SettleLaterSession::new(SettleLaterSessionParams {
                alice,
                bob,
                spec: s,
                topic,
                contracts,
                funding,
            });
            (
                Box::new(session) as Box<dyn Session>,
                "settle-later",
                fault_seed,
            )
        }
    }
}

/// Drives N sessions to completion over one shared [`Testnet`] and one
/// shared [`Whisper`] bus.
pub struct SessionScheduler {
    net: Testnet,
    bus: Whisper,
    slots: Vec<Slot>,
    rejections: HashMap<H256, TxError>,
    stats: SchedulerStats,
    /// True after [`SessionScheduler::new_pooled`]: flushes admit into
    /// the chain's mempool and the miner packs blocks under the gas
    /// limit, holding up to `patience` seconds to coalesce traffic.
    pooled: bool,
    /// Pooled mode: how long the miner may hold the oldest pooled
    /// transaction while jumping the clock to upcoming wake targets so
    /// more sessions' transactions land in the same block.
    patience: u64,
}

impl SessionScheduler {
    /// Builds a scheduler over a fresh chain. Contracts are compiled
    /// once per variant and cloned into each session; wallets derive
    /// from the slot id (`"s<id>-alice"` / `"s<id>-bob"`) and are funded
    /// with 1000 ether each at the session's first step.
    pub fn new(specs: Vec<SessionSpec>) -> SessionScheduler {
        let mut contracts = ContractCache::default();
        let slots = specs
            .into_iter()
            .enumerate()
            .map(|(id, spec)| {
                let (session, kind, seed) = build_session(
                    id,
                    spec,
                    Topic::scoped(id as u64, "signed-copy"),
                    Some(ether(1000)),
                    &mut contracts,
                );
                let plan = match seed {
                    Some(seed) => FaultPlan::from_seed(seed),
                    None => FaultPlan::none(),
                };
                Slot {
                    session,
                    kind,
                    chain_faults: ChainFaults::new(&plan),
                    whisper_faults: WhisperFaults::new(&plan),
                    state: SlotState::Runnable,
                    error: None,
                }
            })
            .collect();
        SessionScheduler {
            net: Testnet::new(),
            bus: Whisper::default(),
            slots,
            rejections: HashMap::new(),
            stats: SchedulerStats::default(),
            pooled: false,
            patience: 0,
        }
    }

    /// Builds a scheduler whose shared chain runs in pooled mining
    /// mode: flushed transactions are admitted into a [`PoolConfig`]ured
    /// fee market (still through the parallel batch-ECDSA path), and
    /// each mined block is a greedy fee-priority pack under the block
    /// gas limit. The miner practices *patience*: while the oldest
    /// pooled transaction is younger than `pool.max_hold_secs`, the
    /// clock jumps to upcoming session wake targets instead of sealing,
    /// so staggered sessions' transactions coalesce into shared blocks.
    pub fn new_pooled(specs: Vec<SessionSpec>, pool: PoolConfig) -> SessionScheduler {
        let mut scheduler = SessionScheduler::new(specs);
        scheduler.patience = pool.max_hold_secs;
        scheduler.net.enable_pool(pool);
        scheduler.pooled = true;
        scheduler
    }

    /// The shared chain (for invariant checks after a run).
    pub fn net(&self) -> &Testnet {
        &self.net
    }

    /// Aggregate statistics of the run so far.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// True once every slot reached a terminal state.
    fn all_settled(&self) -> bool {
        self.slots
            .iter()
            .all(|s| matches!(s.state, SlotState::Done | SlotState::Failed))
    }

    /// Drives every session to completion and returns their reports in
    /// slot order. Panics (with a state dump) if the tick budget runs
    /// out — a liveness bug, never a legitimate schedule.
    pub fn run(&mut self) -> Vec<SessionReport> {
        while !self.all_settled() {
            self.tick();
            assert!(
                self.stats.ticks < MAX_TICKS,
                "scheduler stalled after {} ticks; slot states: {:?}",
                self.stats.ticks,
                self.slots.iter().map(|s| s.state).collect::<Vec<_>>()
            );
        }
        self.slots
            .iter()
            .enumerate()
            .map(|(id, slot)| SessionReport {
                id,
                kind: slot.kind,
                outcome: slot.session.outcome_label(),
                error: slot.error.clone(),
                total_gas: slot.session.total_gas(),
                stage_gas: slot.session.gas_by_stage(),
                txs: slot.session.tx_trace(),
                messages_posted: slot.session.messages_posted(),
            })
            .collect()
    }

    /// One scheduler round: wake, step, flush, mine (or jump the clock).
    fn tick(&mut self) {
        self.stats.ticks += 1;
        let now = self.net.now();

        // Wake every slot whose wait target arrived.
        for slot in &mut self.slots {
            if matches!(slot.state, SlotState::Waiting(t) if now >= t) {
                slot.state = SlotState::Runnable;
            }
        }

        // Step each runnable slot (fixed index order — determinism) until
        // it yields: a wait, a queued transaction, or a terminal state.
        let mut outbox: Vec<(Address, SignedTransaction)> = Vec::new();
        let SessionScheduler {
            net,
            bus,
            slots,
            rejections,
            ..
        } = self;
        for slot in slots.iter_mut() {
            while slot.state == SlotState::Runnable {
                let mut port = ChainPort::Shared {
                    net,
                    faults: &mut slot.chain_faults,
                    outbox: &mut outbox,
                    rejections,
                };
                let mut ctx = SessionCtx {
                    chain: &mut port,
                    bus: BusPort::Shared {
                        bus,
                        faults: &mut slot.whisper_faults,
                    },
                };
                match slot.session.step(&mut ctx) {
                    Ok(StepOutcome::Progress) => {}
                    Ok(StepOutcome::Pending) => slot.state = SlotState::Pending,
                    Ok(StepOutcome::WaitUntil(t)) => slot.state = SlotState::Waiting(t),
                    Ok(StepOutcome::Done) => slot.state = SlotState::Done,
                    Err(e) => {
                        slot.state = SlotState::Failed;
                        slot.error = Some(e.to_string());
                    }
                }
            }
        }

        // Flush every session's queue through one parallel batch-ECDSA
        // admission call. In outbox mode the admitted set IS the next
        // block; in pooled mode it joins the fee market and the miner
        // decides below.
        if !outbox.is_empty() {
            let txs: Vec<SignedTransaction> = outbox.iter().map(|(_, tx)| tx.clone()).collect();
            let hashes: Vec<H256> = txs.iter().map(|tx| tx.hash()).collect();
            for (hash, result) in hashes.into_iter().zip(self.net.submit_batch(txs)) {
                if let Err(e) = result {
                    self.rejections.insert(hash, e);
                }
            }
            if self.pooled {
                // Fee-market displacement (replacement or capacity
                // eviction) surfaces to the displaced task as a typed
                // rejection; TxTask re-prices and resubmits.
                for hash in self.net.drain_evicted() {
                    self.rejections.insert(hash, TxError::Evicted);
                    self.stats.pool_evicted += 1;
                }
            }
            if !self.pooled {
                self.mine_and_release();
                return;
            }
        }

        if self.pooled {
            self.pooled_mining_decision();
            return;
        }

        if self.slots.iter().any(|s| s.state == SlotState::Pending) {
            // Defensive: a pending slot with nothing queued re-polls next
            // tick (its transaction was mined in an earlier block).
            for slot in &mut self.slots {
                if slot.state == SlotState::Pending {
                    slot.state = SlotState::Runnable;
                }
            }
        } else {
            self.jump_to_earliest_wait();
        }
    }

    /// Mines one shared block and releases every pending slot to observe
    /// its receipt (or routed rejection). Stats count what the block
    /// actually holds — identical to per-admission counting in outbox
    /// mode, and the only correct accounting in pooled mode, where a
    /// flush admits more than one block mines.
    fn mine_and_release(&mut self) {
        let block = self.net.mine_block();
        if !block.transactions.is_empty() {
            self.stats.blocks_mined += 1;
            self.stats.txs_mined += block.transactions.len() as u64;
        }
        for slot in &mut self.slots {
            if slot.state == SlotState::Pending {
                slot.state = SlotState::Runnable;
            }
        }
    }

    /// Nothing runnable, nothing to mine: jump the shared clock to the
    /// earliest wait target. No session overshoots its own target by
    /// more than mining drift, because the jump stops at the minimum.
    fn jump_to_earliest_wait(&mut self) {
        if let Some(target) = self.earliest_wait() {
            let now = self.net.now();
            if target > now {
                self.net.advance_time(target - now);
            }
        }
    }

    /// The soonest wake target among waiting slots.
    fn earliest_wait(&self) -> Option<u64> {
        self.slots
            .iter()
            .filter_map(|s| match s.state {
                SlotState::Waiting(t) => Some(t),
                _ => None,
            })
            .min()
    }

    /// The pooled miner's end-of-tick decision. While the oldest pooled
    /// transaction is still inside its hold window and some session will
    /// wake before the window closes, *wait*: jump the clock to that
    /// wake so the woken session can add its transactions to the same
    /// block. Otherwise seal one packed block. Every branch advances the
    /// run — a clock jump wakes a slot, a mined block either delivers
    /// receipts or (empty pack) moves time toward the next wake — so
    /// the tick budget still bounds the schedule.
    fn pooled_mining_decision(&mut self) {
        let next_wake = self.earliest_wait();
        if self.net.pending_count() == 0 {
            // Nothing to mine. Pending slots can only be waiting on a
            // routed rejection (their transaction is neither pooled nor
            // mined) — release them to observe it; otherwise sleep.
            if self.slots.iter().any(|s| s.state == SlotState::Pending) {
                for slot in &mut self.slots {
                    if slot.state == SlotState::Pending {
                        slot.state = SlotState::Runnable;
                    }
                }
            } else {
                self.jump_to_earliest_wait();
            }
            return;
        }
        let hold_deadline = self
            .net
            .pool_earliest_entry()
            .map(|entered| entered + self.patience);
        if let (Some(wake), Some(deadline)) = (next_wake, hold_deadline) {
            let now = self.net.now();
            if wake <= deadline {
                // Patience: coalesce the upcoming session's traffic into
                // this block instead of sealing now.
                if wake > now {
                    self.net.advance_time(wake - now);
                }
                return;
            }
        }
        self.mine_and_release();
    }
}
