//! The four-stage betting protocol as a resumable state machine.
//!
//! One [`BettingSession`] is the event loop of
//! [`crate::protocol::BettingGame`] with the blocking removed: each
//! phase of Fig. 2 is a state, each `step` makes one bounded unit of
//! progress, and every wait — signature rounds, retry backoff, the
//! T1–T3 windows — is surfaced as [`StepOutcome::WaitUntil`] instead of
//! advancing a privately-owned clock. The degradation lattice is
//! unchanged: missed signatures abort before any deposit, missed
//! deposits dissolve into round-two refunds, a missed `reassign`
//! escalates to the dispute stage, and the dispute stage always lands
//! because its window is unbounded.

use super::sign::{SignExchange, MAX_SIGN_ROUNDS, SIGN_ROUND_SECS};
use super::{Session, SessionCtx, StepOutcome, TaskPoll, TxTask};
use crate::participant::{Participant, Strategy};
use crate::protocol::{GameConfig, Outcome, ProtocolError, Stage, TxRecord};
use crate::signedcopy::{bytecode_hash, sign_bytecode, SignedCopy};
use sc_chain::Receipt;
use sc_contracts::{OffChainContract, OnChainContract, Timeline, DEPLOYED_ADDR_SLOT};
use sc_primitives::{ether, Address, U256};

/// Where the machine is in Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Fund wallets, wait out the staggered start, fix the timeline.
    Start,
    /// Alice deploys the on-chain contract (deadline T1).
    Deploy,
    /// Signature exchange rounds until complete or T1 closes in.
    Signing,
    /// Deposit of participant `0`/`1`, in order (deadline T1).
    Deposit(usize),
    /// Deposits incomplete: wait out T1 before round-two refunds.
    RefundWait,
    /// Round-two refund of participant `0`/`1` (deadline T2).
    Refund(usize),
    /// Wait out T2, then route on the loser's strategy.
    AwaitT2,
    /// The honest loser concedes (deadline T3).
    Reassign,
    /// Wait out T3 before the dispute stage.
    AwaitT3,
    /// The forging loser tries a self-signed fake copy (must revert).
    Forged,
    /// The winner submits the true signed copy (unbounded window).
    SubmitCopy,
    /// `returnDisputeResolution` on the verified instance.
    Resolve,
    /// Terminal.
    Done,
}

/// Construction parameters for a [`BettingSession`].
///
/// The legacy wrapper passes a pre-computed timeline and pre-funded
/// wallets; the scheduler passes `timeline: None` (fixed at the
/// session's first step, after its staggered start) and a funding
/// amount minted through the port.
pub struct BettingSessionParams {
    /// Participant 0 (deployer).
    pub alice: Participant,
    /// Participant 1.
    pub bob: Participant,
    /// Phase length and the private bet.
    pub config: GameConfig,
    /// Whisper topic for the signature exchange (session-scoped when
    /// many sessions share one bus).
    pub topic: String,
    /// Compiled contract pair (compile once, clone per session).
    pub contracts: (OnChainContract, OffChainContract),
    /// `Some` = use as-is (legacy); `None` = derive from the chain clock
    /// when the session starts.
    pub timeline: Option<Timeline>,
    /// Seconds after creation before the session begins deploying.
    pub start_delay: u64,
    /// Wei to mint per wallet at the first step (`None` = pre-funded).
    pub funding: Option<U256>,
}

/// One betting game as a pollable state machine.
pub struct BettingSession {
    /// Compiled on-chain contract + ABI.
    pub onchain_abi: OnChainContract,
    /// Compiled off-chain contract + ABI.
    pub offchain_abi: OffChainContract,
    /// Participant 0.
    pub alice: Participant,
    /// Participant 1.
    pub bob: Participant,
    /// The game's windows (placeholder until the session starts, when
    /// constructed with `timeline: None`).
    pub timeline: Timeline,
    /// Address of the deployed on-chain contract (after deploy/sign).
    pub onchain_addr: Option<Address>,
    /// The agreed off-chain initcode.
    pub offchain_bytecode: Vec<u8>,
    pub(crate) config: GameConfig,
    topic: String,
    dynamic_timeline: bool,
    start_delay: u64,
    start_at: Option<u64>,
    funding: Option<U256>,
    phase: Phase,
    task: Option<TxTask>,
    sign: Option<SignExchange>,
    deposits_made: [bool; 2],
    txs: Vec<TxRecord>,
    offchain_bytes_revealed: usize,
    posts: usize,
    outcome: Option<Outcome>,
}

impl BettingSession {
    /// Stage 1 — split/generate: builds the off-chain initcode with the
    /// private bet baked in and parks the machine at its start state.
    pub fn new(params: BettingSessionParams) -> BettingSession {
        let (onchain_abi, offchain_abi) = params.contracts;
        let offchain_bytecode = offchain_abi.initcode(
            params.alice.wallet.address,
            params.bob.wallet.address,
            params.config.secrets,
        );
        let (timeline, dynamic_timeline) = match params.timeline {
            Some(t) => (t, false),
            None => (Timeline::starting_at(0, params.config.phase_seconds), true),
        };
        BettingSession {
            onchain_abi,
            offchain_abi,
            alice: params.alice,
            bob: params.bob,
            timeline,
            onchain_addr: None,
            offchain_bytecode,
            config: params.config,
            topic: params.topic,
            dynamic_timeline,
            start_delay: params.start_delay,
            start_at: None,
            funding: params.funding,
            phase: Phase::Start,
            task: None,
            sign: None,
            deposits_made: [false, false],
            txs: Vec::new(),
            offchain_bytes_revealed: 0,
            posts: 0,
            outcome: None,
        }
    }

    /// The fully-signed copy (valid only when deploy/sign succeeded).
    pub fn signed_copy(&self) -> SignedCopy {
        SignedCopy::create(
            self.offchain_bytecode.clone(),
            &[&self.alice.wallet.key, &self.bob.wallet.key],
        )
    }

    /// The terminal outcome, once the session is done.
    pub fn outcome(&self) -> Option<Outcome> {
        self.outcome
    }

    /// Builds the run report. `offchain_messages` is supplied by the
    /// owner of the bus (the legacy wrapper counts its private bus; the
    /// scheduler counts this session's posts).
    pub fn report(&self, offchain_messages: usize) -> crate::protocol::ProtocolReport {
        let outcome = self.outcome.expect("session not finished");
        crate::protocol::ProtocolReport {
            txs: self.txs.clone(),
            outcome,
            dispute: outcome == Outcome::SettledByDispute,
            winner_is_bob: self.config.secrets.winner_is_bob(),
            offchain_bytes_revealed: self.offchain_bytes_revealed,
            offchain_messages,
        }
    }

    fn record(&mut self, stage: Stage, label: &str, sender: Address, receipt: &Receipt) {
        self.txs.push(TxRecord {
            stage,
            label: label.to_string(),
            sender,
            gas_used: receipt.gas_used,
            success: receipt.success,
        });
    }

    fn finish(&mut self, outcome: Outcome) -> StepOutcome {
        self.outcome = Some(outcome);
        self.phase = Phase::Done;
        StepOutcome::Done
    }

    fn winner_is_bob(&self) -> bool {
        self.config.secrets.winner_is_bob()
    }

    fn loser(&self) -> Participant {
        if self.winner_is_bob() {
            self.alice.clone()
        } else {
            self.bob.clone()
        }
    }

    fn winner(&self) -> Participant {
        if self.winner_is_bob() {
            self.bob.clone()
        } else {
            self.alice.clone()
        }
    }

    fn participant(&self, idx: usize) -> Participant {
        if idx == 0 {
            self.alice.clone()
        } else {
            self.bob.clone()
        }
    }

    /// One signature-exchange round: both sides post per their strategy,
    /// then both poll and absorb valid candidates.
    fn sign_round(&mut self, ctx: &mut SessionCtx<'_>) {
        for p in [self.alice.clone(), self.bob.clone()] {
            match p.strategy {
                Strategy::RefusesToSign => {} // posts nothing, every round
                Strategy::SignsTampered => {
                    let mut tampered = self.offchain_bytecode.clone();
                    // Flip the last byte of the baked-in secret.
                    let last = tampered.len() - 1;
                    tampered[last] ^= 0xff;
                    let sig = sign_bytecode(&p.wallet.key, &tampered);
                    ctx.bus
                        .post(p.wallet.address, &self.topic, sig.to_bytes().to_vec());
                    self.posts += 1;
                }
                _ => {
                    let sig = sign_bytecode(&p.wallet.key, &self.offchain_bytecode);
                    ctx.bus
                        .post(p.wallet.address, &self.topic, sig.to_bytes().to_vec());
                    self.posts += 1;
                }
            }
        }
        let topic = self.topic.clone();
        let ex = self.sign.as_mut().expect("exchange started");
        ex.absorb(&mut ctx.bus, &topic);
        ex.advance_round();
    }

    /// Makes one bounded unit of progress through Fig. 2.
    pub fn step(&mut self, ctx: &mut SessionCtx<'_>) -> Result<StepOutcome, ProtocolError> {
        match self.phase {
            Phase::Start => {
                if let Some(amount) = self.funding.take() {
                    ctx.chain.faucet(self.alice.wallet.address, amount);
                    ctx.chain.faucet(self.bob.wallet.address, amount);
                }
                let now = ctx.chain.now();
                let start = *self.start_at.get_or_insert(now + self.start_delay);
                if now < start {
                    return Ok(StepOutcome::WaitUntil(start));
                }
                if self.dynamic_timeline {
                    self.timeline = Timeline::starting_at(now, self.config.phase_seconds);
                }
                self.phase = Phase::Deploy;
                Ok(StepOutcome::Progress)
            }

            Phase::Deploy => {
                if self.task.is_none() {
                    let initcode = self.onchain_abi.initcode(
                        self.alice.wallet.address,
                        self.bob.wallet.address,
                        self.timeline,
                    );
                    self.task = Some(TxTask::new(
                        "deploy onChain",
                        self.alice.wallet.clone(),
                        None,
                        U256::ZERO,
                        initcode,
                        1_400_000,
                        Some(self.timeline.t1),
                    ));
                }
                match self.task.as_mut().expect("task set").poll(ctx.chain) {
                    TaskPoll::Landed(r) => {
                        self.task = None;
                        self.record(
                            Stage::DeploySign,
                            "deploy onChain",
                            self.alice.wallet.address,
                            &r,
                        );
                        if !r.success {
                            return Err(ProtocolError::TxFailed("deploy onChain".into()));
                        }
                        self.onchain_addr = r.contract_address;
                        self.sign = Some(SignExchange::new(
                            bytecode_hash(&self.offchain_bytecode),
                            [self.alice.wallet.address, self.bob.wallet.address],
                        ));
                        self.phase = Phase::Signing;
                        Ok(StepOutcome::Progress)
                    }
                    TaskPoll::Pending => Ok(StepOutcome::Pending),
                    TaskPoll::Wait(t) => Ok(StepOutcome::WaitUntil(t)),
                    TaskPoll::DeadlineMissed => {
                        self.task = None;
                        Ok(self.finish(Outcome::AbortedAtSigning))
                    }
                    TaskPoll::Rejected(e) => {
                        Err(ProtocolError::TxFailed(format!("deploy onChain: {e}")))
                    }
                }
            }

            Phase::Signing => {
                let now = ctx.chain.now();
                let rounds_run = self.sign.as_ref().expect("exchange started").rounds_run();
                if now + SIGN_ROUND_SECS >= self.timeline.t1 || rounds_run >= MAX_SIGN_ROUNDS {
                    // Out of time or rounds with the exchange incomplete:
                    // abort before any funds are at risk.
                    return Ok(self.finish(Outcome::AbortedAtSigning));
                }
                self.sign_round(ctx);
                let ex = self.sign.as_ref().expect("exchange started");
                if ex.complete() {
                    if ex.copies_verify(&self.offchain_bytecode) {
                        self.phase = Phase::Deposit(0);
                        Ok(StepOutcome::Progress)
                    } else {
                        Ok(self.finish(Outcome::AbortedAtSigning))
                    }
                } else if ex.rounds_run() >= MAX_SIGN_ROUNDS {
                    Ok(self.finish(Outcome::AbortedAtSigning))
                } else {
                    Ok(StepOutcome::WaitUntil(now + SIGN_ROUND_SECS))
                }
            }

            Phase::Deposit(idx) => {
                if idx >= 2 {
                    self.phase = if self.deposits_made == [true, true] {
                        Phase::AwaitT2
                    } else {
                        Phase::RefundWait
                    };
                    return Ok(StepOutcome::Progress);
                }
                let p = self.participant(idx);
                if matches!(p.strategy, Strategy::NoShow) {
                    self.phase = Phase::Deposit(idx + 1);
                    return Ok(StepOutcome::Progress);
                }
                if self.task.is_none() {
                    let onchain = self.onchain_addr.expect("deployed");
                    self.task = Some(TxTask::new(
                        "deposit",
                        p.wallet.clone(),
                        Some(onchain),
                        ether(1),
                        self.onchain_abi.deposit(),
                        300_000,
                        Some(self.timeline.t1),
                    ));
                }
                match self.task.as_mut().expect("task set").poll(ctx.chain) {
                    TaskPoll::Landed(r) => {
                        self.task = None;
                        self.record(Stage::SubmitChallenge, "deposit", p.wallet.address, &r);
                        self.deposits_made[idx] = r.success;
                        self.phase = Phase::Deposit(idx + 1);
                        Ok(StepOutcome::Progress)
                    }
                    TaskPoll::Pending => Ok(StepOutcome::Pending),
                    TaskPoll::Wait(t) => Ok(StepOutcome::WaitUntil(t)),
                    // A deposit that cannot land just stays unmade; the
                    // refund path handles the dissolution.
                    TaskPoll::DeadlineMissed | TaskPoll::Rejected(_) => {
                        self.task = None;
                        self.phase = Phase::Deposit(idx + 1);
                        Ok(StepOutcome::Progress)
                    }
                }
            }

            Phase::RefundWait => {
                // Move into (T1, T2).
                let now = ctx.chain.now();
                if now <= self.timeline.t1 {
                    return Ok(StepOutcome::WaitUntil(self.timeline.t1 + 60));
                }
                self.phase = Phase::Refund(0);
                Ok(StepOutcome::Progress)
            }

            Phase::Refund(idx) => {
                if idx >= 2 {
                    return Ok(self.finish(Outcome::Refunded));
                }
                if !self.deposits_made[idx] {
                    self.phase = Phase::Refund(idx + 1);
                    return Ok(StepOutcome::Progress);
                }
                let p = self.participant(idx);
                if self.task.is_none() {
                    let onchain = self.onchain_addr.expect("deployed");
                    self.task = Some(TxTask::new(
                        "refundRoundTwo",
                        p.wallet.clone(),
                        Some(onchain),
                        U256::ZERO,
                        self.onchain_abi.refund_round_two(),
                        300_000,
                        Some(self.timeline.t2),
                    ));
                }
                match self.task.as_mut().expect("task set").poll(ctx.chain) {
                    TaskPoll::Landed(r) => {
                        self.task = None;
                        self.record(
                            Stage::SubmitChallenge,
                            "refundRoundTwo",
                            p.wallet.address,
                            &r,
                        );
                        self.phase = Phase::Refund(idx + 1);
                        Ok(StepOutcome::Progress)
                    }
                    TaskPoll::Pending => Ok(StepOutcome::Pending),
                    TaskPoll::Wait(t) => Ok(StepOutcome::WaitUntil(t)),
                    // A refund that misses its window leaves the wei in
                    // the contract; the depositor is still no worse off
                    // than deposit-minus-gas.
                    TaskPoll::DeadlineMissed | TaskPoll::Rejected(_) => {
                        self.task = None;
                        self.phase = Phase::Refund(idx + 1);
                        Ok(StepOutcome::Progress)
                    }
                }
            }

            Phase::AwaitT2 => {
                // Off-chain execution: both parties privately evaluate
                // reveal(); no chain interaction, which is the point.
                // Then move into (T2, T3) and route on the loser.
                let now = ctx.chain.now();
                if now <= self.timeline.t2 {
                    return Ok(StepOutcome::WaitUntil(self.timeline.t2 + 60));
                }
                self.phase = if self.loser().strategy.disputes_result() {
                    Phase::AwaitT3
                } else {
                    Phase::Reassign
                };
                Ok(StepOutcome::Progress)
            }

            Phase::Reassign => {
                let loser = self.loser();
                if self.task.is_none() {
                    let onchain = self.onchain_addr.expect("deployed");
                    self.task = Some(TxTask::new(
                        "reassign",
                        loser.wallet.clone(),
                        Some(onchain),
                        U256::ZERO,
                        self.onchain_abi.reassign(),
                        300_000,
                        Some(self.timeline.t3),
                    ));
                }
                match self.task.as_mut().expect("task set").poll(ctx.chain) {
                    TaskPoll::Landed(r) => {
                        self.task = None;
                        self.record(Stage::SubmitChallenge, "reassign", loser.wallet.address, &r);
                        if r.success {
                            Ok(self.finish(Outcome::SettledHonestly))
                        } else {
                            // A reverted reassign (e.g. a mining delay
                            // pushed the block past T3): the winner can
                            // always enforce via the dispute path.
                            self.phase = Phase::AwaitT3;
                            Ok(StepOutcome::Progress)
                        }
                    }
                    TaskPoll::Pending => Ok(StepOutcome::Pending),
                    TaskPoll::Wait(t) => Ok(StepOutcome::WaitUntil(t)),
                    TaskPoll::DeadlineMissed => {
                        self.task = None;
                        self.phase = Phase::AwaitT3;
                        Ok(StepOutcome::Progress)
                    }
                    TaskPoll::Rejected(e) => Err(ProtocolError::TxFailed(format!("reassign: {e}"))),
                }
            }

            Phase::AwaitT3 => {
                let now = ctx.chain.now();
                if now <= self.timeline.t3 {
                    return Ok(StepOutcome::WaitUntil(self.timeline.t3 + 60));
                }
                self.phase = if matches!(self.loser().strategy, Strategy::ForgingLoser) {
                    Phase::Forged
                } else {
                    Phase::SubmitCopy
                };
                Ok(StepOutcome::Progress)
            }

            Phase::Forged => {
                // The dishonest loser tries a forged bytecode first: a
                // copy whose baked-in secrets favour them, signed only by
                // themselves (they cannot produce the winner's signature).
                let loser = self.loser();
                if self.task.is_none() {
                    let onchain = self.onchain_addr.expect("deployed");
                    let mut forged = self.offchain_bytecode.clone();
                    let last = forged.len() - 1;
                    forged[last] ^= 0x01;
                    let own_sig = sign_bytecode(&loser.wallet.key, &forged);
                    let data = self
                        .onchain_abi
                        .deploy_verified_instance(&forged, &own_sig, &own_sig);
                    self.task = Some(TxTask::new(
                        "deployVerifiedInstance (forged)",
                        loser.wallet.clone(),
                        Some(onchain),
                        U256::ZERO,
                        data,
                        600_000,
                        None,
                    ));
                }
                match self.task.as_mut().expect("task set").poll(ctx.chain) {
                    TaskPoll::Landed(r) => {
                        self.task = None;
                        self.record(
                            Stage::DisputeResolve,
                            "deployVerifiedInstance (forged)",
                            loser.wallet.address,
                            &r,
                        );
                        assert!(
                            !r.success,
                            "forged bytecode must fail on-chain signature verification"
                        );
                        self.phase = Phase::SubmitCopy;
                        Ok(StepOutcome::Progress)
                    }
                    TaskPoll::Pending => Ok(StepOutcome::Pending),
                    TaskPoll::Wait(t) => Ok(StepOutcome::WaitUntil(t)),
                    // The forgery never landing is no loss to anyone.
                    TaskPoll::DeadlineMissed | TaskPoll::Rejected(_) => {
                        self.task = None;
                        self.phase = Phase::SubmitCopy;
                        Ok(StepOutcome::Progress)
                    }
                }
            }

            Phase::SubmitCopy => {
                // The honest winner submits the true signed copy. The
                // window is unbounded, so with a finite fault budget this
                // always lands eventually.
                let winner = self.winner();
                if self.task.is_none() {
                    let onchain = self.onchain_addr.expect("deployed");
                    let copy = self.signed_copy();
                    self.offchain_bytes_revealed = copy.bytecode.len();
                    let data = self.onchain_abi.deploy_verified_instance(
                        &copy.bytecode,
                        &copy.signatures[0],
                        &copy.signatures[1],
                    );
                    self.task = Some(TxTask::new(
                        "deployVerifiedInstance",
                        winner.wallet.clone(),
                        Some(onchain),
                        U256::ZERO,
                        data,
                        600_000,
                        None,
                    ));
                }
                match self.task.as_mut().expect("task set").poll(ctx.chain) {
                    TaskPoll::Landed(r) => {
                        self.task = None;
                        self.record(
                            Stage::DisputeResolve,
                            "deployVerifiedInstance",
                            winner.wallet.address,
                            &r,
                        );
                        if !r.success {
                            return Err(ProtocolError::TxFailed("deployVerifiedInstance".into()));
                        }
                        self.phase = Phase::Resolve;
                        Ok(StepOutcome::Progress)
                    }
                    TaskPoll::Pending => Ok(StepOutcome::Pending),
                    TaskPoll::Wait(t) => Ok(StepOutcome::WaitUntil(t)),
                    TaskPoll::DeadlineMissed | TaskPoll::Rejected(_) => {
                        Err(ProtocolError::TxFailed("deployVerifiedInstance".into()))
                    }
                }
            }

            Phase::Resolve => {
                let winner = self.winner();
                if self.task.is_none() {
                    // Read deployedAddr from the on-chain contract's
                    // storage; anyone certified can then trigger the
                    // miner-enforced resolution.
                    let onchain = self.onchain_addr.expect("deployed");
                    let instance = Address::from_u256(
                        ctx.chain
                            .storage_at(onchain, U256::from_u64(DEPLOYED_ADDR_SLOT)),
                    );
                    if instance.is_zero() {
                        return Err(ProtocolError::NoVerifiedInstance);
                    }
                    let data = self.offchain_abi.return_dispute_resolution(onchain);
                    self.task = Some(TxTask::new(
                        "returnDisputeResolution",
                        winner.wallet.clone(),
                        Some(instance),
                        U256::ZERO,
                        data,
                        super::dispute_gas_limit(self.config.secrets.weight),
                        None,
                    ));
                }
                match self.task.as_mut().expect("task set").poll(ctx.chain) {
                    TaskPoll::Landed(r) => {
                        self.task = None;
                        self.record(
                            Stage::DisputeResolve,
                            "returnDisputeResolution",
                            winner.wallet.address,
                            &r,
                        );
                        if !r.success {
                            return Err(ProtocolError::TxFailed("returnDisputeResolution".into()));
                        }
                        Ok(self.finish(Outcome::SettledByDispute))
                    }
                    TaskPoll::Pending => Ok(StepOutcome::Pending),
                    TaskPoll::Wait(t) => Ok(StepOutcome::WaitUntil(t)),
                    TaskPoll::DeadlineMissed | TaskPoll::Rejected(_) => {
                        Err(ProtocolError::TxFailed("returnDisputeResolution".into()))
                    }
                }
            }

            Phase::Done => Ok(StepOutcome::Done),
        }
    }
}

impl Session for BettingSession {
    fn step(&mut self, ctx: &mut SessionCtx<'_>) -> Result<StepOutcome, ProtocolError> {
        BettingSession::step(self, ctx)
    }

    fn is_done(&self) -> bool {
        self.outcome.is_some()
    }

    fn outcome_label(&self) -> Option<&'static str> {
        self.outcome.map(|o| match o {
            Outcome::AbortedAtSigning => "aborted-at-signing",
            Outcome::Refunded => "refunded",
            Outcome::SettledHonestly => "settled-honestly",
            Outcome::SettledByDispute => "settled-by-dispute",
        })
    }

    fn total_gas(&self) -> u64 {
        self.txs.iter().map(|t| t.gas_used).sum()
    }

    fn tx_trace(&self) -> Vec<(String, bool)> {
        self.txs
            .iter()
            .map(|t| (t.label.clone(), t.success))
            .collect()
    }

    fn messages_posted(&self) -> usize {
        self.posts
    }

    fn gas_by_stage(&self) -> [u64; 4] {
        let mut buckets = [0u64; 4];
        for t in &self.txs {
            buckets[super::stage_bucket(&t.label)] += t.gas_used;
        }
        buckets
    }
}
