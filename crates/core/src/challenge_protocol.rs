//! Protocol engine for the submit/challenge variant (extension).
//!
//! Implements the paper's stage-3 narrative literally: after T2 a
//! *representative* submits the off-chain result on-chain; a challenge
//! window follows during which the counterparty can contest it with the
//! signed copy; an uncontested result finalizes cheaply, a contested one
//! is recomputed by the miners and the liar's security deposit pays the
//! challenger's costs.
//!
//! The driver tolerates infrastructure faults and a crashing
//! representative: on-chain sends retry transient failures with capped
//! backoff; a challenge that misses its window degrades to the finalize
//! path; and if the representative crashes before submitting, the
//! counterparty escalates after the stale deadline (`T2 + window`) —
//! a watching participant forces the miner-enforced resolution via
//! `challenge()`, a sleeping one at least reclaims their own funds via
//! `reclaimNoSubmission()`.
//!
//! Since the session-engine refactor the event loop lives in
//! [`ChallengeSession`](crate::session::ChallengeSession);
//! [`ChallengeGame`] is the preserved legacy entry point, driving that
//! machine in immediate mode against a session-private chain. The
//! two-call shape survives: `with_faults()` drives setup to the
//! machine's post-T2 hold point, `run_with_crash()` binds the
//! behaviours and drives it to its terminal outcome.

use crate::faults::{FaultPlan, FaultyWhisper, FlakyNet};
use crate::participant::Participant;
use crate::session::{
    BusPort, ChainPort, ChallengeSession, ChallengeSessionParams, SessionCtx, StepOutcome,
};
use sc_contracts::challenge::ChallengeContracts;
use sc_contracts::{BetSecrets, Timeline};
use sc_primitives::{ether, Address};

/// What the representative does at submission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitStrategy {
    /// Submits the true off-chain result.
    Truthful,
    /// Submits the inverted result (hoping the window expires quietly).
    False,
}

/// What the counterparty does during the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchStrategy {
    /// Checks the submission against the off-chain result and challenges
    /// iff it is wrong.
    Vigilant,
    /// Never checks (models an offline participant).
    Asleep,
    /// Challenges even truthful submissions (frivolous).
    Frivolous,
}

/// Whether (and when) the representative crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// The representative stays up the whole game.
    None,
    /// Crashes after deposits but before submitting any result — the
    /// counterparty must escalate past the stale deadline.
    BeforeSubmit,
    /// Crashes right after submitting — someone else must finalize.
    AfterSubmit,
}

/// Outcome of a challenge-variant game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChallengeOutcome {
    /// The submission stood and was finalized after the window.
    FinalizedUnchallenged,
    /// A challenge ran; miners enforced the recomputed truth.
    ResolvedByChallenge,
    /// A false submission expired unchallenged — the watcher slept and
    /// the lie stands (the residual risk the paper's design accepts).
    LieStood,
    /// No result was ever submitted; past the stale deadline the
    /// participants took their own stakes back.
    ReclaimedStale,
}

/// One on-chain transaction made by the challenge driver.
#[derive(Debug, Clone)]
pub struct ChallengeTx {
    /// What it was (e.g. `"submitResult"`).
    pub label: String,
    /// Who sent it.
    pub sender: Address,
    /// Gas charged.
    pub gas_used: u64,
    /// Whether it succeeded.
    pub success: bool,
}

/// Report of one challenge-variant run.
#[derive(Debug, Clone)]
pub struct ChallengeReport {
    /// Every on-chain transaction, in order.
    pub txs: Vec<ChallengeTx>,
    /// How it ended.
    pub outcome: ChallengeOutcome,
    /// True off-chain result.
    pub winner_is_bob: bool,
    /// Bytes of the off-chain contract published (0 without a challenge).
    pub offchain_bytes_revealed: usize,
}

impl ChallengeReport {
    /// Gas total over all transactions.
    pub fn total_gas(&self) -> u64 {
        self.txs.iter().map(|t| t.gas_used).sum()
    }

    /// Gas of the first successful tx with the label.
    pub fn gas_of(&self, label: &str) -> Option<u64> {
        self.txs
            .iter()
            .find(|t| t.label == label && t.success)
            .map(|t| t.gas_used)
    }

    /// Total gas units sent by one address (failed txs included).
    pub fn gas_spent_by(&self, who: Address) -> u64 {
        self.txs
            .iter()
            .filter(|t| t.sender == who)
            .map(|t| t.gas_used)
            .sum()
    }
}

/// The challenge-variant game driver.
///
/// A thin wrapper since the session-engine refactor: the event loop is
/// a [`ChallengeSession`] state machine, and this type owns the
/// session-private (possibly flaky) chain it runs against. Session
/// state — participants, the deployed address, the signed bytecode, the
/// timeline — is reachable directly through [`std::ops::Deref`].
pub struct ChallengeGame {
    /// The chain (perfect under [`FaultPlan::none`]).
    pub net: FlakyNet,
    /// Unused by this variant (it exchanges no off-chain messages), but
    /// the session context requires a bus.
    bus: FaultyWhisper,
    session: ChallengeSession,
}

impl std::ops::Deref for ChallengeGame {
    type Target = ChallengeSession;
    fn deref(&self) -> &ChallengeSession {
        &self.session
    }
}

impl std::ops::DerefMut for ChallengeGame {
    fn deref_mut(&mut self) -> &mut ChallengeSession {
        &mut self.session
    }
}

impl ChallengeGame {
    /// Sets up a perfect chain, deploys the contract, and makes both
    /// deposits (stake + security deposit).
    pub fn new(secrets: BetSecrets, window: u64) -> ChallengeGame {
        ChallengeGame::with_faults(secrets, window, &FaultPlan::none())
    }

    /// Same setup under a seeded fault schedule. Setup sends retry
    /// transient failures; the fault budgets guarantee deposits land
    /// before T1.
    pub fn with_faults(secrets: BetSecrets, window: u64, plan: &FaultPlan) -> ChallengeGame {
        let mut net = FlakyNet::new(sc_chain::Testnet::new(), plan);
        let alice = Participant::honest("alice");
        let bob = Participant::honest("bob");
        net.faucet(alice.wallet.address, ether(1000));
        net.faucet(bob.wallet.address, ether(1000));
        let tl = Timeline::starting_at(net.now(), 3600);
        let session = ChallengeSession::new(ChallengeSessionParams {
            alice,
            bob,
            secrets,
            window,
            contracts: ChallengeContracts::new(),
            timeline: Some(tl),
            start_delay: 0,
            funding: None,
            submit: SubmitStrategy::Truthful,
            watch: WatchStrategy::Vigilant,
            crash: CrashPoint::None,
        });
        let mut game = ChallengeGame {
            net,
            bus: FaultyWhisper::new(&FaultPlan::none()),
            session,
        };
        // Deploy, deposit twice, wait out T2 — then hold at `Ready` so
        // the caller can bind behaviours before the submission phase.
        game.drive(ChallengeSession::is_ready);
        game
    }

    /// Drives the machine in immediate mode until `until` holds or the
    /// game ends. Every send on these paths is mandatory, so a protocol
    /// failure panics — exactly as the legacy driver's `.expect()`s did
    /// (unreachable under any seeded fault plan's finite budgets).
    fn drive(&mut self, until: impl Fn(&ChallengeSession) -> bool) {
        while !until(&self.session) && self.session.outcome().is_none() {
            let outcome = {
                let mut port = ChainPort::Immediate(&mut self.net);
                let mut ctx = SessionCtx {
                    chain: &mut port,
                    bus: BusPort::Owned(&mut self.bus),
                };
                self.session.step(&mut ctx)
            }
            .expect("mandatory challenge-protocol send lands within the fault budget");
            match outcome {
                StepOutcome::Progress => {}
                StepOutcome::WaitUntil(t) => {
                    let now = self.net.now();
                    if t > now {
                        self.net.advance_time(t - now);
                    }
                }
                StepOutcome::Pending => unreachable!("immediate mode never queues"),
                StepOutcome::Done => break,
            }
        }
    }

    /// Runs the submit/challenge flow with the given behaviours and no
    /// crash. Alice is the representative; Bob watches.
    pub fn run(
        self,
        submit: SubmitStrategy,
        watch: WatchStrategy,
    ) -> (ChallengeGame, ChallengeReport) {
        self.run_with_crash(submit, watch, CrashPoint::None)
    }

    /// Runs the flow with the representative possibly crashing at the
    /// given point. Always terminates in a valid [`ChallengeOutcome`].
    pub fn run_with_crash(
        mut self,
        submit: SubmitStrategy,
        watch: WatchStrategy,
        crash: CrashPoint,
    ) -> (ChallengeGame, ChallengeReport) {
        self.session.set_behaviour(submit, watch, crash);
        self.drive(|_| false);
        let report = self.session.report();
        (self, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_primitives::{ether, U256};

    fn secrets_bob_wins() -> BetSecrets {
        let mut s = BetSecrets {
            secret_a: U256::from_u64(9),
            secret_b: U256::from_u64(10),
            weight: 16,
        };
        while !s.winner_is_bob() {
            s.secret_a = s.secret_a.wrapping_add(U256::ONE);
        }
        s
    }

    #[test]
    fn truthful_submission_finalizes() {
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run(SubmitStrategy::Truthful, WatchStrategy::Vigilant);
        assert_eq!(report.outcome, ChallengeOutcome::FinalizedUnchallenged);
        assert_eq!(report.offchain_bytes_revealed, 0, "privacy preserved");
        assert!(game.net.balance_of(bob_addr) > ether(1000));
    }

    #[test]
    fn false_submission_caught_by_vigilant_watcher() {
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let alice_addr = game.alice.wallet.address;
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run(SubmitStrategy::False, WatchStrategy::Vigilant);
        assert_eq!(report.outcome, ChallengeOutcome::ResolvedByChallenge);
        assert!(
            report.offchain_bytes_revealed > 0,
            "dispute published the code"
        );
        // Bob got pot + both security deposits; the liar lost both.
        assert!(game.net.balance_of(bob_addr) > ether(1001));
        assert!(game.net.balance_of(alice_addr) < ether(999));
    }

    #[test]
    fn false_submission_stands_if_watcher_sleeps() {
        // The design's residual risk, made visible.
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let alice_addr = game.alice.wallet.address;
        let (game, report) = game.run(SubmitStrategy::False, WatchStrategy::Asleep);
        assert_eq!(report.outcome, ChallengeOutcome::LieStood);
        assert!(
            game.net.balance_of(alice_addr) > ether(1000),
            "the unwatched lie profits — participants must stay online"
        );
    }

    #[test]
    fn frivolous_challenge_still_resolves_truthfully() {
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run(SubmitStrategy::Truthful, WatchStrategy::Frivolous);
        assert_eq!(report.outcome, ChallengeOutcome::ResolvedByChallenge);
        // Truth still wins: Bob is the true winner even though his
        // challenge was pointless (he burned gas for nothing).
        assert!(game.net.balance_of(bob_addr) > ether(1000));
    }

    #[test]
    fn unchallenged_path_is_cheaper_than_challenge_path() {
        let (_g1, quiet) = ChallengeGame::new(secrets_bob_wins(), 1800)
            .run(SubmitStrategy::Truthful, WatchStrategy::Vigilant);
        let (_g2, fought) = ChallengeGame::new(secrets_bob_wins(), 1800)
            .run(SubmitStrategy::False, WatchStrategy::Vigilant);
        assert!(
            fought.total_gas() > quiet.total_gas() + 150_000,
            "challenge {} vs quiet {}",
            fought.total_gas(),
            quiet.total_gas()
        );
    }

    #[test]
    fn crashed_representative_cannot_hold_a_watcher_hostage() {
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run_with_crash(
            SubmitStrategy::Truthful,
            WatchStrategy::Vigilant,
            CrashPoint::BeforeSubmit,
        );
        assert_eq!(report.outcome, ChallengeOutcome::ResolvedByChallenge);
        // The true winner collected the pot despite the crash.
        assert!(game.net.balance_of(bob_addr) > ether(1000));
    }

    #[test]
    fn sleeping_parties_reclaim_after_a_silent_representative() {
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let alice_addr = game.alice.wallet.address;
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run_with_crash(
            SubmitStrategy::Truthful,
            WatchStrategy::Asleep,
            CrashPoint::BeforeSubmit,
        );
        assert_eq!(report.outcome, ChallengeOutcome::ReclaimedStale);
        // Both took back exactly their stake + security deposit (gas
        // aside): nobody won, nobody is stuck.
        for a in [alice_addr, bob_addr] {
            let bal = game.net.balance_of(a);
            assert!(bal > ether(1000).wrapping_sub(ether(1) / U256::from_u64(100)));
            assert!(bal <= ether(1000));
        }
        assert_eq!(game.net.balance_of(game.onchain), U256::ZERO);
    }

    #[test]
    fn crash_after_submit_is_finalized_by_the_watcher() {
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run_with_crash(
            SubmitStrategy::Truthful,
            WatchStrategy::Asleep,
            CrashPoint::AfterSubmit,
        );
        assert_eq!(report.outcome, ChallengeOutcome::FinalizedUnchallenged);
        // Bob (the finalizer and true winner) collected.
        assert!(game.net.balance_of(bob_addr) > ether(1000));
        let finalize = report.txs.iter().find(|t| t.label == "finalize").unwrap();
        assert_eq!(finalize.sender, bob_addr, "the watcher finalized");
    }
}
