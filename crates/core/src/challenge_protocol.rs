//! Protocol engine for the submit/challenge variant (extension).
//!
//! Implements the paper's stage-3 narrative literally: after T2 a
//! *representative* submits the off-chain result on-chain; a challenge
//! window follows during which the counterparty can contest it with the
//! signed copy; an uncontested result finalizes cheaply, a contested one
//! is recomputed by the miners and the liar's security deposit pays the
//! challenger's costs.
//!
//! The driver tolerates infrastructure faults and a crashing
//! representative: on-chain sends retry transient failures with capped
//! backoff; a challenge that misses its window degrades to the finalize
//! path; and if the representative crashes before submitting, the
//! counterparty escalates after the stale deadline (`T2 + window`) —
//! a watching participant forces the miner-enforced resolution via
//! `challenge()`, a sleeping one at least reclaims their own funds via
//! `reclaimNoSubmission()`.

use crate::faults::{FaultPlan, FlakyNet, NetError, MAX_INJECTED_SECS};
use crate::participant::Participant;
use crate::signedcopy::SignedCopy;
use sc_chain::{Receipt, Wallet};
use sc_contracts::challenge::{
    security_deposit, stake, ChallengeContracts, CHALLENGE_DEPLOYED_ADDR_SLOT,
};
use sc_contracts::{BetSecrets, Timeline};
use sc_primitives::{ether, Address, U256};

/// Most attempts per on-chain send (far above any chain fault budget).
const MAX_ATTEMPTS: u32 = 64;

/// First retry backoff in seconds (doubles, capped).
const BACKOFF_BASE_SECS: u64 = 15;

/// What the representative does at submission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitStrategy {
    /// Submits the true off-chain result.
    Truthful,
    /// Submits the inverted result (hoping the window expires quietly).
    False,
}

/// What the counterparty does during the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchStrategy {
    /// Checks the submission against the off-chain result and challenges
    /// iff it is wrong.
    Vigilant,
    /// Never checks (models an offline participant).
    Asleep,
    /// Challenges even truthful submissions (frivolous).
    Frivolous,
}

/// Whether (and when) the representative crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// The representative stays up the whole game.
    None,
    /// Crashes after deposits but before submitting any result — the
    /// counterparty must escalate past the stale deadline.
    BeforeSubmit,
    /// Crashes right after submitting — someone else must finalize.
    AfterSubmit,
}

/// Outcome of a challenge-variant game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChallengeOutcome {
    /// The submission stood and was finalized after the window.
    FinalizedUnchallenged,
    /// A challenge ran; miners enforced the recomputed truth.
    ResolvedByChallenge,
    /// A false submission expired unchallenged — the watcher slept and
    /// the lie stands (the residual risk the paper's design accepts).
    LieStood,
    /// No result was ever submitted; past the stale deadline the
    /// participants took their own stakes back.
    ReclaimedStale,
}

/// One on-chain transaction made by the challenge driver.
#[derive(Debug, Clone)]
pub struct ChallengeTx {
    /// What it was (e.g. `"submitResult"`).
    pub label: String,
    /// Who sent it.
    pub sender: Address,
    /// Gas charged.
    pub gas_used: u64,
    /// Whether it succeeded.
    pub success: bool,
}

/// Report of one challenge-variant run.
#[derive(Debug, Clone)]
pub struct ChallengeReport {
    /// Every on-chain transaction, in order.
    pub txs: Vec<ChallengeTx>,
    /// How it ended.
    pub outcome: ChallengeOutcome,
    /// True off-chain result.
    pub winner_is_bob: bool,
    /// Bytes of the off-chain contract published (0 without a challenge).
    pub offchain_bytes_revealed: usize,
}

impl ChallengeReport {
    /// Gas total over all transactions.
    pub fn total_gas(&self) -> u64 {
        self.txs.iter().map(|t| t.gas_used).sum()
    }

    /// Gas of the first successful tx with the label.
    pub fn gas_of(&self, label: &str) -> Option<u64> {
        self.txs
            .iter()
            .find(|t| t.label == label && t.success)
            .map(|t| t.gas_used)
    }

    /// Total gas units sent by one address (failed txs included).
    pub fn gas_spent_by(&self, who: Address) -> u64 {
        self.txs
            .iter()
            .filter(|t| t.sender == who)
            .map(|t| t.gas_used)
            .sum()
    }
}

/// The challenge-variant game driver.
pub struct ChallengeGame {
    /// The chain (perfect under [`FaultPlan::none`]).
    pub net: FlakyNet,
    /// Compiled contract pair.
    pub contracts: ChallengeContracts,
    /// Participant 0 (also the representative who submits).
    pub alice: Participant,
    /// Participant 1 (the watcher).
    pub bob: Participant,
    /// Deployed on-chain contract.
    pub onchain: Address,
    /// The signed off-chain initcode.
    pub bytecode: Vec<u8>,
    /// The game's T1/T2 windows (T3 unused by this variant).
    pub timeline: Timeline,
    secrets: BetSecrets,
    window: u64,
    txs: Vec<ChallengeTx>,
}

impl ChallengeGame {
    /// Sets up a perfect chain, deploys the contract, and makes both
    /// deposits (stake + security deposit).
    pub fn new(secrets: BetSecrets, window: u64) -> ChallengeGame {
        ChallengeGame::with_faults(secrets, window, &FaultPlan::none())
    }

    /// Same setup under a seeded fault schedule. Setup sends retry
    /// transient failures; the fault budgets guarantee deposits land
    /// before T1.
    pub fn with_faults(secrets: BetSecrets, window: u64, plan: &FaultPlan) -> ChallengeGame {
        let mut net = FlakyNet::new(sc_chain::Testnet::new(), plan);
        let alice = Participant::honest("alice");
        let bob = Participant::honest("bob");
        net.faucet(alice.wallet.address, ether(1000));
        net.faucet(bob.wallet.address, ether(1000));
        let tl = Timeline::starting_at(net.now(), 3600);
        let contracts = ChallengeContracts::new();

        let mut game = ChallengeGame {
            net,
            contracts,
            alice,
            bob,
            onchain: Address::ZERO,
            bytecode: Vec::new(),
            timeline: tl,
            secrets,
            window,
            txs: Vec::new(),
        };

        let initcode = game.contracts.onchain_initcode(
            game.alice.wallet.address,
            game.bob.wallet.address,
            tl,
            window,
        );
        let wallet = game.alice.wallet.clone();
        let r = game
            .deploy_retry("deploy onChainChallenge", &wallet, initcode, 7_000_000)
            .expect("deploy lands within the fault budget");
        assert!(r.success, "challenge contract deploys");
        game.onchain = r.contract_address.expect("created");

        let pay = stake().wrapping_add(security_deposit());
        for p in [game.alice.clone(), game.bob.clone()] {
            let onchain = game.onchain;
            let data = game.contracts.deposit();
            let r = game
                .exec_retry(
                    "deposit",
                    &p.wallet,
                    onchain,
                    pay,
                    data,
                    Some(tl.t1),
                    400_000,
                )
                .expect("deposit lands before T1 within the fault budget");
            assert!(r.success, "deposit");
        }

        game.bytecode = game.contracts.offchain_initcode(
            game.alice.wallet.address,
            game.bob.wallet.address,
            secrets,
        );

        // Move past T2 so results can be submitted.
        game.advance_past(tl.t2);
        game
    }

    /// The fully signed copy of the off-chain contract.
    pub fn signed_copy(&self) -> SignedCopy {
        SignedCopy::create(
            self.bytecode.clone(),
            &[&self.alice.wallet.key, &self.bob.wallet.key],
        )
    }

    fn record(&mut self, label: &str, sender: Address, r: &Receipt) {
        self.txs.push(ChallengeTx {
            label: label.into(),
            sender,
            gas_used: r.gas_used,
            success: r.success,
        });
    }

    fn advance_past(&mut self, t: u64) {
        let now = self.net.now();
        if now <= t {
            self.net.advance_time(t - now + 60);
        }
    }

    /// Retrying call send; `None` = the deadline passed (or the node
    /// rejected it outright) before the transaction could land.
    #[allow(clippy::too_many_arguments)] // mirrors the tx fields one-to-one
    fn exec_retry(
        &mut self,
        label: &str,
        wallet: &Wallet,
        to: Address,
        value: U256,
        data: Vec<u8>,
        deadline: Option<u64>,
        gas: u64,
    ) -> Option<Receipt> {
        let mut backoff = BACKOFF_BASE_SECS;
        for _ in 0..MAX_ATTEMPTS {
            if let Some(d) = deadline {
                if self.net.now() >= d {
                    return None;
                }
            }
            match self.net.execute(wallet, to, value, data.clone(), gas) {
                Ok(r) => {
                    self.record(label, wallet.address, &r);
                    return Some(r);
                }
                Err(NetError::Transient(_)) => {
                    self.net.advance_time(backoff);
                    backoff = (backoff * 2).min(MAX_INJECTED_SECS);
                }
                Err(NetError::Rejected(_)) => return None,
            }
        }
        None
    }

    /// Retrying deployment (no deadline: only used during setup).
    fn deploy_retry(
        &mut self,
        label: &str,
        wallet: &Wallet,
        initcode: Vec<u8>,
        gas: u64,
    ) -> Option<Receipt> {
        let mut backoff = BACKOFF_BASE_SECS;
        for _ in 0..MAX_ATTEMPTS {
            match self.net.deploy(wallet, initcode.clone(), U256::ZERO, gas) {
                Ok(r) => {
                    self.record(label, wallet.address, &r);
                    return Some(r);
                }
                Err(NetError::Transient(_)) => {
                    self.net.advance_time(backoff);
                    backoff = (backoff * 2).min(MAX_INJECTED_SECS);
                }
                Err(NetError::Rejected(_)) => return None,
            }
        }
        None
    }

    /// Runs the submit/challenge flow with the given behaviours and no
    /// crash. Alice is the representative; Bob watches.
    pub fn run(
        self,
        submit: SubmitStrategy,
        watch: WatchStrategy,
    ) -> (ChallengeGame, ChallengeReport) {
        self.run_with_crash(submit, watch, CrashPoint::None)
    }

    /// Runs the flow with the representative possibly crashing at the
    /// given point. Always terminates in a valid [`ChallengeOutcome`].
    pub fn run_with_crash(
        mut self,
        submit: SubmitStrategy,
        watch: WatchStrategy,
        crash: CrashPoint,
    ) -> (ChallengeGame, ChallengeReport) {
        let truth = self.secrets.winner_is_bob();
        let claimed = match submit {
            SubmitStrategy::Truthful => truth,
            SubmitStrategy::False => !truth,
        };

        let alice = self.alice.wallet.clone();
        let bob = self.bob.wallet.clone();
        let onchain = self.onchain;
        let stale_deadline = self.timeline.t2 + self.window;

        if crash == CrashPoint::BeforeSubmit {
            // The representative is gone: no result ever arrives. The
            // counterparty waits out the stale deadline, then escalates.
            self.advance_past(stale_deadline);
            let (outcome, revealed) = match watch {
                WatchStrategy::Vigilant | WatchStrategy::Frivolous => {
                    // Force the miner-enforced resolution with the
                    // signed copy — the crashed side's stake is not a
                    // hostage.
                    let copy = self.signed_copy();
                    let revealed = copy.bytecode.len();
                    let data = self.contracts.challenge(
                        &copy.bytecode,
                        &copy.signatures[0],
                        &copy.signatures[1],
                    );
                    let r = self
                        .exec_retry(
                            "challenge",
                            &bob,
                            onchain,
                            U256::ZERO,
                            data,
                            None,
                            7_900_000,
                        )
                        .expect("stale-deadline challenge lands");
                    assert!(r.success, "stale-deadline challenge accepted");
                    let instance = Address::from_u256(
                        self.net
                            .storage_at(onchain, U256::from_u64(CHALLENGE_DEPLOYED_ADDR_SLOT)),
                    );
                    let data = self.contracts.return_dispute_resolution(onchain);
                    let r = self
                        .exec_retry(
                            "returnDisputeResolution",
                            &bob,
                            instance,
                            U256::ZERO,
                            data,
                            None,
                            7_900_000,
                        )
                        .expect("resolution lands");
                    assert!(r.success, "resolution enforced");
                    (ChallengeOutcome::ResolvedByChallenge, revealed)
                }
                WatchStrategy::Asleep => {
                    // Nobody forces the dispute; each side (the crashed
                    // representative eventually restarts) reclaims their
                    // own stake + security deposit.
                    for w in [bob.clone(), alice.clone()] {
                        let data = self.contracts.reclaim_no_submission();
                        let r = self
                            .exec_retry(
                                "reclaimNoSubmission",
                                &w,
                                onchain,
                                U256::ZERO,
                                data,
                                None,
                                400_000,
                            )
                            .expect("reclaim lands");
                        assert!(r.success, "reclaim after the stale deadline");
                    }
                    (ChallengeOutcome::ReclaimedStale, 0)
                }
            };
            let report = ChallengeReport {
                txs: self.txs.clone(),
                outcome,
                winner_is_bob: truth,
                offchain_bytes_revealed: revealed,
            };
            return (self, report);
        }

        // Representative submits (then crashes, for AfterSubmit).
        let data = self.contracts.submit_result(claimed);
        let r = self
            .exec_retry(
                "submitResult",
                &alice,
                onchain,
                U256::ZERO,
                data,
                None,
                7_900_000,
            )
            .expect("submission lands (afterT2 is unbounded)");
        assert!(r.success, "submission");
        // The challenge window opens at the block that mined the
        // submission (mining delays included).
        let proposed_at = self.net.head().timestamp;

        let wants_challenge = match watch {
            WatchStrategy::Vigilant => claimed != truth,
            WatchStrategy::Asleep => false,
            WatchStrategy::Frivolous => true,
        };

        let mut revealed = 0usize;
        let mut outcome = None;
        if wants_challenge {
            // Bob challenges with the signed copy inside the window. A
            // challenge that cannot land before the window closes
            // (injected delays) degrades to the finalize path below.
            let copy = self.signed_copy();
            let data =
                self.contracts
                    .challenge(&copy.bytecode, &copy.signatures[0], &copy.signatures[1]);
            let landed = self.exec_retry(
                "challenge",
                &bob,
                onchain,
                U256::ZERO,
                data,
                Some(proposed_at + self.window),
                7_900_000,
            );
            if matches!(&landed, Some(r) if r.success) {
                revealed = copy.bytecode.len();
                let instance = Address::from_u256(
                    self.net
                        .storage_at(onchain, U256::from_u64(CHALLENGE_DEPLOYED_ADDR_SLOT)),
                );
                let data = self.contracts.return_dispute_resolution(onchain);
                let r = self
                    .exec_retry(
                        "returnDisputeResolution",
                        &bob,
                        instance,
                        U256::ZERO,
                        data,
                        None,
                        7_900_000,
                    )
                    .expect("resolution lands");
                assert!(r.success, "resolution enforced");
                outcome = Some(ChallengeOutcome::ResolvedByChallenge);
            }
        }

        let outcome = match outcome {
            Some(o) => o,
            None => {
                // Window passes quietly (or the challenge missed it);
                // whoever is still up finalizes — the crashed
                // representative cannot, the watcher can.
                self.advance_past(proposed_at + self.window);
                let finalizer = if crash == CrashPoint::AfterSubmit {
                    bob.clone()
                } else {
                    alice.clone()
                };
                let data = self.contracts.finalize();
                let r = self
                    .exec_retry(
                        "finalize",
                        &finalizer,
                        onchain,
                        U256::ZERO,
                        data,
                        None,
                        7_900_000,
                    )
                    .expect("finalize lands (no deadline)");
                assert!(r.success, "finalize after window");
                if claimed == truth {
                    ChallengeOutcome::FinalizedUnchallenged
                } else {
                    ChallengeOutcome::LieStood
                }
            }
        };

        let report = ChallengeReport {
            txs: self.txs.clone(),
            outcome,
            winner_is_bob: truth,
            offchain_bytes_revealed: revealed,
        };
        (self, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secrets_bob_wins() -> BetSecrets {
        let mut s = BetSecrets {
            secret_a: U256::from_u64(9),
            secret_b: U256::from_u64(10),
            weight: 16,
        };
        while !s.winner_is_bob() {
            s.secret_a = s.secret_a.wrapping_add(U256::ONE);
        }
        s
    }

    #[test]
    fn truthful_submission_finalizes() {
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run(SubmitStrategy::Truthful, WatchStrategy::Vigilant);
        assert_eq!(report.outcome, ChallengeOutcome::FinalizedUnchallenged);
        assert_eq!(report.offchain_bytes_revealed, 0, "privacy preserved");
        assert!(game.net.balance_of(bob_addr) > ether(1000));
    }

    #[test]
    fn false_submission_caught_by_vigilant_watcher() {
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let alice_addr = game.alice.wallet.address;
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run(SubmitStrategy::False, WatchStrategy::Vigilant);
        assert_eq!(report.outcome, ChallengeOutcome::ResolvedByChallenge);
        assert!(
            report.offchain_bytes_revealed > 0,
            "dispute published the code"
        );
        // Bob got pot + both security deposits; the liar lost both.
        assert!(game.net.balance_of(bob_addr) > ether(1001));
        assert!(game.net.balance_of(alice_addr) < ether(999));
    }

    #[test]
    fn false_submission_stands_if_watcher_sleeps() {
        // The design's residual risk, made visible.
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let alice_addr = game.alice.wallet.address;
        let (game, report) = game.run(SubmitStrategy::False, WatchStrategy::Asleep);
        assert_eq!(report.outcome, ChallengeOutcome::LieStood);
        assert!(
            game.net.balance_of(alice_addr) > ether(1000),
            "the unwatched lie profits — participants must stay online"
        );
    }

    #[test]
    fn frivolous_challenge_still_resolves_truthfully() {
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run(SubmitStrategy::Truthful, WatchStrategy::Frivolous);
        assert_eq!(report.outcome, ChallengeOutcome::ResolvedByChallenge);
        // Truth still wins: Bob is the true winner even though his
        // challenge was pointless (he burned gas for nothing).
        assert!(game.net.balance_of(bob_addr) > ether(1000));
    }

    #[test]
    fn unchallenged_path_is_cheaper_than_challenge_path() {
        let (_g1, quiet) = ChallengeGame::new(secrets_bob_wins(), 1800)
            .run(SubmitStrategy::Truthful, WatchStrategy::Vigilant);
        let (_g2, fought) = ChallengeGame::new(secrets_bob_wins(), 1800)
            .run(SubmitStrategy::False, WatchStrategy::Vigilant);
        assert!(
            fought.total_gas() > quiet.total_gas() + 150_000,
            "challenge {} vs quiet {}",
            fought.total_gas(),
            quiet.total_gas()
        );
    }

    #[test]
    fn crashed_representative_cannot_hold_a_watcher_hostage() {
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run_with_crash(
            SubmitStrategy::Truthful,
            WatchStrategy::Vigilant,
            CrashPoint::BeforeSubmit,
        );
        assert_eq!(report.outcome, ChallengeOutcome::ResolvedByChallenge);
        // The true winner collected the pot despite the crash.
        assert!(game.net.balance_of(bob_addr) > ether(1000));
    }

    #[test]
    fn sleeping_parties_reclaim_after_a_silent_representative() {
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let alice_addr = game.alice.wallet.address;
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run_with_crash(
            SubmitStrategy::Truthful,
            WatchStrategy::Asleep,
            CrashPoint::BeforeSubmit,
        );
        assert_eq!(report.outcome, ChallengeOutcome::ReclaimedStale);
        // Both took back exactly their stake + security deposit (gas
        // aside): nobody won, nobody is stuck.
        for a in [alice_addr, bob_addr] {
            let bal = game.net.balance_of(a);
            assert!(bal > ether(1000).wrapping_sub(ether(1) / U256::from_u64(100)));
            assert!(bal <= ether(1000));
        }
        assert_eq!(game.net.balance_of(game.onchain), U256::ZERO);
    }

    #[test]
    fn crash_after_submit_is_finalized_by_the_watcher() {
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run_with_crash(
            SubmitStrategy::Truthful,
            WatchStrategy::Asleep,
            CrashPoint::AfterSubmit,
        );
        assert_eq!(report.outcome, ChallengeOutcome::FinalizedUnchallenged);
        // Bob (the finalizer and true winner) collected.
        assert!(game.net.balance_of(bob_addr) > ether(1000));
        let finalize = report.txs.iter().find(|t| t.label == "finalize").unwrap();
        assert_eq!(finalize.sender, bob_addr, "the watcher finalized");
    }
}
