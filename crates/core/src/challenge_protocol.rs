//! Protocol engine for the submit/challenge variant (extension).
//!
//! Implements the paper's stage-3 narrative literally: after T2 a
//! *representative* submits the off-chain result on-chain; a challenge
//! window follows during which the counterparty can contest it with the
//! signed copy; an uncontested result finalizes cheaply, a contested one
//! is recomputed by the miners and the liar's security deposit pays the
//! challenger's costs.

use crate::participant::Participant;
use crate::signedcopy::SignedCopy;
use sc_chain::{Receipt, Testnet, Wallet};
use sc_contracts::challenge::{
    security_deposit, stake, ChallengeContracts, CHALLENGE_DEPLOYED_ADDR_SLOT,
};
use sc_contracts::{BetSecrets, Timeline};
use sc_primitives::{ether, Address, U256};

/// What the representative does at submission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitStrategy {
    /// Submits the true off-chain result.
    Truthful,
    /// Submits the inverted result (hoping the window expires quietly).
    False,
}

/// What the counterparty does during the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchStrategy {
    /// Checks the submission against the off-chain result and challenges
    /// iff it is wrong.
    Vigilant,
    /// Never checks (models an offline participant).
    Asleep,
    /// Challenges even truthful submissions (frivolous).
    Frivolous,
}

/// Outcome of a challenge-variant game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChallengeOutcome {
    /// The submission stood and was finalized after the window.
    FinalizedUnchallenged,
    /// A challenge ran; miners enforced the recomputed truth.
    ResolvedByChallenge,
    /// A false submission expired unchallenged — the watcher slept and
    /// the lie stands (the residual risk the paper's design accepts).
    LieStood,
}

/// Report of one challenge-variant run.
#[derive(Debug, Clone)]
pub struct ChallengeReport {
    /// Every on-chain transaction: (label, gas, success).
    pub txs: Vec<(String, u64, bool)>,
    /// How it ended.
    pub outcome: ChallengeOutcome,
    /// True off-chain result.
    pub winner_is_bob: bool,
    /// Bytes of the off-chain contract published (0 without a challenge).
    pub offchain_bytes_revealed: usize,
}

impl ChallengeReport {
    /// Gas total over all transactions.
    pub fn total_gas(&self) -> u64 {
        self.txs.iter().map(|t| t.1).sum()
    }

    /// Gas of the first successful tx with the label.
    pub fn gas_of(&self, label: &str) -> Option<u64> {
        self.txs.iter().find(|t| t.0 == label && t.2).map(|t| t.1)
    }
}

/// The challenge-variant game driver.
pub struct ChallengeGame {
    /// The chain.
    pub net: Testnet,
    /// Compiled contract pair.
    pub contracts: ChallengeContracts,
    /// Participant 0 (also the representative who submits).
    pub alice: Participant,
    /// Participant 1 (the watcher).
    pub bob: Participant,
    /// Deployed on-chain contract.
    pub onchain: Address,
    /// The signed off-chain initcode.
    pub bytecode: Vec<u8>,
    secrets: BetSecrets,
    window: u64,
    txs: Vec<(String, u64, bool)>,
}

impl ChallengeGame {
    /// Sets up the chain, deploys the contract, and makes both deposits
    /// (stake + security deposit).
    pub fn new(secrets: BetSecrets, window: u64) -> ChallengeGame {
        let mut net = Testnet::new();
        let alice = Participant::honest("alice");
        let bob = Participant::honest("bob");
        net.faucet(alice.wallet.address, ether(1000));
        net.faucet(bob.wallet.address, ether(1000));
        let tl = Timeline::starting_at(net.now(), 3600);
        let contracts = ChallengeContracts::new();
        let mut txs = Vec::new();

        let r = net
            .deploy(
                &alice.wallet,
                contracts.onchain_initcode(alice.wallet.address, bob.wallet.address, tl, window),
                U256::ZERO,
                7_000_000,
            )
            .expect("deploy admitted");
        assert!(r.success, "challenge contract deploys");
        txs.push(("deploy onChainChallenge".into(), r.gas_used, true));
        let onchain = r.contract_address.expect("created");

        let pay = stake().wrapping_add(security_deposit());
        for p in [&alice, &bob] {
            let r = net
                .execute(&p.wallet, onchain, pay, contracts.deposit(), 400_000)
                .expect("deposit admitted");
            assert!(r.success, "deposit");
            txs.push(("deposit".into(), r.gas_used, true));
        }

        let bytecode =
            contracts.offchain_initcode(alice.wallet.address, bob.wallet.address, secrets);

        // Move past T2 so results can be submitted.
        let now = net.now();
        net.advance_time(tl.t2 - now + 60);

        ChallengeGame {
            net,
            contracts,
            alice,
            bob,
            onchain,
            bytecode,
            secrets,
            window,
            txs,
        }
    }

    /// The fully signed copy of the off-chain contract.
    pub fn signed_copy(&self) -> SignedCopy {
        SignedCopy::create(
            self.bytecode.clone(),
            &[&self.alice.wallet.key, &self.bob.wallet.key],
        )
    }

    fn record(&mut self, label: &str, r: &Receipt) {
        self.txs.push((label.into(), r.gas_used, r.success));
    }

    fn exec(&mut self, label: &str, wallet: &Wallet, to: Address, data: Vec<u8>) -> Receipt {
        let r = self
            .net
            .execute(wallet, to, U256::ZERO, data, 7_900_000)
            .expect("tx admitted");
        self.record(label, &r);
        r
    }

    /// Runs the submit/challenge flow with the given behaviours. Alice is
    /// the representative; Bob watches.
    pub fn run(
        mut self,
        submit: SubmitStrategy,
        watch: WatchStrategy,
    ) -> (ChallengeGame, ChallengeReport) {
        let truth = self.secrets.winner_is_bob();
        let claimed = match submit {
            SubmitStrategy::Truthful => truth,
            SubmitStrategy::False => !truth,
        };

        let alice = self.alice.wallet.clone();
        let bob = self.bob.wallet.clone();
        let onchain = self.onchain;

        let data = self.contracts.submit_result(claimed);
        let r = self.exec("submitResult", &alice, onchain, data);
        assert!(r.success, "submission");

        let wants_challenge = match watch {
            WatchStrategy::Vigilant => claimed != truth,
            WatchStrategy::Asleep => false,
            WatchStrategy::Frivolous => true,
        };

        let mut revealed = 0usize;
        let outcome = if wants_challenge {
            // Bob challenges with the signed copy inside the window.
            let copy = self.signed_copy();
            revealed = copy.bytecode.len();
            let data =
                self.contracts
                    .challenge(&copy.bytecode, &copy.signatures[0], &copy.signatures[1]);
            let r = self.exec("challenge", &bob, onchain, data);
            assert!(r.success, "challenge accepted in-window");
            let instance = Address::from_u256(
                self.net
                    .storage_at(onchain, U256::from_u64(CHALLENGE_DEPLOYED_ADDR_SLOT)),
            );
            let data = self.contracts.return_dispute_resolution(onchain);
            let r = self.exec("returnDisputeResolution", &bob, instance, data);
            assert!(r.success, "resolution enforced");
            ChallengeOutcome::ResolvedByChallenge
        } else {
            // Window passes quietly; anyone finalizes.
            self.net.advance_time(self.window + 60);
            let data = self.contracts.finalize();
            let r = self.exec("finalize", &alice, onchain, data);
            assert!(r.success, "finalize after window");
            if claimed == truth {
                ChallengeOutcome::FinalizedUnchallenged
            } else {
                ChallengeOutcome::LieStood
            }
        };

        let report = ChallengeReport {
            txs: self.txs.clone(),
            outcome,
            winner_is_bob: truth,
            offchain_bytes_revealed: revealed,
        };
        (self, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secrets_bob_wins() -> BetSecrets {
        let mut s = BetSecrets {
            secret_a: U256::from_u64(9),
            secret_b: U256::from_u64(10),
            weight: 16,
        };
        while !s.winner_is_bob() {
            s.secret_a = s.secret_a.wrapping_add(U256::ONE);
        }
        s
    }

    #[test]
    fn truthful_submission_finalizes() {
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run(SubmitStrategy::Truthful, WatchStrategy::Vigilant);
        assert_eq!(report.outcome, ChallengeOutcome::FinalizedUnchallenged);
        assert_eq!(report.offchain_bytes_revealed, 0, "privacy preserved");
        assert!(game.net.balance_of(bob_addr) > ether(1000));
    }

    #[test]
    fn false_submission_caught_by_vigilant_watcher() {
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let alice_addr = game.alice.wallet.address;
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run(SubmitStrategy::False, WatchStrategy::Vigilant);
        assert_eq!(report.outcome, ChallengeOutcome::ResolvedByChallenge);
        assert!(
            report.offchain_bytes_revealed > 0,
            "dispute published the code"
        );
        // Bob got pot + both security deposits; the liar lost both.
        assert!(game.net.balance_of(bob_addr) > ether(1001));
        assert!(game.net.balance_of(alice_addr) < ether(999));
    }

    #[test]
    fn false_submission_stands_if_watcher_sleeps() {
        // The design's residual risk, made visible.
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let alice_addr = game.alice.wallet.address;
        let (game, report) = game.run(SubmitStrategy::False, WatchStrategy::Asleep);
        assert_eq!(report.outcome, ChallengeOutcome::LieStood);
        assert!(
            game.net.balance_of(alice_addr) > ether(1000),
            "the unwatched lie profits — participants must stay online"
        );
    }

    #[test]
    fn frivolous_challenge_still_resolves_truthfully() {
        let game = ChallengeGame::new(secrets_bob_wins(), 1800);
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run(SubmitStrategy::Truthful, WatchStrategy::Frivolous);
        assert_eq!(report.outcome, ChallengeOutcome::ResolvedByChallenge);
        // Truth still wins: Bob is the true winner even though his
        // challenge was pointless (he burned gas for nothing).
        assert!(game.net.balance_of(bob_addr) > ether(1000));
    }

    #[test]
    fn unchallenged_path_is_cheaper_than_challenge_path() {
        let (_g1, quiet) = ChallengeGame::new(secrets_bob_wins(), 1800)
            .run(SubmitStrategy::Truthful, WatchStrategy::Vigilant);
        let (_g2, fought) = ChallengeGame::new(secrets_bob_wins(), 1800)
            .run(SubmitStrategy::False, WatchStrategy::Vigilant);
        assert!(
            fought.total_gas() > quiet.total_gas() + 150_000,
            "challenge {} vs quiet {}",
            fought.total_gas(),
            quiet.total_gas()
        );
    }
}
