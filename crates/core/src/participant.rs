//! Participants and their (possibly Byzantine) strategies.

use sc_chain::Wallet;

/// How a participant behaves at each stage of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Follows the agreed off-chain contract faithfully.
    Honest,
    /// Never shares a signature during deploy/sign, stalling the game
    /// before any deposit is at risk.
    RefusesToSign,
    /// Shares a signature over a *tampered* bytecode during deploy/sign;
    /// honest counterparties detect this before depositing.
    SignsTampered,
    /// Plays along but, upon losing, refuses to call `reassign()` —
    /// the dispute the paper's Table I step 5 resolves.
    SilentLoser,
    /// Upon losing, additionally tries to resolve the dispute with a
    /// *forged* bytecode favouring itself before the honest winner acts.
    ForgingLoser,
    /// Never makes the deposit; the game dissolves via refunds.
    NoShow,
}

impl Strategy {
    /// True iff this strategy deviates from the protocol at any stage.
    pub fn is_byzantine(&self) -> bool {
        !matches!(self, Strategy::Honest)
    }

    /// True iff the strategy refuses to concede after losing.
    pub fn disputes_result(&self) -> bool {
        matches!(self, Strategy::SilentLoser | Strategy::ForgingLoser)
    }
}

/// A protocol participant: a funded wallet plus a behaviour.
#[derive(Clone, Debug)]
pub struct Participant {
    /// Chain identity and signing key.
    pub wallet: Wallet,
    /// Behaviour across the four stages.
    pub strategy: Strategy,
}

impl Participant {
    /// An honest participant from a deterministic seed.
    pub fn honest(seed: &str) -> Participant {
        Participant {
            wallet: Wallet::from_seed(seed),
            strategy: Strategy::Honest,
        }
    }

    /// A participant with an explicit strategy.
    pub fn with_strategy(seed: &str, strategy: Strategy) -> Participant {
        Participant {
            wallet: Wallet::from_seed(seed),
            strategy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byzantine_classification() {
        assert!(!Strategy::Honest.is_byzantine());
        for s in [
            Strategy::RefusesToSign,
            Strategy::SignsTampered,
            Strategy::SilentLoser,
            Strategy::ForgingLoser,
            Strategy::NoShow,
        ] {
            assert!(s.is_byzantine());
        }
        assert!(Strategy::SilentLoser.disputes_result());
        assert!(Strategy::ForgingLoser.disputes_result());
        assert!(!Strategy::SignsTampered.disputes_result());
    }

    #[test]
    fn deterministic_identities() {
        let p1 = Participant::honest("alice");
        let p2 = Participant::honest("alice");
        assert_eq!(p1.wallet.address, p2.wallet.address);
    }
}
