//! An in-process stand-in for Ethereum's Whisper messaging layer.
//!
//! The paper's deploy/sign stage requires each participant to obtain a
//! copy of the off-chain contract carrying *everyone's* signature before
//! touching the on-chain contract, "easily implemented through off-chain
//! communication approaches, such as Whisper". This module provides the
//! delivery semantics that matter for the protocol: topic-based fan-out,
//! per-subscriber cursors, and sender attribution — no networking.

use sc_primitives::Address;
use std::collections::HashMap;

/// A message on a topic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Claimed sender (payloads carry their own signatures; the bus does
    /// not authenticate).
    pub from: Address,
    /// Topic string, e.g. `"betting/signed-copies"`.
    pub topic: String,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

/// Topic-name helpers.
///
/// Topics are plain strings; when many protocol sessions share one bus
/// each session must publish under its own namespace or readers would
/// pick up another session's signed copies. [`Topic::scoped`] builds
/// the canonical per-session name.
pub struct Topic;

impl Topic {
    /// The session-scoped topic `session/<id>/<name>`, e.g.
    /// `Topic::scoped(7, "signed-copies")` → `"session/7/signed-copies"`.
    /// Distinct session ids can never collide: the id is numeric, so no
    /// crafted `name` in one session can alias another session's topic.
    pub fn scoped(session_id: u64, name: &str) -> String {
        format!("session/{session_id}/{name}")
    }

    /// The node-scoped topic `node/<i>/<name>`, e.g.
    /// `Topic::node_scoped(2, "blocks")` → `"node/2/blocks"`.
    ///
    /// In a multi-node run every node's gossip inbox (blocks, pooled
    /// transactions) and the session traffic *homed* on that node live
    /// under its own numeric namespace, so two nodes sharing one bus can
    /// never read each other's inbound frames — the network layer alone
    /// decides what crosses between nodes, which is what makes
    /// partitions enforceable.
    pub fn node_scoped(node_id: usize, name: &str) -> String {
        format!("node/{node_id}/{name}")
    }

    /// A session topic homed on one node: `node/<i>/session/<id>/<name>`.
    /// Sessions running on different nodes of the same network stay
    /// isolated even with identical session ids.
    pub fn node_session(node_id: usize, session_id: u64, name: &str) -> String {
        format!("node/{node_id}/session/{session_id}/{name}")
    }
}

/// A topic-based broadcast bus with per-reader cursors.
#[derive(Default)]
pub struct Whisper {
    topics: HashMap<String, Vec<Envelope>>,
    cursors: HashMap<(Address, String), usize>,
    /// Envelopes cloned out of the bus by `poll`, ever. A poll clones
    /// only the reader's unseen tail, so across any call sequence this is
    /// Σ(new messages per poll), not Σ(topic length per poll).
    cloned: usize,
}

impl Whisper {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a message to a topic.
    pub fn post(&mut self, from: Address, topic: &str, payload: Vec<u8>) {
        self.topics
            .entry(topic.to_string())
            .or_default()
            .push(Envelope {
                from,
                topic: topic.to_string(),
                payload,
            });
    }

    /// Drains messages on `topic` that `reader` has not seen yet.
    ///
    /// Clones only the unseen tail past the reader's cursor — O(new
    /// messages), not O(topic length) — so long-lived readers polling a
    /// busy topic don't re-copy the whole history every call.
    pub fn poll(&mut self, reader: Address, topic: &str) -> Vec<Envelope> {
        let msgs = self.topics.get(topic).map_or(&[][..], Vec::as_slice);
        let total = msgs.len();
        let cursor = self.cursors.entry((reader, topic.to_string())).or_insert(0);
        let new = msgs[(*cursor).min(total)..].to_vec();
        *cursor = total;
        self.cloned += new.len();
        new
    }

    /// All messages ever posted on a topic (no cursor movement).
    pub fn history(&self, topic: &str) -> &[Envelope] {
        self.topics.get(topic).map_or(&[], Vec::as_slice)
    }

    /// Total messages across all topics (diagnostics).
    pub fn message_count(&self) -> usize {
        self.topics.values().map(Vec::len).sum()
    }

    /// Total envelopes ever cloned out by [`Whisper::poll`] (diagnostics;
    /// pins the O(new)-per-poll behaviour in a regression test).
    pub fn envelopes_cloned(&self) -> usize {
        self.cloned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(b: u8) -> Address {
        Address([b; 20])
    }

    #[test]
    fn fan_out_with_independent_cursors() {
        let mut w = Whisper::new();
        w.post(addr(1), "t", vec![1]);
        w.post(addr(2), "t", vec![2]);
        let got_a = w.poll(addr(3), "t");
        assert_eq!(got_a.len(), 2);
        // Re-poll: nothing new for A.
        assert!(w.poll(addr(3), "t").is_empty());
        // B still sees everything.
        assert_eq!(w.poll(addr(4), "t").len(), 2);
        // New message reaches both.
        w.post(addr(1), "t", vec![3]);
        assert_eq!(w.poll(addr(3), "t").len(), 1);
        assert_eq!(w.poll(addr(4), "t").len(), 1);
    }

    #[test]
    fn topics_are_isolated() {
        let mut w = Whisper::new();
        w.post(addr(1), "a", vec![1]);
        assert!(w.poll(addr(2), "b").is_empty());
        assert_eq!(w.poll(addr(2), "a").len(), 1);
    }

    #[test]
    fn history_preserves_order_and_sender() {
        let mut w = Whisper::new();
        w.post(addr(1), "t", vec![1]);
        w.post(addr(2), "t", vec![2]);
        let h = w.history("t");
        assert_eq!(h[0].from, addr(1));
        assert_eq!(h[1].from, addr(2));
        assert_eq!(w.message_count(), 2);
    }

    #[test]
    fn poll_clones_only_the_unseen_tail() {
        // Regression: `poll` used to clone the entire topic history on
        // every call (O(total)), only to slice it afterwards. Pin the
        // O(new) behaviour by counting cloned envelopes.
        let mut w = Whisper::new();
        for i in 0..100u8 {
            w.post(addr(1), "busy", vec![i]);
        }
        assert_eq!(w.poll(addr(2), "busy").len(), 100);
        assert_eq!(w.envelopes_cloned(), 100);
        // A long-lived reader polling a busy topic: each poll must copy
        // only the one new message, not the whole history again.
        for i in 0..10u8 {
            w.post(addr(1), "busy", vec![100 + i]);
            assert_eq!(w.poll(addr(2), "busy").len(), 1);
        }
        // O(new): 100 + 10×1. The old O(total) code would have cloned
        // 100 + (101 + 102 + … + 110) = 1265.
        assert_eq!(w.envelopes_cloned(), 110);
        assert_eq!(w.message_count(), 110);
        // Empty re-poll clones nothing.
        assert!(w.poll(addr(2), "busy").is_empty());
        assert_eq!(w.envelopes_cloned(), 110);
    }

    #[test]
    fn scoped_topics_isolate_sessions_on_one_bus() {
        // Two sessions exchange "signed copies" over the same bus; with
        // scoped topics neither reader ever sees the other session's
        // payloads, even with identical participants and topic names.
        let mut w = Whisper::new();
        let t0 = Topic::scoped(0, "signed-copies");
        let t1 = Topic::scoped(1, "signed-copies");
        assert_ne!(t0, t1);
        w.post(addr(1), &t0, vec![0xa0]);
        w.post(addr(1), &t1, vec![0xa1]);
        w.post(addr(2), &t1, vec![0xb1]);
        let s0 = w.poll(addr(9), &t0);
        assert_eq!(s0.len(), 1);
        assert_eq!(s0[0].payload, vec![0xa0]);
        let s1 = w.poll(addr(9), &t1);
        assert_eq!(s1.len(), 2);
        assert!(s1.iter().all(|e| e.payload != vec![0xa0]));
    }

    #[test]
    fn node_scoped_topics_cannot_bleed_across_nodes() {
        // Two nodes share one bus. Node 0's block inbox and node 1's
        // block inbox are distinct topics, and a crafted session name
        // cannot alias another node's namespace because the node id is
        // numeric and the layout is fixed.
        let mut w = Whisper::new();
        let n0 = Topic::node_scoped(0, "blocks");
        let n1 = Topic::node_scoped(1, "blocks");
        assert_ne!(n0, n1);
        w.post(addr(1), &n0, vec![0xb0]);
        w.post(addr(1), &n1, vec![0xb1]);
        let got = w.poll(addr(9), &n0);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, vec![0xb0]);

        // Same session id on two different nodes: isolated.
        let s_on_0 = Topic::node_session(0, 7, "signed-copies");
        let s_on_1 = Topic::node_session(1, 7, "signed-copies");
        assert_ne!(s_on_0, s_on_1);
        w.post(addr(2), &s_on_0, vec![0xc0]);
        assert!(w.poll(addr(9), &s_on_1).is_empty());
        assert_eq!(w.poll(addr(9), &s_on_0).len(), 1);

        // No crafted name collides with another node's gossip inbox:
        // "session/…" under node 0 can't equal any node_scoped(1, …).
        assert_ne!(Topic::node_scoped(0, "session/1/blocks"), n1);
        assert_ne!(Topic::node_session(0, 1, "blocks"), n1);
    }

    #[test]
    fn empty_topic_polls_empty() {
        let mut w = Whisper::new();
        assert!(w.poll(addr(1), "nothing").is_empty());
        assert!(w.history("nothing").is_empty());
    }
}
