//! An in-process stand-in for Ethereum's Whisper messaging layer.
//!
//! The paper's deploy/sign stage requires each participant to obtain a
//! copy of the off-chain contract carrying *everyone's* signature before
//! touching the on-chain contract, "easily implemented through off-chain
//! communication approaches, such as Whisper". This module provides the
//! delivery semantics that matter for the protocol: topic-based fan-out,
//! per-subscriber cursors, and sender attribution — no networking.

use sc_primitives::Address;
use std::collections::HashMap;

/// A message on a topic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Claimed sender (payloads carry their own signatures; the bus does
    /// not authenticate).
    pub from: Address,
    /// Topic string, e.g. `"betting/signed-copies"`.
    pub topic: String,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

/// A topic-based broadcast bus with per-reader cursors.
#[derive(Default)]
pub struct Whisper {
    topics: HashMap<String, Vec<Envelope>>,
    cursors: HashMap<(Address, String), usize>,
}

impl Whisper {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a message to a topic.
    pub fn post(&mut self, from: Address, topic: &str, payload: Vec<u8>) {
        self.topics
            .entry(topic.to_string())
            .or_default()
            .push(Envelope {
                from,
                topic: topic.to_string(),
                payload,
            });
    }

    /// Drains messages on `topic` that `reader` has not seen yet.
    pub fn poll(&mut self, reader: Address, topic: &str) -> Vec<Envelope> {
        let msgs = self.topics.get(topic).cloned().unwrap_or_default();
        let cursor = self.cursors.entry((reader, topic.to_string())).or_insert(0);
        let new = msgs[(*cursor).min(msgs.len())..].to_vec();
        *cursor = msgs.len();
        new
    }

    /// All messages ever posted on a topic (no cursor movement).
    pub fn history(&self, topic: &str) -> &[Envelope] {
        self.topics.get(topic).map_or(&[], Vec::as_slice)
    }

    /// Total messages across all topics (diagnostics).
    pub fn message_count(&self) -> usize {
        self.topics.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(b: u8) -> Address {
        Address([b; 20])
    }

    #[test]
    fn fan_out_with_independent_cursors() {
        let mut w = Whisper::new();
        w.post(addr(1), "t", vec![1]);
        w.post(addr(2), "t", vec![2]);
        let got_a = w.poll(addr(3), "t");
        assert_eq!(got_a.len(), 2);
        // Re-poll: nothing new for A.
        assert!(w.poll(addr(3), "t").is_empty());
        // B still sees everything.
        assert_eq!(w.poll(addr(4), "t").len(), 2);
        // New message reaches both.
        w.post(addr(1), "t", vec![3]);
        assert_eq!(w.poll(addr(3), "t").len(), 1);
        assert_eq!(w.poll(addr(4), "t").len(), 1);
    }

    #[test]
    fn topics_are_isolated() {
        let mut w = Whisper::new();
        w.post(addr(1), "a", vec![1]);
        assert!(w.poll(addr(2), "b").is_empty());
        assert_eq!(w.poll(addr(2), "a").len(), 1);
    }

    #[test]
    fn history_preserves_order_and_sender() {
        let mut w = Whisper::new();
        w.post(addr(1), "t", vec![1]);
        w.post(addr(2), "t", vec![2]);
        let h = w.history("t");
        assert_eq!(h[0].from, addr(1));
        assert_eq!(h[1].from, addr(2));
        assert_eq!(w.message_count(), 2);
    }

    #[test]
    fn empty_topic_polls_empty() {
        let mut w = Whisper::new();
        assert!(w.poll(addr(1), "nothing").is_empty());
        assert!(w.history("nothing").is_empty());
    }
}
