//! Split/generate stage: classify a contract's functions into
//! light/public vs heavy/private and plan the on/off-chain pair.
//!
//! The paper's recommendation: "allocate all functions of cryptocurrency
//! transfer into light/public functions and consider the remaining ones
//! as heavy/private functions." This module implements that heuristic,
//! backed by a static gas estimator that flags unbounded computation
//! (loops, whose trip counts are data-dependent), plus the *padding*
//! plan: the three extra functions that each side must gain to make
//! dispute resolution possible.

use sc_lang::ast::{Contract, Expr, Function, Stmt};
use std::collections::HashMap;

/// Which side of the split a function lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunctionClass {
    /// Cheap and/or public: stays on-chain.
    LightPublic,
    /// Expensive and/or private: moves off-chain.
    HeavyPrivate,
    /// Contains both a cryptocurrency transfer and heavy computation —
    /// the paper's `settle()` shape; must be decomposed (the heavy part
    /// becomes `reveal()` off-chain, the transfer part stays on-chain).
    MixedDecompose,
}

/// A conservative static gas estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GasEstimate {
    /// Lower bound on execution gas (loop bodies counted once).
    pub lower: u64,
    /// False when the function contains loops whose trip counts are
    /// data-dependent — its cost is effectively unbounded.
    pub bounded: bool,
}

/// Why a function was classified the way it was.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Function name.
    pub name: String,
    /// Assigned class.
    pub class: FunctionClass,
    /// Static cost estimate.
    pub estimate: GasEstimate,
    /// Human-readable rationale.
    pub reasons: Vec<String>,
}

/// The planned on/off-chain pair for a contract.
#[derive(Debug, Clone)]
pub struct SplitPlan {
    /// Original contract name.
    pub contract: String,
    /// Per-function classifications.
    pub classes: Vec<Classification>,
    /// Functions (by name) placed in the on-chain contract.
    pub onchain_functions: Vec<String>,
    /// Functions (by name) placed in the off-chain contract.
    pub offchain_functions: Vec<String>,
    /// Extra functions padded onto the on-chain contract.
    pub onchain_padding: Vec<&'static str>,
    /// Extra functions padded onto the off-chain contract.
    pub offchain_padding: Vec<&'static str>,
}

/// Rough per-construct gas weights for the static estimator (SSTORE
/// averaged between set and reset; transfer = call + value surcharge).
mod w {
    pub const SSTORE: u64 = 12_500;
    pub const SLOAD: u64 = 200;
    pub const TRANSFER: u64 = 9_700;
    pub const EXTERNAL_CALL: u64 = 2_600;
    pub const KECCAK: u64 = 66;
    pub const ECRECOVER: u64 = 3_000;
    pub const CREATE: u64 = 32_000;
    pub const ARITH: u64 = 8;
    pub const MAPPING_ACCESS: u64 = 242; // hash + sload
}

/// Statically estimates a function's execution gas.
pub fn estimate_function(f: &Function, contract: &Contract) -> GasEstimate {
    let mut est = GasEstimate {
        lower: 0,
        bounded: true,
    };
    // Include modifier bodies: their requires run on every call.
    for mname in &f.modifiers {
        if let Some(m) = contract.modifiers.iter().find(|m| &m.name == mname) {
            estimate_stmts(&m.body, contract, &mut est);
        }
    }
    estimate_stmts(&f.body, contract, &mut est);
    est
}

fn estimate_stmts(stmts: &[Stmt], contract: &Contract, est: &mut GasEstimate) {
    for s in stmts {
        match s {
            Stmt::VarDecl(_, e) => estimate_expr(e, contract, est),
            Stmt::Assign(lv, e) => {
                estimate_expr(e, contract, est);
                est.lower += match lv {
                    sc_lang::ast::LValue::Ident(_) => w::SSTORE, // worst case: state
                    sc_lang::ast::LValue::Index(_, _) => w::SSTORE + w::MAPPING_ACCESS,
                };
            }
            Stmt::Require(e) | Stmt::Return(Some(e)) | Stmt::ExprStmt(e) => {
                estimate_expr(e, contract, est)
            }
            Stmt::Transfer(a, v) => {
                estimate_expr(a, contract, est);
                estimate_expr(v, contract, est);
                est.lower += w::TRANSFER;
            }
            Stmt::If(c, a, b) => {
                estimate_expr(c, contract, est);
                // Count the cheaper branch as the floor.
                let mut ea = GasEstimate {
                    lower: 0,
                    bounded: true,
                };
                let mut eb = ea;
                estimate_stmts(a, contract, &mut ea);
                estimate_stmts(b, contract, &mut eb);
                est.lower += ea.lower.min(eb.lower);
                est.bounded &= ea.bounded && eb.bounded;
            }
            Stmt::While(c, body) => {
                estimate_expr(c, contract, est);
                // Trip count is data-dependent: unbounded cost.
                est.bounded = false;
                estimate_stmts(body, contract, est);
            }
            _ => {}
        }
    }
}

fn estimate_expr(e: &Expr, contract: &Contract, est: &mut GasEstimate) {
    match e {
        Expr::Bin(_, a, b) => {
            est.lower += w::ARITH;
            estimate_expr(a, contract, est);
            estimate_expr(b, contract, est);
        }
        Expr::Not(x) | Expr::Neg(x) | Expr::Cast(_, x) => {
            est.lower += w::ARITH;
            estimate_expr(x, contract, est);
        }
        Expr::Ident(_) => est.lower += w::SLOAD, // worst case: state read
        Expr::Index(_, i) => {
            est.lower += w::MAPPING_ACCESS;
            estimate_expr(i, contract, est);
        }
        Expr::Balance(x) => {
            est.lower += 400;
            estimate_expr(x, contract, est);
        }
        Expr::Keccak(x) => {
            est.lower += w::KECCAK;
            estimate_expr(x, contract, est);
        }
        Expr::EcRecover(a, b, c, d) => {
            est.lower += w::ECRECOVER;
            for x in [a, b, c, d] {
                estimate_expr(x, contract, est);
            }
        }
        Expr::Create(x) => {
            est.lower += w::CREATE;
            estimate_expr(x, contract, est);
        }
        Expr::InternalCall(name, args) => {
            for a in args {
                estimate_expr(a, contract, est);
            }
            if let Some(callee) = contract.functions.iter().find(|f| &f.name == name) {
                let inner = estimate_function(callee, contract);
                est.lower += inner.lower;
                est.bounded &= inner.bounded;
            }
        }
        Expr::ExternalCall { addr, args, .. } => {
            est.lower += w::EXTERNAL_CALL;
            estimate_expr(addr, contract, est);
            for a in args {
                estimate_expr(a, contract, est);
            }
        }
        _ => {}
    }
}

/// True iff the function moves cryptocurrency (directly or through a
/// callee) — the paper's marker for light/public.
pub fn moves_currency(f: &Function, contract: &Contract) -> bool {
    fn stmts_move(stmts: &[Stmt], contract: &Contract, depth: usize) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Transfer(_, _) => true,
            Stmt::If(_, a, b) => stmts_move(a, contract, depth) || stmts_move(b, contract, depth),
            Stmt::While(_, b) => stmts_move(b, contract, depth),
            Stmt::ExprStmt(Expr::InternalCall(name, _))
            | Stmt::VarDecl(_, Expr::InternalCall(name, _)) => {
                depth < 8
                    && contract
                        .functions
                        .iter()
                        .find(|f| &f.name == name)
                        .is_some_and(|f| stmts_move(&f.body, contract, depth + 1))
            }
            _ => false,
        })
    }
    f.payable || stmts_move(&f.body, contract, 0)
}

/// Classifies one function per the paper's heuristic.
pub fn classify_function(f: &Function, contract: &Contract) -> Classification {
    let estimate = estimate_function(f, contract);
    let currency = moves_currency(f, contract);
    let heavy = !estimate.bounded || estimate.lower > 60_000;

    let mut reasons = Vec::new();
    if f.payable {
        reasons.push("accepts deposits (payable)".to_string());
    }
    if currency && !f.payable {
        reasons.push("performs cryptocurrency transfer".to_string());
    }
    if !estimate.bounded {
        reasons.push("contains data-dependent loops (unbounded gas)".to_string());
    }
    if estimate.bounded && estimate.lower > 60_000 {
        reasons.push(format!(
            "estimated gas {} exceeds threshold",
            estimate.lower
        ));
    }

    let class = match (currency, heavy) {
        (true, true) => {
            reasons.push(
                "mixes transfers with heavy computation: decompose like the paper's settle()"
                    .to_string(),
            );
            FunctionClass::MixedDecompose
        }
        (true, false) => FunctionClass::LightPublic,
        (false, true) => FunctionClass::HeavyPrivate,
        (false, false) => {
            reasons.push(
                "cheap and transfer-free; defaulting to heavy/private to hide logic".to_string(),
            );
            FunctionClass::HeavyPrivate
        }
    };

    Classification {
        name: f.name.clone(),
        class,
        estimate,
        reasons,
    }
}

/// The extra functions the split/generate stage pads on (Fig. 2).
pub const ONCHAIN_PADDING: [&str; 2] = ["deployVerifiedInstance", "enforceDisputeResolution"];
/// The extra function padded onto the off-chain contract.
pub const OFFCHAIN_PADDING: [&str; 1] = ["returnDisputeResolution"];

/// Plans the split of a whole contract into the on/off-chain pair.
pub fn split(contract: &Contract) -> SplitPlan {
    let mut classes = Vec::new();
    let mut onchain = Vec::new();
    let mut offchain = Vec::new();
    for f in &contract.functions {
        let c = classify_function(f, contract);
        match c.class {
            FunctionClass::LightPublic => onchain.push(f.name.clone()),
            FunctionClass::HeavyPrivate => offchain.push(f.name.clone()),
            FunctionClass::MixedDecompose => {
                // The transfer shell stays on-chain; the computation is
                // expected to be extracted off-chain by the developer.
                onchain.push(format!("{} (transfer shell)", f.name));
                offchain.push(format!("{} (extracted computation)", f.name));
            }
        }
        classes.push(c);
    }
    SplitPlan {
        contract: contract.name.clone(),
        classes,
        onchain_functions: onchain,
        offchain_functions: offchain,
        onchain_padding: ONCHAIN_PADDING.to_vec(),
        offchain_padding: OFFCHAIN_PADDING.to_vec(),
    }
}

impl SplitPlan {
    /// Classification lookup by function name.
    pub fn class_of(&self, name: &str) -> Option<FunctionClass> {
        self.classes
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.class)
    }

    /// Renders the plan as a human-readable report.
    pub fn report(&self) -> String {
        let mut out = format!("split plan for `{}`\n", self.contract);
        let mut by_name: HashMap<&str, &Classification> = HashMap::new();
        for c in &self.classes {
            by_name.insert(c.name.as_str(), c);
        }
        out.push_str("  on-chain (light/public):\n");
        for f in &self.onchain_functions {
            out.push_str(&format!("    {f}\n"));
        }
        for f in &self.onchain_padding {
            out.push_str(&format!("    {f} [padded extra]\n"));
        }
        out.push_str("  off-chain (heavy/private):\n");
        for f in &self.offchain_functions {
            out.push_str(&format!("    {f}\n"));
        }
        for f in &self.offchain_padding {
            out.push_str(&format!("    {f} [padded extra]\n"));
        }
        out.push_str("  rationale:\n");
        for c in &self.classes {
            out.push_str(&format!(
                "    {}: {:?} (est ≥ {} gas{}) — {}\n",
                c.name,
                c.class,
                c.estimate.lower,
                if c.estimate.bounded {
                    ""
                } else {
                    ", unbounded"
                },
                c.reasons.join("; ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_contracts::MONOLITHIC_SRC;
    use sc_lang::parse;

    fn monolithic() -> Contract {
        parse(MONOLITHIC_SRC).unwrap().contracts[0].clone()
    }

    #[test]
    fn deposit_and_refunds_are_light_public() {
        let c = monolithic();
        let plan = split(&c);
        assert_eq!(plan.class_of("deposit"), Some(FunctionClass::LightPublic));
        assert_eq!(
            plan.class_of("refundRoundOne"),
            Some(FunctionClass::LightPublic)
        );
        assert_eq!(
            plan.class_of("refundRoundTwo"),
            Some(FunctionClass::LightPublic)
        );
    }

    #[test]
    fn reveal_is_heavy_private() {
        let c = monolithic();
        let plan = split(&c);
        assert_eq!(plan.class_of("reveal"), Some(FunctionClass::HeavyPrivate));
        let cls = plan.classes.iter().find(|x| x.name == "reveal").unwrap();
        assert!(!cls.estimate.bounded, "loop makes reveal unbounded");
    }

    #[test]
    fn settle_is_mixed_and_needs_decomposition() {
        let c = monolithic();
        let plan = split(&c);
        assert_eq!(
            plan.class_of("settle"),
            Some(FunctionClass::MixedDecompose),
            "settle moves ether AND calls the unbounded reveal()"
        );
    }

    #[test]
    fn padding_matches_the_papers_extra_functions() {
        let plan = split(&monolithic());
        assert_eq!(
            plan.onchain_padding,
            vec!["deployVerifiedInstance", "enforceDisputeResolution"]
        );
        assert_eq!(plan.offchain_padding, vec!["returnDisputeResolution"]);
    }

    #[test]
    fn report_mentions_every_function() {
        let plan = split(&monolithic());
        let report = plan.report();
        for f in [
            "deposit",
            "refundRoundOne",
            "refundRoundTwo",
            "reveal",
            "settle",
        ] {
            assert!(report.contains(f), "report missing {f}:\n{report}");
        }
    }

    #[test]
    fn estimator_orders_costs_sensibly() {
        let c = monolithic();
        let deposit = c.functions.iter().find(|f| f.name == "deposit").unwrap();
        let reveal = c.functions.iter().find(|f| f.name == "reveal").unwrap();
        let e_deposit = estimate_function(deposit, &c);
        let e_reveal = estimate_function(reveal, &c);
        assert!(e_deposit.bounded);
        assert!(!e_reveal.bounded);
        assert!(e_deposit.lower > 0);
    }

    #[test]
    fn split_of_the_papers_pair_is_consistent() {
        // The hand-written pair in sc-contracts must agree with what the
        // classifier says about the monolithic whole.
        let plan = split(&monolithic());
        // Everything that ended up in the paper's on-chain contract is
        // classified light/public (or the shell of a mixed function).
        for f in ["deposit", "refundRoundOne", "refundRoundTwo"] {
            assert!(plan.onchain_functions.iter().any(|n| n.contains(f)));
        }
        // reveal lands off-chain.
        assert!(plan.offchain_functions.iter().any(|n| n.contains("reveal")));
    }
}
