//! Deterministic fault injection for the off-chain bus and the chain.
//!
//! Everything here is driven by one `u64` seed: the seed fixes a
//! [`FaultPlan`] (which faults, at what rates, within what budget), and
//! the plan seeds one xorshift stream per injection site. Re-running
//! with the same seed replays the identical fault schedule, message
//! order, and timing — a chaos-suite failure is reproducible from the
//! single printed number.
//!
//! Two properties make the harness compatible with liveness proofs:
//!
//! * **Finite budgets.** Every injected fault consumes from a per-site
//!   budget drawn from the seed (whisper ≤ 24, chain ≤ 12). Once a
//!   budget is spent the wrapper behaves perfectly, so any retry loop
//!   with more attempts than the budget is guaranteed to terminate.
//! * **Bounded time.** Injected mining delays and the drivers' retry
//!   backoffs are capped (≤ [`MAX_INJECTED_SECS`] per fault) so the
//!   worst-case injected wall-clock stays well inside one T1–T3 phase
//!   window; a fault schedule can cost a participant money (a missed
//!   deadline degrades to the refund or dispute path) but can never
//!   wedge a stage.

use crate::whisper::{Envelope, Whisper};
use sc_chain::{Receipt, Testnet, TxError, Wallet};
use sc_primitives::{Address, U256};
use std::fmt;
use std::ops::{Deref, DerefMut};

/// Upper bound on the seconds any single injected fault (mining delay)
/// or driver backoff may add to the clock.
pub const MAX_INJECTED_SECS: u64 = 120;

/// `xorshift64*`-style PRNG: tiny, seedable, and good enough to spread
/// fault schedules. The raw seed passes through SplitMix64 first so
/// adjacent seeds (0, 1, 2, …) still produce unrelated streams.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

/// SplitMix64 step: the standard seed-scrambler (also used to derive
/// independent per-site streams from one master seed).
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl XorShift64 {
    /// Seeds the generator (any seed is fine, including 0).
    pub fn new(seed: u64) -> XorShift64 {
        let mut s = seed;
        let scrambled = splitmix64(&mut s);
        XorShift64 {
            // xorshift has a fixed point at 0; SplitMix64 maps exactly
            // one input there, so nudge it.
            state: if scrambled == 0 { 0x1 } else { scrambled },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// The seed-derived schedule: which faults fire, how often, and the
/// total number allowed at each site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The master seed the plan (and all streams) derive from.
    pub seed: u64,
    /// Per-post chance (‰) a whisper message is silently dropped.
    pub drop_permille: u32,
    /// Per-post chance (‰) a message is delivered twice.
    pub duplicate_permille: u32,
    /// Per-post chance (‰) one payload byte is flipped in transit.
    pub corrupt_permille: u32,
    /// Per-post chance (‰) delivery is held back a few polls.
    pub delay_permille: u32,
    /// Per-poll chance (‰) fresh messages arrive shuffled.
    pub reorder_permille: u32,
    /// Polls a delayed message is held for (1..=4).
    pub max_delay_polls: u32,
    /// Per-submission chance (‰) the node reports a transient failure.
    pub submit_fail_permille: u32,
    /// Per-submission chance (‰) mining is preceded by a clock jump.
    pub mining_delay_permille: u32,
    /// Size of an injected mining delay in seconds (≤ [`MAX_INJECTED_SECS`]).
    pub max_mining_delay_secs: u64,
    /// Total whisper faults allowed before the bus turns perfect.
    pub whisper_fault_budget: u32,
    /// Total chain faults allowed before the node turns perfect.
    pub chain_fault_budget: u32,
    /// Per-submission chance (‰) a pooled transaction's gossip is
    /// dropped before it reaches the pool (pooled mode only).
    pub gossip_drop_permille: u32,
    /// Per-submission chance (‰) pool admission is delayed (pooled
    /// mode only).
    pub admission_delay_permille: u32,
    /// Size of an injected admission delay in seconds
    /// (≤ [`MAX_INJECTED_SECS`]).
    pub max_admission_delay_secs: u64,
    /// Total pool faults allowed before admission turns perfect.
    pub pool_fault_budget: u32,
    /// Per-round chance (‰) a network partition starts (multi-node
    /// runs only).
    pub partition_permille: u32,
    /// Longest a partition may last, in gossip rounds (4..=15 — long
    /// enough to force competing chains, short enough that the reorg
    /// stays within retained undo history).
    pub max_partition_rounds: u64,
    /// Per-message chance (‰) a link holds a gossiped frame back extra
    /// rounds (multi-node runs only).
    pub link_delay_permille: u32,
    /// Longest an injected link delay may hold a frame, in rounds
    /// (1..=3).
    pub max_link_delay_rounds: u64,
    /// Total link faults (partitions + delays) allowed before every
    /// link turns perfect.
    pub link_fault_budget: u32,
    /// Per-fetch chance (‰) a witness requested from the relay is
    /// dropped in transit (light sessions only — the port refetches).
    pub proof_drop_permille: u32,
    /// Per-round chance (‰) a light client's header push is withheld
    /// for the round (the port's pull path recovers on demand).
    pub header_lag_permille: u32,
    /// Total light faults (dropped proofs + lagged headers) allowed
    /// before the relay turns perfect.
    pub light_fault_budget: u32,
}

impl FaultPlan {
    /// The fault-free plan: wrappers behave exactly like the wrapped
    /// components.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_permille: 0,
            duplicate_permille: 0,
            corrupt_permille: 0,
            delay_permille: 0,
            reorder_permille: 0,
            max_delay_polls: 0,
            submit_fail_permille: 0,
            mining_delay_permille: 0,
            max_mining_delay_secs: 0,
            whisper_fault_budget: 0,
            chain_fault_budget: 0,
            gossip_drop_permille: 0,
            admission_delay_permille: 0,
            max_admission_delay_secs: 0,
            pool_fault_budget: 0,
            partition_permille: 0,
            max_partition_rounds: 0,
            link_delay_permille: 0,
            max_link_delay_rounds: 0,
            link_fault_budget: 0,
            proof_drop_permille: 0,
            header_lag_permille: 0,
            light_fault_budget: 0,
        }
    }

    /// Derives a complete fault schedule from one seed. Rates are
    /// aggressive (every site can fire) but budgets are finite and
    /// delays capped, so every driver loop still terminates within its
    /// phase window.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut s = seed;
        FaultPlan {
            seed,
            drop_permille: (splitmix64(&mut s) % 301) as u32,
            duplicate_permille: (splitmix64(&mut s) % 201) as u32,
            corrupt_permille: (splitmix64(&mut s) % 201) as u32,
            delay_permille: (splitmix64(&mut s) % 301) as u32,
            reorder_permille: (splitmix64(&mut s) % 401) as u32,
            max_delay_polls: (splitmix64(&mut s) % 4 + 1) as u32,
            submit_fail_permille: (splitmix64(&mut s) % 301) as u32,
            mining_delay_permille: (splitmix64(&mut s) % 301) as u32,
            max_mining_delay_secs: splitmix64(&mut s) % MAX_INJECTED_SECS + 1,
            whisper_fault_budget: (splitmix64(&mut s) % 25) as u32,
            chain_fault_budget: (splitmix64(&mut s) % 13) as u32,
            // Pool faults draw *after* every pre-existing field: the
            // sequential SplitMix64 stream means appending here leaves
            // all earlier seed-derived values — and therefore every
            // pinned chaos-suite outcome — bit-identical.
            gossip_drop_permille: (splitmix64(&mut s) % 201) as u32,
            admission_delay_permille: (splitmix64(&mut s) % 201) as u32,
            max_admission_delay_secs: splitmix64(&mut s) % MAX_INJECTED_SECS + 1,
            pool_fault_budget: (splitmix64(&mut s) % 9) as u32,
            // Link-level faults (multi-node) draw after *every* earlier
            // field — the same append-only contract as the pool block
            // above, so all pinned single-node chaos outcomes replay
            // bit-identically.
            partition_permille: (splitmix64(&mut s) % 81) as u32,
            max_partition_rounds: splitmix64(&mut s) % 12 + 4,
            link_delay_permille: (splitmix64(&mut s) % 151) as u32,
            max_link_delay_rounds: splitmix64(&mut s) % 3 + 1,
            link_fault_budget: (splitmix64(&mut s) % 7) as u32,
            // Light-session faults draw last — the same append-only
            // contract again, so every pinned single-node *and*
            // multi-node chaos outcome replays bit-identically.
            proof_drop_permille: (splitmix64(&mut s) % 201) as u32,
            header_lag_permille: (splitmix64(&mut s) % 151) as u32,
            light_fault_budget: (splitmix64(&mut s) % 9) as u32,
        }
    }

    /// An independent PRNG stream for one injection site.
    fn stream(&self, site: u64) -> XorShift64 {
        XorShift64::new(self.seed ^ site.wrapping_mul(0xa076_1d64_78bd_642f))
    }
}

/// A whisper message held back by a delay fault.
#[derive(Debug, Clone)]
struct DelayedMsg {
    from: Address,
    topic: String,
    payload: Vec<u8>,
    /// Polls of the topic remaining until release.
    remaining_polls: u32,
}

/// The per-session whisper fault state: PRNG stream, budget, held-back
/// messages and the injected-fault log — everything except the bus
/// itself. Operates on a *borrowed* [`Whisper`], so N sessions can each
/// run their own fault schedule against one shared bus (the session
/// scheduler) while [`FaultyWhisper`] keeps the owned single-session
/// wrapper behaviour bit-for-bit.
pub struct WhisperFaults {
    rng: XorShift64,
    plan: FaultPlan,
    budget: u32,
    delayed: Vec<DelayedMsg>,
    injected: Vec<String>,
}

impl WhisperFaults {
    /// Fault state for one bus (or one session's view of a shared bus).
    pub fn new(plan: &FaultPlan) -> WhisperFaults {
        WhisperFaults {
            rng: plan.stream(1),
            plan: plan.clone(),
            budget: plan.whisper_fault_budget,
            delayed: Vec::new(),
            injected: Vec::new(),
        }
    }

    /// Publishes a message through the fault schedule, possibly
    /// injecting one fault. One PRNG draw decides the fault band so
    /// schedules replay exactly.
    pub fn post(&mut self, bus: &mut Whisper, from: Address, topic: &str, payload: Vec<u8>) {
        if self.budget == 0 {
            bus.post(from, topic, payload);
            return;
        }
        let p = &self.plan;
        let (drop_to, dup_to, corrupt_to, delay_to) = (
            p.drop_permille,
            p.drop_permille + p.duplicate_permille,
            p.drop_permille + p.duplicate_permille + p.corrupt_permille,
            p.drop_permille + p.duplicate_permille + p.corrupt_permille + p.delay_permille,
        );
        let roll = self.rng.below(1000) as u32;
        if roll < drop_to {
            self.budget -= 1;
            self.injected.push(format!("drop {topic}"));
            // The message vanishes.
        } else if roll < dup_to {
            self.budget -= 1;
            self.injected.push(format!("duplicate {topic}"));
            bus.post(from, topic, payload.clone());
            bus.post(from, topic, payload);
        } else if roll < corrupt_to && !payload.is_empty() {
            self.budget -= 1;
            self.injected.push(format!("corrupt {topic}"));
            let mut mangled = payload;
            let i = self.rng.below(mangled.len() as u64) as usize;
            mangled[i] ^= 0x40;
            bus.post(from, topic, mangled);
        } else if roll < delay_to {
            self.budget -= 1;
            self.injected.push(format!("delay {topic}"));
            let polls = self.rng.below(self.plan.max_delay_polls.max(1) as u64) as u32 + 1;
            self.delayed.push(DelayedMsg {
                from,
                topic: topic.to_string(),
                payload,
                remaining_polls: polls,
            });
        } else {
            bus.post(from, topic, payload);
        }
    }

    /// Polls for unseen messages, releasing due delayed messages first
    /// and possibly shuffling the fresh batch.
    pub fn poll(&mut self, bus: &mut Whisper, reader: Address, topic: &str) -> Vec<Envelope> {
        // Age the held-back messages on this topic; release the due ones
        // into the bus so normal cursor bookkeeping applies.
        let mut due = Vec::new();
        self.delayed.retain_mut(|d| {
            if d.topic != topic {
                return true;
            }
            d.remaining_polls -= 1;
            if d.remaining_polls == 0 {
                due.push((d.from, d.topic.clone(), std::mem::take(&mut d.payload)));
                false
            } else {
                true
            }
        });
        for (from, t, payload) in due {
            bus.post(from, &t, payload);
        }

        let mut fresh = bus.poll(reader, topic);
        if fresh.len() > 1 && self.budget > 0 {
            let roll = self.rng.below(1000) as u32;
            if roll < self.plan.reorder_permille {
                self.budget -= 1;
                self.injected.push(format!("reorder {topic}"));
                for i in (1..fresh.len()).rev() {
                    let j = self.rng.below(i as u64 + 1) as usize;
                    fresh.swap(i, j);
                }
            }
        }
        fresh
    }

    /// Messages currently held back by delay faults.
    pub fn pending_delayed(&self) -> usize {
        self.delayed.len()
    }

    /// Human-readable log of every fault injected so far.
    pub fn injected_faults(&self) -> &[String] {
        &self.injected
    }

    /// Whisper fault budget still unspent.
    pub fn remaining_budget(&self) -> u32 {
        self.budget
    }
}

/// A [`Whisper`] bus that drops, duplicates, corrupts, delays and
/// reorders messages per the plan. Derefs to the inner bus for the
/// read-only API (`history`, `message_count`, …); `post`/`poll` are
/// shadowed with the faulty versions.
pub struct FaultyWhisper {
    inner: Whisper,
    faults: WhisperFaults,
}

impl FaultyWhisper {
    /// Wraps a fresh bus under the plan.
    pub fn new(plan: &FaultPlan) -> FaultyWhisper {
        FaultyWhisper {
            inner: Whisper::new(),
            faults: WhisperFaults::new(plan),
        }
    }

    /// A perfect bus (no faults) — what [`FaultyWhisper::new`] with
    /// [`FaultPlan::none`] gives you.
    pub fn perfect() -> FaultyWhisper {
        FaultyWhisper::new(&FaultPlan::none())
    }

    /// Publishes a message, possibly injecting one fault.
    pub fn post(&mut self, from: Address, topic: &str, payload: Vec<u8>) {
        self.faults.post(&mut self.inner, from, topic, payload);
    }

    /// Polls for unseen messages, releasing due delayed messages first
    /// and possibly shuffling the fresh batch.
    pub fn poll(&mut self, reader: Address, topic: &str) -> Vec<Envelope> {
        self.faults.poll(&mut self.inner, reader, topic)
    }

    /// Messages currently held back by delay faults.
    pub fn pending_delayed(&self) -> usize {
        self.faults.pending_delayed()
    }

    /// Human-readable log of every fault injected so far.
    pub fn injected_faults(&self) -> &[String] {
        self.faults.injected_faults()
    }

    /// Whisper fault budget still unspent.
    pub fn remaining_budget(&self) -> u32 {
        self.faults.remaining_budget()
    }
}

impl Deref for FaultyWhisper {
    type Target = Whisper;
    fn deref(&self) -> &Whisper {
        &self.inner
    }
}

impl DerefMut for FaultyWhisper {
    fn deref_mut(&mut self) -> &mut Whisper {
        &mut self.inner
    }
}

/// Errors surfaced by [`FlakyNet`]: either the injected transient kind
/// (retry and it may succeed) or a real typed rejection from the node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Injected infrastructure failure — the transaction was never
    /// admitted; retrying is sound.
    Transient(&'static str),
    /// The node rejected the transaction for a deterministic reason.
    Rejected(TxError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Transient(what) => write!(f, "transient network failure: {what}"),
            NetError::Rejected(e) => write!(f, "rejected: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

/// One pre-submission fault decision drawn from a [`ChainFaults`]
/// schedule. How a delay manifests is the caller's choice: the owned
/// [`FlakyNet`] jumps its private chain's clock, while the session
/// scheduler turns it into a session-local wait so one session's bad
/// luck cannot move a shared chain's time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitFault {
    /// No fault: submit normally.
    None,
    /// The submission is eaten by a transient failure.
    Transient(&'static str),
    /// Mining is delayed by this many seconds, then the submission
    /// proceeds without a new fault roll.
    MiningDelay(u64),
}

/// One pool-level fault decision drawn from a [`ChainFaults`] schedule,
/// consulted only when the chain runs in pooled mode. Both variants
/// manifest through machinery the drivers already survive: a dropped
/// gossip looks like a transient submission failure, a delayed
/// admission like an injected hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolFault {
    /// No fault: the transaction reaches the pool normally.
    None,
    /// The gossip carrying the transaction is dropped before the pool
    /// sees it.
    DroppedGossip,
    /// Admission is held back by this many seconds.
    DelayedAdmission(u64),
}

/// The per-session chain fault state: PRNG stream, budget and the
/// injected-fault log — separable from any particular [`Testnet`] so N
/// sessions can each run their own schedule against one shared chain.
pub struct ChainFaults {
    rng: XorShift64,
    /// Pool faults draw from their own stream so enabling pooled mode
    /// never perturbs the submit-fault schedule existing chaos pins
    /// depend on.
    pool_rng: XorShift64,
    plan: FaultPlan,
    budget: u32,
    pool_budget: u32,
    injected: Vec<String>,
}

impl ChainFaults {
    /// Fault state for one chain (or one session's view of a shared one).
    pub fn new(plan: &FaultPlan) -> ChainFaults {
        ChainFaults {
            rng: plan.stream(2),
            pool_rng: plan.stream(3),
            plan: plan.clone(),
            budget: plan.chain_fault_budget,
            pool_budget: plan.pool_fault_budget,
            injected: Vec::new(),
        }
    }

    /// Draws one pre-submission fault decision, consuming budget when a
    /// fault fires. One roll decides the band so schedules replay
    /// exactly.
    pub fn pre_submit(&mut self) -> SubmitFault {
        if self.budget == 0 {
            return SubmitFault::None;
        }
        let roll = self.rng.below(1000) as u32;
        if roll < self.plan.submit_fail_permille {
            self.budget -= 1;
            self.injected.push("submit failure".into());
            return SubmitFault::Transient("submission dropped by the node");
        }
        if roll < self.plan.submit_fail_permille + self.plan.mining_delay_permille {
            self.budget -= 1;
            let secs = self
                .rng
                .below(self.plan.max_mining_delay_secs.clamp(1, MAX_INJECTED_SECS))
                + 1;
            self.injected.push(format!("mining delayed {secs}s"));
            return SubmitFault::MiningDelay(secs);
        }
        SubmitFault::None
    }

    /// Draws one pool-level fault decision (pooled mode only),
    /// consuming pool budget when a fault fires. Separate stream and
    /// budget from [`ChainFaults::pre_submit`], so the classic chain
    /// schedule replays identically whether or not a pool is enabled.
    pub fn pre_pool(&mut self) -> PoolFault {
        if self.pool_budget == 0 {
            return PoolFault::None;
        }
        let roll = self.pool_rng.below(1000) as u32;
        if roll < self.plan.gossip_drop_permille {
            self.pool_budget -= 1;
            self.injected.push("gossip dropped".into());
            return PoolFault::DroppedGossip;
        }
        if roll < self.plan.gossip_drop_permille + self.plan.admission_delay_permille {
            self.pool_budget -= 1;
            let secs = self.pool_rng.below(
                self.plan
                    .max_admission_delay_secs
                    .clamp(1, MAX_INJECTED_SECS),
            ) + 1;
            self.injected.push(format!("admission delayed {secs}s"));
            return PoolFault::DelayedAdmission(secs);
        }
        PoolFault::None
    }

    /// Human-readable log of every fault injected so far.
    pub fn injected_faults(&self) -> &[String] {
        &self.injected
    }

    /// Chain fault budget still unspent.
    pub fn remaining_budget(&self) -> u32 {
        self.budget
    }

    /// Pool fault budget still unspent.
    pub fn remaining_pool_budget(&self) -> u32 {
        self.pool_budget
    }
}

/// A network partition drawn from a [`LinkFaults`] schedule: nodes in
/// `side_a` cannot exchange gossip with the rest until `heal_at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Node indices on one side of the cut (the complement forms the
    /// other side). Never empty, never all nodes.
    pub side_a: Vec<usize>,
    /// First round in which traffic flows across the cut again.
    pub heal_at: u64,
}

/// The per-network link fault state: PRNG stream, budget and the
/// injected-fault log for partitions and per-link delivery delays.
/// Drawn from its own stream (site 4), so arming a multi-node network
/// never perturbs the whisper, chain or pool schedules existing chaos
/// pins depend on.
pub struct LinkFaults {
    rng: XorShift64,
    plan: FaultPlan,
    budget: u32,
    injected: Vec<String>,
}

impl LinkFaults {
    /// Link fault state for one network.
    pub fn new(plan: &FaultPlan) -> LinkFaults {
        LinkFaults {
            rng: plan.stream(4),
            plan: plan.clone(),
            budget: plan.link_fault_budget,
            injected: Vec::new(),
        }
    }

    /// Rolls for a partition starting this round. On a hit, cuts the
    /// `nodes` indices into two non-empty sides and returns the cut
    /// with its heal round; duration is 4..=`max_partition_rounds`
    /// rounds so both sides mine competing blocks but the eventual
    /// reorg stays within retained history.
    pub fn maybe_partition(&mut self, round: u64, nodes: usize) -> Option<Partition> {
        if self.budget == 0 || nodes < 2 {
            return None;
        }
        let roll = self.rng.below(1000) as u32;
        if roll >= self.plan.partition_permille {
            return None;
        }
        self.budget -= 1;
        let span = self.plan.max_partition_rounds.max(4) - 3; // 4..=max
        let duration = self.rng.below(span) + 4;
        // A random cut point keeps both sides non-empty.
        let cut = self.rng.below(nodes as u64 - 1) as usize + 1;
        let side_a: Vec<usize> = (0..cut).collect();
        self.injected
            .push(format!("partition {side_a:?} for {duration} rounds"));
        Some(Partition {
            side_a,
            heal_at: round + duration,
        })
    }

    /// Rolls for an injected delivery delay on one gossiped frame.
    /// Returns the extra rounds the link holds the frame (0 = deliver
    /// normally).
    pub fn link_delay(&mut self) -> u64 {
        if self.budget == 0 {
            return 0;
        }
        let roll = self.rng.below(1000) as u32;
        if roll >= self.plan.link_delay_permille {
            return 0;
        }
        self.budget -= 1;
        let extra = self.rng.below(self.plan.max_link_delay_rounds.max(1)) + 1;
        self.injected.push(format!("link delayed {extra} rounds"));
        extra
    }

    /// Human-readable log of every link fault injected so far.
    pub fn injected_faults(&self) -> &[String] {
        &self.injected
    }

    /// Link fault budget still unspent.
    pub fn remaining_budget(&self) -> u32 {
        self.budget
    }
}

/// Per-session light-client fault state: dropped witnesses and withheld
/// header pushes. Drawn from its own stream (site 5), so arming a light
/// fleet never perturbs the whisper, chain, pool or link schedules
/// existing chaos pins depend on. Both fault kinds are *liveness*
/// faults by construction — a dropped proof is refetched and a lagged
/// header is pulled on demand — so a light session under this schedule
/// reaches the same outcome as its full-node twin, just with more wire
/// traffic.
pub struct LightFaults {
    rng: XorShift64,
    plan: FaultPlan,
    budget: u32,
    injected: Vec<String>,
}

impl LightFaults {
    /// Light fault state for one session.
    pub fn new(plan: &FaultPlan) -> LightFaults {
        LightFaults {
            rng: plan.stream(5),
            plan: plan.clone(),
            budget: plan.light_fault_budget,
            injected: Vec::new(),
        }
    }

    /// Rolls for a witness fetch being dropped in transit (the port
    /// must request it again).
    pub fn drop_proof(&mut self) -> bool {
        if self.budget == 0 {
            return false;
        }
        let roll = self.rng.below(1000) as u32;
        if roll >= self.plan.proof_drop_permille {
            return false;
        }
        self.budget -= 1;
        self.injected.push("witness dropped in transit".to_string());
        true
    }

    /// Rolls for this round's header push being withheld from the
    /// client (stale until it pulls).
    pub fn lag_headers(&mut self) -> bool {
        if self.budget == 0 {
            return false;
        }
        let roll = self.rng.below(1000) as u32;
        if roll >= self.plan.header_lag_permille {
            return false;
        }
        self.budget -= 1;
        self.injected.push("header push withheld".to_string());
        true
    }

    /// Human-readable log of every light fault injected so far.
    pub fn injected_faults(&self) -> &[String] {
        &self.injected
    }

    /// Light fault budget still unspent.
    pub fn remaining_budget(&self) -> u32 {
        self.budget
    }
}

/// A [`Testnet`] whose convenience senders fail transiently and whose
/// mining sometimes happens late, per the plan. Derefs to the inner
/// chain so the full read API (`balance_of`, `storage_at`, `now`, …)
/// and manual `advance_time` stay available; `execute`/`deploy` are
/// shadowed with the flaky versions.
pub struct FlakyNet {
    inner: Testnet,
    faults: ChainFaults,
}

impl FlakyNet {
    /// Wraps an existing chain under the plan.
    pub fn new(inner: Testnet, plan: &FaultPlan) -> FlakyNet {
        FlakyNet {
            inner,
            faults: ChainFaults::new(plan),
        }
    }

    /// A fault-free wrapper around a fresh chain.
    pub fn perfect() -> FlakyNet {
        FlakyNet::new(Testnet::new(), &FaultPlan::none())
    }

    /// One pre-submission fault decision: `Err` = the submission is
    /// eaten by a transient failure; `Ok` = proceed (possibly after an
    /// injected mining delay already applied to the clock).
    fn pre_submit(&mut self) -> Result<(), NetError> {
        match self.faults.pre_submit() {
            SubmitFault::None => Ok(()),
            SubmitFault::Transient(what) => Err(NetError::Transient(what)),
            SubmitFault::MiningDelay(secs) => {
                self.inner.advance_time(secs);
                Ok(())
            }
        }
    }

    /// Like [`Testnet::execute`] but subject to injected faults.
    pub fn execute(
        &mut self,
        wallet: &Wallet,
        to: Address,
        value: U256,
        data: Vec<u8>,
        gas_limit: u64,
    ) -> Result<Receipt, NetError> {
        self.pre_submit()?;
        self.inner
            .execute(wallet, to, value, data, gas_limit)
            .map_err(NetError::Rejected)
    }

    /// Like [`Testnet::deploy`] but subject to injected faults.
    pub fn deploy(
        &mut self,
        wallet: &Wallet,
        initcode: Vec<u8>,
        value: U256,
        gas_limit: u64,
    ) -> Result<Receipt, NetError> {
        self.pre_submit()?;
        self.inner
            .deploy(wallet, initcode, value, gas_limit)
            .map_err(NetError::Rejected)
    }

    /// Human-readable log of every fault injected so far.
    pub fn injected_faults(&self) -> &[String] {
        self.faults.injected_faults()
    }

    /// Chain fault budget still unspent.
    pub fn remaining_budget(&self) -> u32 {
        self.faults.remaining_budget()
    }
}

impl Deref for FlakyNet {
    type Target = Testnet;
    fn deref(&self) -> &Testnet {
        &self.inner
    }
}

impl DerefMut for FlakyNet {
    fn deref_mut(&mut self) -> &mut Testnet {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_primitives::ether;

    fn addr(b: u8) -> Address {
        Address([b; 20])
    }

    #[test]
    fn xorshift_is_deterministic_and_spreads() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        let mut c = XorShift64::new(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        assert_ne!(xs, zs, "adjacent seeds diverge");
        // below() stays in range.
        for n in [1u64, 2, 7, 1000] {
            assert!(a.below(n) < n);
        }
    }

    #[test]
    fn plans_replay_from_the_seed() {
        for seed in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        }
        assert_ne!(FaultPlan::from_seed(1), FaultPlan::from_seed(2));
        // Budgets and delays respect the liveness bounds.
        for seed in 0..256u64 {
            let p = FaultPlan::from_seed(seed);
            assert!(p.whisper_fault_budget <= 24);
            assert!(p.chain_fault_budget <= 12);
            assert!(p.max_mining_delay_secs <= MAX_INJECTED_SECS);
            assert!((1..=4).contains(&p.max_delay_polls));
        }
    }

    #[test]
    fn faultless_plan_is_transparent() {
        let mut w = FaultyWhisper::perfect();
        w.post(addr(1), "t", vec![1, 2, 3]);
        w.post(addr(2), "t", vec![4]);
        let got = w.poll(addr(3), "t");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].payload, vec![1, 2, 3]);
        assert_eq!(got[1].payload, vec![4]);
        assert!(w.injected_faults().is_empty());
        assert_eq!(w.message_count(), 2, "Deref read API works");
    }

    #[test]
    fn whisper_faults_are_deterministic_and_budgeted() {
        let plan = FaultPlan::from_seed(0x5eed);
        let run = |plan: &FaultPlan| {
            let mut w = FaultyWhisper::new(plan);
            let mut seen = Vec::new();
            for i in 0..200u8 {
                w.post(addr(1), "t", vec![i]);
                for e in w.poll(addr(2), "t") {
                    seen.push(e.payload);
                }
            }
            // Drain any remaining delayed messages.
            for _ in 0..8 {
                for e in w.poll(addr(2), "t") {
                    seen.push(e.payload);
                }
            }
            (seen, w.injected_faults().to_vec())
        };
        let (seen_a, faults_a) = run(&plan);
        let (seen_b, faults_b) = run(&plan);
        assert_eq!(seen_a, seen_b, "same seed, same delivery");
        assert_eq!(faults_a, faults_b, "same seed, same fault log");
        assert!(
            faults_a.len() as u32 <= plan.whisper_fault_budget,
            "budget caps the fault count"
        );
        // After the budget is spent the bus is perfect again: a fresh
        // message round-trips untouched.
        let mut w = FaultyWhisper::new(&plan);
        for i in 0..200u8 {
            w.post(addr(1), "t", vec![i]);
            w.poll(addr(2), "t");
        }
        assert_eq!(w.remaining_budget(), 0, "aggressive plan spends it all");
        w.post(addr(1), "t", vec![0xaa]);
        let got = w.poll(addr(2), "t");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, vec![0xaa]);
    }

    #[test]
    fn delayed_messages_are_eventually_released() {
        let plan = FaultPlan {
            seed: 7,
            delay_permille: 1000,
            max_delay_polls: 3,
            whisper_fault_budget: 1,
            ..FaultPlan::none()
        };
        let mut w = FaultyWhisper::new(&plan);
        w.post(addr(1), "t", vec![9]);
        assert_eq!(w.pending_delayed(), 1);
        let mut polls = 0;
        loop {
            polls += 1;
            if !w.poll(addr(2), "t").is_empty() {
                break;
            }
            assert!(polls <= 4, "must release within max_delay_polls");
        }
        assert_eq!(w.pending_delayed(), 0);
    }

    #[test]
    fn flaky_net_injects_then_recovers() {
        let plan = FaultPlan {
            seed: 11,
            submit_fail_permille: 1000,
            chain_fault_budget: 2,
            ..FaultPlan::none()
        };
        let mut net = FlakyNet::new(Testnet::new(), &plan);
        let w = net.funded_wallet("w", ether(10));
        // First two sends are eaten; the third lands (budget spent).
        let mut transients = 0;
        let mut landed = false;
        for _ in 0..4 {
            match net.execute(&w, addr(9), ether(1), Vec::new(), 21_000) {
                Err(NetError::Transient(_)) => transients += 1,
                Ok(r) => {
                    assert!(r.success);
                    landed = true;
                    break;
                }
                Err(NetError::Rejected(e)) => panic!("unexpected rejection: {e}"),
            }
        }
        assert_eq!(transients, 2, "budget bounds the transient failures");
        assert!(landed, "a perfect node remains after the budget");
        assert_eq!(net.balance_of(addr(9)), ether(1), "Deref read API works");
    }

    #[test]
    fn mining_delay_moves_the_clock_but_lands_the_tx() {
        let plan = FaultPlan {
            seed: 13,
            mining_delay_permille: 1000,
            max_mining_delay_secs: 50,
            chain_fault_budget: 1,
            ..FaultPlan::none()
        };
        let mut net = FlakyNet::new(Testnet::new(), &plan);
        let w = net.funded_wallet("w", ether(10));
        let before = net.now();
        let r = net
            .execute(&w, addr(9), ether(1), Vec::new(), 21_000)
            .unwrap();
        assert!(r.success);
        let jump = net.now() - before;
        assert!(
            jump > 4 && jump <= 50 + 4,
            "clock jumped by the injected delay: {jump}"
        );
        assert_eq!(net.injected_faults().len(), 1);
    }

    #[test]
    fn pool_faults_replay_and_never_perturb_the_chain_stream() {
        for seed in [1u64, 0x5eed, 0xdead_beef] {
            let plan = FaultPlan::from_seed(seed);
            assert!(plan.pool_fault_budget <= 8);
            assert!(plan.max_admission_delay_secs <= MAX_INJECTED_SECS);
            // Same seed ⇒ same pool fault schedule.
            let mut a = ChainFaults::new(&plan);
            let mut b = ChainFaults::new(&plan);
            let xs: Vec<PoolFault> = (0..64).map(|_| a.pre_pool()).collect();
            let ys: Vec<PoolFault> = (0..64).map(|_| b.pre_pool()).collect();
            assert_eq!(xs, ys);
            assert!(
                xs.iter().filter(|f| **f != PoolFault::None).count() as u32
                    <= plan.pool_fault_budget
            );
            // Drawing pool faults must not shift the classic submit
            // schedule: enabling pooled mode keeps chaos pins intact.
            let mut with_pool = ChainFaults::new(&plan);
            let mut without = ChainFaults::new(&plan);
            for _ in 0..16 {
                let _ = with_pool.pre_pool();
            }
            let ps: Vec<SubmitFault> = (0..32).map(|_| with_pool.pre_submit()).collect();
            let qs: Vec<SubmitFault> = (0..32).map(|_| without.pre_submit()).collect();
            assert_eq!(ps, qs, "pool stream is independent of the submit stream");
        }
    }

    #[test]
    fn link_draws_never_perturb_earlier_fields() {
        // Golden pin: the fifteen pre-existing plan fields for three
        // seeds, captured before the link-fault fields were appended.
        // If any of these move, every pinned chaos seed in the suite
        // replays differently — the append-only contract is broken.
        let golden: [(u64, [u64; 15]); 3] = [
            (
                0x5EED_C0FF_EE15_600D,
                [
                    227, 41, 44, 139, 231, 3, 181, 153, 103, 8, 2, 123, 155, 86, 4,
                ],
            ),
            (
                0x5eed,
                [6, 125, 53, 102, 98, 3, 215, 248, 36, 21, 6, 154, 82, 114, 3],
            ),
            (
                0x1,
                [107, 7, 63, 280, 87, 1, 196, 178, 1, 0, 7, 133, 56, 83, 4],
            ),
        ];
        for (seed, want) in golden {
            let p = FaultPlan::from_seed(seed);
            let got = [
                p.drop_permille as u64,
                p.duplicate_permille as u64,
                p.corrupt_permille as u64,
                p.delay_permille as u64,
                p.reorder_permille as u64,
                p.max_delay_polls as u64,
                p.submit_fail_permille as u64,
                p.mining_delay_permille as u64,
                p.max_mining_delay_secs,
                p.whisper_fault_budget as u64,
                p.chain_fault_budget as u64,
                p.gossip_drop_permille as u64,
                p.admission_delay_permille as u64,
                p.max_admission_delay_secs,
                p.pool_fault_budget as u64,
            ];
            assert_eq!(got, want, "seed {seed:#x}: pre-link fields moved");
        }
        // And the appended fields respect their documented ranges.
        for seed in 0..256u64 {
            let p = FaultPlan::from_seed(seed);
            assert!(p.partition_permille <= 80);
            assert!((4..=15).contains(&p.max_partition_rounds));
            assert!(p.link_delay_permille <= 150);
            assert!((1..=3).contains(&p.max_link_delay_rounds));
            assert!(p.link_fault_budget <= 6);
        }
    }

    #[test]
    fn light_draws_never_perturb_earlier_fields() {
        // Golden pin for the next append: the five link fields for the
        // same three seeds, captured before the light-fault fields were
        // appended. Breaking these breaks every pinned multi-node chaos
        // seed.
        let golden: [(u64, [u64; 5]); 3] = [
            (0x5EED_C0FF_EE15_600D, [12, 14, 27, 3, 5]),
            (0x5eed, [21, 13, 36, 1, 3]),
            (0x1, [77, 7, 95, 3, 1]),
        ];
        for (seed, want) in golden {
            let p = FaultPlan::from_seed(seed);
            let got = [
                p.partition_permille as u64,
                p.max_partition_rounds,
                p.link_delay_permille as u64,
                p.max_link_delay_rounds,
                p.link_fault_budget as u64,
            ];
            assert_eq!(got, want, "seed {seed:#x}: pre-light fields moved");
        }
        // The light fields respect their documented ranges, and the
        // schedule is budgeted: rates can be high, injections cannot be
        // unbounded.
        for seed in 0..256u64 {
            let p = FaultPlan::from_seed(seed);
            assert!(p.proof_drop_permille <= 200);
            assert!(p.header_lag_permille <= 150);
            assert!(p.light_fault_budget <= 8);
        }
        let plan = FaultPlan {
            proof_drop_permille: 1000,
            header_lag_permille: 1000,
            ..FaultPlan::from_seed(0x5eed)
        };
        let mut lf = LightFaults::new(&plan);
        let mut fired = 0;
        for i in 0..128 {
            if if i % 2 == 0 {
                lf.drop_proof()
            } else {
                lf.lag_headers()
            } {
                fired += 1;
            }
        }
        assert_eq!(fired, plan.light_fault_budget);
        assert_eq!(lf.remaining_budget(), 0);
        assert_eq!(lf.injected_faults().len(), fired as usize);
        // Replays of the same plan draw the identical schedule.
        let replay = |plan: &FaultPlan| {
            let mut lf = LightFaults::new(plan);
            (0..32).map(|_| lf.drop_proof()).collect::<Vec<_>>()
        };
        assert_eq!(replay(&plan), replay(&plan));
    }

    #[test]
    fn link_faults_replay_are_budgeted_and_cut_both_sides() {
        for seed in [1u64, 0x5eed, 0xdead_beef] {
            let plan = FaultPlan {
                // Force high rates so the budget actually gets exercised.
                partition_permille: 500,
                link_delay_permille: 500,
                ..FaultPlan::from_seed(seed)
            };
            let run = |plan: &FaultPlan| {
                let mut lf = LinkFaults::new(plan);
                let mut events = Vec::new();
                for round in 0..64u64 {
                    if let Some(p) = lf.maybe_partition(round, 4) {
                        events.push(format!("p {:?} {}", p.side_a, p.heal_at));
                        assert!(!p.side_a.is_empty() && p.side_a.len() < 4);
                        assert!(
                            (4..=plan.max_partition_rounds).contains(&(p.heal_at - round)),
                            "duration within bounds"
                        );
                    }
                    let d = lf.link_delay();
                    assert!(d <= plan.max_link_delay_rounds);
                    if d > 0 {
                        events.push(format!("d {d}"));
                    }
                }
                (events, lf.remaining_budget())
            };
            let (ea, ba) = run(&plan);
            let (eb, bb) = run(&plan);
            assert_eq!(ea, eb, "same seed, same link schedule");
            assert_eq!(ba, bb);
            assert!(ea.len() as u32 <= plan.link_fault_budget);
            // A spent budget means perfect links forever after.
            if ba == 0 {
                let mut lf = LinkFaults::new(&plan);
                for round in 0..64u64 {
                    lf.maybe_partition(round, 4);
                    lf.link_delay();
                }
                assert!(lf.maybe_partition(64, 4).is_none());
                assert_eq!(lf.link_delay(), 0);
            }
        }
    }

    #[test]
    fn typed_rejection_passes_through() {
        let mut net = FlakyNet::perfect();
        let poor = Wallet::from_seed("poor");
        let got = net.execute(&poor, addr(9), ether(1), Vec::new(), 21_000);
        assert_eq!(
            got,
            Err(NetError::Rejected(TxError::InsufficientFunds)),
            "real node errors stay typed, never panic"
        );
    }
}
