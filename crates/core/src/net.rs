//! A deterministic N-node network: gossip, partitions, fork choice and
//! reorg-safe sessions.
//!
//! [`Network`] owns N independent [`Testnet`] nodes that share *nothing*
//! but the wire: blocks and pooled transactions travel between them as
//! canonical RLP frames over the in-process Whisper bus, each node's
//! inbox namespaced under [`Topic::node_scoped`] so the network layer
//! alone decides what crosses between nodes — which is what makes
//! injected partitions enforceable. Every node re-derives every identity
//! locally (hashes recomputed, senders recovered) and replays every
//! imported block against its own state, so a byzantine frame is
//! rejected by construction, not by trust.
//!
//! Faults come from the seeded [`LinkFaults`] stream (site 4 of the
//! [`FaultPlan`]): whole-network partitions that cut the node set in two
//! for a bounded number of rounds, and per-frame delivery delays. Both
//! sides of a cut keep mining — competing miners are elected per round,
//! one per partition side — so healing produces genuine forks that the
//! longest-chain rule (height first, smaller hash as the tiebreak)
//! resolves into one canonical chain on every node, with
//! [`Testnet::import_block`] rolling back and replaying via per-block
//! undo layers.
//!
//! [`NetworkScheduler`] runs protocol sessions *on top of* that chaos:
//! each session is homed on one node, talks to it through
//! [`ChainPort::Node`], and survives reorgs because verified reads
//! re-prove against the current head and orphaned transactions are
//! detected ([`ChainPort::tx_known`]) and resubmitted — graceful
//! degradation, still bounded by the protocol's own deadlines.
//!
//! Determinism: node stepping, frame delivery (sorted by `(deliver_at,
//! seq)`), miner election (`round % n`), fault draws and clock sync are
//! all fixed-order, so two runs from the same specs and seed produce
//! bit-identical chains on every node.

use crate::faults::{ChainFaults, FaultPlan, LightFaults, LinkFaults, Partition, WhisperFaults};
use crate::session::scheduler::{build_session, session_wallets, ContractCache};
use crate::session::{
    BusPort, ChainPort, LightPort, LightStats, Session, SessionCtx, SessionReport, SessionSpec,
    StepOutcome,
};
use crate::whisper::{Topic, Whisper};
use sc_chain::{
    Block, Header, HeaderClient, ImportOutcome, PoolConfig, SignedTransaction, Testnet, TxError,
};
use sc_primitives::{ether, Address, H256};
use std::collections::HashMap;

/// Rounds before a network run declares itself stalled and panics with
/// a state dump. Every round makes progress (a frame delivered, a block
/// mined, a session stepped, or a clock jump), so even heavily
/// partitioned runs finish in a few thousand.
const MAX_ROUNDS: u64 = 2_000_000;

/// The reader address node `i` polls its bus inbox with, and the sender
/// attribution on its outbound frames. Purely diagnostic — frames are
/// self-verifying — but keeps per-node bus cursors separate.
fn node_addr(i: usize) -> Address {
    let mut b = [0xeeu8; 20];
    b[18] = (i >> 8) as u8;
    b[19] = i as u8;
    Address(b)
}

/// The reader address light client `id` drains its header inbox with —
/// distinct from every node address so per-reader bus cursors never
/// collide.
fn light_addr(id: usize) -> Address {
    let mut b = [0xccu8; 20];
    b[18] = (id >> 8) as u8;
    b[19] = id as u8;
    Address(b)
}

/// One queued gossip frame: who sent what to whom, and the earliest
/// round it may be posted into the receiver's inbox.
struct Frame {
    deliver_at: u64,
    seq: u64,
    from: usize,
    to: usize,
    /// `true` for a block frame, `false` for a transaction frame.
    block: bool,
    bytes: Vec<u8>,
}

/// Aggregate statistics of one network run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Rounds executed.
    pub rounds: u64,
    /// Blocks sealed across all miners (including blocks later orphaned).
    pub blocks_sealed: u64,
    /// Gossip frames queued onto links.
    pub frames_sent: u64,
    /// Gossip frames delivered into inboxes.
    pub frames_delivered: u64,
    /// Imports that extended a node's canonical chain in place.
    pub imports_extended: u64,
    /// Imports parked as side blocks (fork building or parent missing).
    pub imports_side: u64,
    /// Imports the receiver already had (flood dedup).
    pub imports_known: u64,
    /// Imports rejected as invalid (tampered or unreplayable frames).
    pub imports_rejected: u64,
    /// Reorgs executed (a node switched to a heavier fork).
    pub reorgs: u64,
    /// Deepest single reorg (blocks rolled back).
    pub max_reorg_depth: u64,
    /// Transactions orphaned by reorgs and resubmitted to the pool.
    pub orphans_resubmitted: u64,
    /// Partitions injected by the fault schedule (or forced by tests).
    pub partitions: u64,
}

/// N gossiping chain nodes under one seeded link-fault schedule.
///
/// The network owns the nodes, the bus and the frame queue;
/// [`Network::round`] advances everything one deterministic step. Use it
/// directly for chain-only experiments (benchmarks, reorg tests) or
/// through [`NetworkScheduler`] to run protocol sessions on top.
pub struct Network {
    nodes: Vec<Testnet>,
    bus: Whisper,
    faults: LinkFaults,
    frames: Vec<Frame>,
    partition: Option<Partition>,
    /// No new partition is drawn before this round — a heal must stick
    /// long enough for the reorg to resolve before the next cut.
    cooldown_until: u64,
    /// Stops drawing new partitions (set once the workload settles so
    /// the network can converge).
    quiescing: bool,
    round: u64,
    seq: u64,
    /// Per node: set when a seal packed nothing despite a non-empty
    /// pool (unminable remainder); cleared on any pool change. Stops a
    /// stuck pool from sealing empty blocks forever.
    mine_blocked: Vec<bool>,
    stats: NetStats,
}

impl Network {
    /// Builds `n` nodes with identical genesis (same [`sc_chain::ChainConfig`],
    /// same pool configuration, history enabled for reorgs) under the
    /// link-fault schedule of `plan`. `genesis_funding` is minted on
    /// *every* node before any block exists — the only sound place to
    /// fund wallets in a multi-node world, because an out-of-band mint
    /// on one node would break replay verification of its blocks
    /// everywhere else.
    pub fn new(
        n: usize,
        plan: &FaultPlan,
        pool: PoolConfig,
        genesis_funding: &[(Address, sc_primitives::U256)],
    ) -> Network {
        assert!(n >= 1, "a network needs at least one node");
        let nodes = (0..n)
            .map(|_| {
                let mut node = Testnet::new();
                for &(addr, amount) in genesis_funding {
                    node.faucet(addr, amount);
                }
                node.enable_pool(pool.clone());
                node.enable_history();
                node
            })
            .collect();
        Network {
            nodes,
            bus: Whisper::new(),
            faults: LinkFaults::new(plan),
            frames: Vec::new(),
            partition: None,
            cooldown_until: 0,
            quiescing: false,
            round: 0,
            seq: 0,
            mine_blocked: vec![false; n],
            stats: NetStats::default(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a zero-node network (never constructed; for clippy).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Read access to node `i`'s chain (invariant checks, assertions).
    pub fn node(&self, i: usize) -> &Testnet {
        &self.nodes[i]
    }

    /// Mutable access to node `i`'s chain (test setup: submitting
    /// transactions directly to one node's pool).
    pub fn node_mut(&mut self, i: usize) -> &mut Testnet {
        self.mine_blocked[i] = false;
        &mut self.nodes[i]
    }

    /// Current round number.
    pub fn round_number(&self) -> u64 {
        self.round
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Head hashes of every node, in node order.
    pub fn heads(&self) -> Vec<H256> {
        self.nodes.iter().map(|n| n.head().hash).collect()
    }

    /// True when every node agrees on one canonical head.
    pub fn converged(&self) -> bool {
        self.nodes
            .windows(2)
            .all(|w| w[0].head().hash == w[1].head().hash)
    }

    /// True while gossip frames are still in flight.
    pub fn frames_in_flight(&self) -> bool {
        !self.frames.is_empty()
    }

    /// The partition currently cutting the network, if any.
    pub fn active_partition(&self) -> Option<&Partition> {
        self.partition.as_ref()
    }

    /// Stops drawing new partitions from the fault schedule (frames in
    /// flight and the active partition still play out). Called by the
    /// scheduler once every session settled, so the network converges
    /// instead of forking forever.
    pub fn quiesce(&mut self) {
        self.quiescing = true;
    }

    /// Forces a partition for `rounds` rounds, regardless of the fault
    /// schedule: `side_a` on one side, everyone else on the other.
    /// Deterministic-by-construction hook for reorg regression tests and
    /// convergence benchmarks; panics on a degenerate cut.
    pub fn force_partition(&mut self, side_a: Vec<usize>, rounds: u64) {
        assert!(
            !side_a.is_empty() && side_a.len() < self.nodes.len(),
            "a partition needs two non-empty sides"
        );
        self.stats.partitions += 1;
        self.partition = Some(Partition {
            side_a,
            heal_at: self.round + rounds,
        });
    }

    /// True while `a` and `b` are on opposite sides of the active cut.
    fn cut(&self, a: usize, b: usize) -> bool {
        match &self.partition {
            Some(p) if self.round < p.heal_at => p.side_a.contains(&a) != p.side_a.contains(&b),
            _ => false,
        }
    }

    /// Queues `bytes` from `from` to every other node, applying the
    /// link-fault schedule: a per-frame injected delay, and a hold until
    /// the heal round if the link is currently cut (gossip is queued at
    /// the cut, not lost — healing replays both sides' history).
    fn broadcast(&mut self, from: usize, block: bool, bytes: Vec<u8>) {
        for to in 0..self.nodes.len() {
            if to == from {
                continue;
            }
            let mut deliver_at = self.round + 1 + self.faults.link_delay();
            if self.cut(from, to) {
                let heal = self.partition.as_ref().map_or(0, |p| p.heal_at);
                deliver_at = deliver_at.max(heal);
            }
            self.seq += 1;
            self.stats.frames_sent += 1;
            self.frames.push(Frame {
                deliver_at,
                seq: self.seq,
                from,
                to,
                block,
                bytes: bytes.clone(),
            });
        }
    }

    /// Manages the partition lifecycle for this round: heals an expired
    /// cut (starting the cooldown) and rolls for a new one when allowed.
    fn partition_step(&mut self) {
        if let Some(p) = &self.partition {
            if self.round >= p.heal_at {
                self.cooldown_until = self.round + self.faults_cooldown();
                self.partition = None;
            }
        }
        if self.partition.is_none() && !self.quiescing && self.round >= self.cooldown_until {
            if let Some(p) = self.faults.maybe_partition(self.round, self.nodes.len()) {
                self.stats.partitions += 1;
                self.partition = Some(p);
            }
        }
    }

    /// Rounds a heal must stick before the next cut may start — long
    /// enough for the queued cross-cut frames to deliver and the reorg
    /// to resolve.
    fn faults_cooldown(&self) -> u64 {
        8
    }

    /// Posts every frame whose delivery round arrived into its
    /// receiver's bus inbox, in `(deliver_at, seq)` order. A frame whose
    /// link got cut again since it was queued is re-held until the new
    /// heal round.
    fn deliver_due(&mut self) {
        let round = self.round;
        let mut due: Vec<Frame> = Vec::new();
        let mut rest: Vec<Frame> = Vec::new();
        for f in self.frames.drain(..) {
            if f.deliver_at <= round {
                due.push(f);
            } else {
                rest.push(f);
            }
        }
        self.frames = rest;
        due.sort_by_key(|f| (f.deliver_at, f.seq));
        for mut f in due {
            if self.cut(f.from, f.to) {
                f.deliver_at = self.partition.as_ref().map_or(round + 1, |p| p.heal_at);
                self.frames.push(f);
                continue;
            }
            let topic = if f.block {
                Topic::node_scoped(f.to, "blocks")
            } else {
                Topic::node_scoped(f.to, "txs")
            };
            self.stats.frames_delivered += 1;
            self.bus.post(node_addr(f.from), &topic, f.bytes);
        }
    }

    /// Drains every node's bus inbox: decodes and imports gossiped
    /// blocks (re-flooding head-improving ones so late joiners catch up
    /// even off the direct path), resubmits transactions orphaned by a
    /// reorg, and admits gossiped transactions into the local pool.
    /// Invalid frames are counted and dropped — a byzantine peer can
    /// waste bandwidth, never corrupt state.
    fn process_inboxes(&mut self) {
        let n = self.nodes.len();
        for i in 0..n {
            let me = node_addr(i);
            let blocks = self.bus.poll(me, &Topic::node_scoped(i, "blocks"));
            for env in blocks {
                let block = match Block::decode(&env.payload) {
                    Ok(b) => b,
                    Err(_) => {
                        self.stats.imports_rejected += 1;
                        continue;
                    }
                };
                self.import_on(i, block);
            }
            let txs = self.bus.poll(me, &Topic::node_scoped(i, "txs"));
            for env in txs {
                let tx = match SignedTransaction::decode(&env.payload) {
                    Ok(tx) => tx,
                    Err(_) => continue,
                };
                // Admission errors are expected here: the tx may already
                // be mined locally, stale after a reorg, or outbid. The
                // origin node still holds it; rejection is not loss.
                if self.nodes[i].submit(tx).is_ok() {
                    self.mine_blocked[i] = false;
                }
            }
        }
    }

    /// Imports one block on node `i`, updating stats, resubmitting
    /// reorg orphans and re-flooding the block when it improved the
    /// node's head.
    fn import_on(&mut self, i: usize, block: Block) {
        let bytes = block.encode();
        match self.nodes[i].import_block(block) {
            Ok(ImportOutcome::AlreadyKnown) => self.stats.imports_known += 1,
            Ok(ImportOutcome::Side) => self.stats.imports_side += 1,
            Ok(ImportOutcome::Extended) => {
                self.stats.imports_extended += 1;
                self.mine_blocked[i] = false;
                self.broadcast(i, true, bytes);
            }
            Ok(ImportOutcome::Reorged {
                reverted,
                orphaned_txs,
                ..
            }) => {
                self.stats.reorgs += 1;
                self.stats.max_reorg_depth = self.stats.max_reorg_depth.max(reverted);
                self.mine_blocked[i] = false;
                if !orphaned_txs.is_empty() {
                    self.stats.orphans_resubmitted += orphaned_txs.len() as u64;
                    // Back into the fee market; errors (already mined on
                    // the new branch, stale nonce) mean nothing to redo.
                    for result in self.nodes[i].submit_batch(orphaned_txs) {
                        let _ = result;
                    }
                }
                self.broadcast(i, true, bytes);
            }
            Err(_) => self.stats.imports_rejected += 1,
        }
    }

    /// Elects this round's miners: the primary rotates round-robin, and
    /// while a partition is active the lowest-indexed node on the *other*
    /// side mines too, so both halves build competing history and the
    /// heal exercises a real reorg.
    fn elect_miners(&self) -> Vec<usize> {
        let n = self.nodes.len();
        let primary = (self.round % n as u64) as usize;
        let mut miners = vec![primary];
        if let Some(p) = &self.partition {
            if self.round < p.heal_at {
                let primary_in_a = p.side_a.contains(&primary);
                if let Some(secondary) = (0..n).find(|i| p.side_a.contains(i) != primary_in_a) {
                    miners.push(secondary);
                }
            }
        }
        miners
    }

    /// Mines on every elected node whose pool has work, broadcasting
    /// each sealed block. While a partition is active the elected miners
    /// seal even with an empty pool — competing (possibly empty) blocks
    /// on both sides are exactly what makes healing a real fork-choice
    /// event instead of a no-op. A seal that packs nothing despite a
    /// non-empty pool marks the pool unminable (stale remainder) until
    /// it changes, so the chain never grows empty blocks forever.
    fn mine(&mut self) {
        let forking = matches!(&self.partition, Some(p) if self.round < p.heal_at);
        for i in self.elect_miners() {
            let has_work = self.nodes[i].pending_count() > 0 && !self.mine_blocked[i];
            if !has_work && !forking {
                continue;
            }
            if forking && !has_work {
                // Two sides sealing empty blocks from the same parent at
                // the same timestamp would seal *identical* blocks — no
                // fork at all. A per-miner clock skew keeps competing
                // seals distinct (the end-of-round sync re-aligns).
                self.nodes[i].advance_time(1 + i as u64);
            }
            let block = self.nodes[i].mine_block();
            self.stats.blocks_sealed += 1;
            if block.transactions.is_empty() {
                self.nodes[i].prune_pool();
                if self.nodes[i].pending_count() > 0 {
                    self.mine_blocked[i] = true;
                }
            }
            self.broadcast(i, true, block.encode());
        }
    }

    /// Synchronizes every node's clock to the network maximum. Chain
    /// clocks move when blocks seal and when imports adopt a branch's
    /// timestamps; pulling every node up to the max keeps session
    /// deadlines monotonic across the whole network.
    fn sync_clocks(&mut self) {
        let max = self.nodes.iter().map(|n| n.now()).max().unwrap_or(0);
        for node in &mut self.nodes {
            let now = node.now();
            if max > now {
                node.advance_time(max - now);
            }
        }
    }

    /// One full network round without sessions: partition lifecycle,
    /// frame delivery, inbox processing, mining, clock sync. The
    /// building block [`NetworkScheduler::tick`] wraps with session
    /// stepping; also the whole loop for chain-only benchmarks.
    pub fn round(&mut self) {
        self.round += 1;
        self.stats.rounds += 1;
        self.partition_step();
        self.deliver_due();
        self.process_inboxes();
        self.mine();
        self.sync_clocks();
    }

    /// Runs rounds until every node converged on one head and no frame
    /// is in flight (at most `max_rounds`); returns the rounds spent.
    /// Used by tests and the convergence benchmark after a forced
    /// partition heals.
    pub fn run_until_converged(&mut self, max_rounds: u64) -> u64 {
        let start = self.round;
        while !(self.converged() && self.frames.is_empty()) {
            self.round();
            assert!(
                self.round - start <= max_rounds,
                "network failed to converge within {max_rounds} rounds; heads: {:?}",
                self.heads()
            );
        }
        self.round - start
    }
}

/// Where one networked session slot stands between rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetSlotState {
    Runnable,
    Waiting(u64),
    Pending,
    Done,
    Failed,
}

/// One session homed on a node, plus its private fault state. In light
/// mode the slot additionally carries its own [`HeaderClient`] — the
/// session's entire view of the chain — plus the light-fault schedule
/// and witness-traffic counters.
struct NetSlot {
    session: Box<dyn Session>,
    kind: &'static str,
    home: usize,
    chain_faults: ChainFaults,
    whisper_faults: WhisperFaults,
    /// `Some` in light mode: the session steps through a [`LightPort`]
    /// wrapping this client, with the home node demoted to an untrusted
    /// witness relay.
    client: Option<HeaderClient>,
    light_faults: LightFaults,
    light_stats: LightStats,
    state: NetSlotState,
    error: Option<String>,
}

/// Drives N protocol sessions over an N-node gossiping [`Network`].
///
/// Each session is homed on node `id % nodes` and reaches the chain
/// through [`ChainPort::Node`] — mechanically the shared-scheduler path
/// (self-sign, queue, flush into `submit_batch`), but against a head
/// that can move backwards under reorgs. Wallets are pre-funded at
/// genesis on every node (1000 ether per participant) so no session
/// ever mints out-of-band; whisper traffic is namespaced per node *and*
/// per session via [`Topic::node_session`].
pub struct NetworkScheduler {
    network: Network,
    slots: Vec<NetSlot>,
    rejections: HashMap<H256, TxError>,
    pool_evicted: u64,
}

impl NetworkScheduler {
    /// Builds `nodes` chain nodes and homes one session per spec on
    /// them round-robin. `net_fault_seed` seeds the link-fault schedule
    /// (`None` = a quiet network); per-session chain/whisper faults come
    /// from each spec's own `fault_seed`, exactly as in the single-chain
    /// scheduler.
    pub fn new(
        specs: Vec<SessionSpec>,
        nodes: usize,
        pool: PoolConfig,
        net_fault_seed: Option<u64>,
    ) -> NetworkScheduler {
        NetworkScheduler::build(specs, nodes, pool, net_fault_seed, false)
    }

    /// Like [`NetworkScheduler::new`], but every session runs
    /// *stateless*: it owns a [`HeaderClient`] seeded with its home
    /// node's genesis header, follows the chain through per-session
    /// header pushes over whisper (plus the pull path when a push
    /// lags), and reaches the chain through a [`LightPort`] — every
    /// read witness-verified, inclusion confirmed against
    /// `receipts_root`, the home node demoted to an untrusted relay.
    /// Same specs + same seeds produce reports bit-identical to
    /// [`NetworkScheduler::new`]'s.
    pub fn new_light(
        specs: Vec<SessionSpec>,
        nodes: usize,
        pool: PoolConfig,
        net_fault_seed: Option<u64>,
    ) -> NetworkScheduler {
        NetworkScheduler::build(specs, nodes, pool, net_fault_seed, true)
    }

    fn build(
        specs: Vec<SessionSpec>,
        nodes: usize,
        pool: PoolConfig,
        net_fault_seed: Option<u64>,
        light: bool,
    ) -> NetworkScheduler {
        let link_plan = match net_fault_seed {
            Some(seed) => FaultPlan::from_seed(seed),
            None => FaultPlan::none(),
        };
        let funding: Vec<(Address, sc_primitives::U256)> = (0..specs.len())
            .flat_map(|id| session_wallets(id).map(|w| (w.address, ether(1000))))
            .collect();
        let network = Network::new(nodes, &link_plan, pool, &funding);
        let mut contracts = ContractCache::default();
        let slots = specs
            .into_iter()
            .enumerate()
            .map(|(id, spec)| {
                let home = id % nodes;
                let (session, kind, seed) = build_session(
                    id,
                    spec,
                    Topic::node_session(home, id as u64, "signed-copy"),
                    // Pre-funded at genesis; a faucet mint here would
                    // desync block replay on every other node.
                    None,
                    &mut contracts,
                );
                let plan = match seed {
                    Some(seed) => FaultPlan::from_seed(seed),
                    None => FaultPlan::none(),
                };
                // A light client trusts exactly one thing: its home
                // node's genesis header. Everything after is verified.
                let client = light.then(|| {
                    HeaderClient::new(network.nodes[home].block(0).expect("genesis").header())
                });
                NetSlot {
                    session,
                    kind,
                    home,
                    chain_faults: ChainFaults::new(&plan),
                    whisper_faults: WhisperFaults::new(&plan),
                    client,
                    light_faults: LightFaults::new(&plan),
                    light_stats: LightStats::default(),
                    state: NetSlotState::Runnable,
                    error: None,
                }
            })
            .collect();
        NetworkScheduler {
            network,
            slots,
            rejections: HashMap::new(),
            pool_evicted: 0,
        }
    }

    /// The underlying network (invariant checks, stats, head
    /// assertions after a run).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable network access, for tests that force partitions or
    /// inject frames around a scheduler run.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Fleet-wide witness-traffic totals (all zero outside light mode).
    pub fn light_stats(&self) -> LightStats {
        let mut total = LightStats::default();
        for slot in &self.slots {
            total.absorb(&slot.light_stats);
        }
        total
    }

    /// Per-slot witness-traffic counters, in slot order.
    pub fn light_stats_by_session(&self) -> Vec<LightStats> {
        self.slots.iter().map(|s| s.light_stats).collect()
    }

    /// Pushes each light client the canonical headers it is missing,
    /// as encoded [`Header`] frames over that session's scoped whisper
    /// topic, then lets the client drain its inbox and import whatever
    /// verifies (hashes are recomputed on decode, so a tampered frame
    /// cannot take effect). A header-lag fault withholds this round's
    /// push — the client stays stale until the [`LightPort`] pull path
    /// catches it up on its next read, which is the fault's whole
    /// observable effect.
    fn sync_light_clients(&mut self) {
        let Network { nodes, bus, .. } = &mut self.network;
        for (id, slot) in self.slots.iter_mut().enumerate() {
            let Some(client) = slot.client.as_mut() else {
                continue;
            };
            let node = &nodes[slot.home];
            if client.head().hash == node.head().hash {
                continue;
            }
            if slot.light_faults.lag_headers() {
                continue;
            }
            let topic = Topic::node_session(slot.home, id as u64, "headers");
            // The home node walks its canonical chain back to the last
            // header the client tracks and pushes the gap oldest-first
            // (crossing the fork point after a reorg, so the client's
            // fork choice flips too).
            let mut missing = Vec::new();
            let mut cur = node.head().header();
            loop {
                if client.header_by_hash(cur.hash).is_some() {
                    break;
                }
                let parent_hash = cur.parent_hash;
                let number = cur.number;
                missing.push(cur);
                if number == 0 {
                    break;
                }
                match node.block_by_hash(parent_hash) {
                    Some(b) => cur = b.header(),
                    None => break,
                }
            }
            for h in missing.iter().rev() {
                bus.post(node_addr(slot.home), &topic, h.encode());
            }
            for env in bus.poll(light_addr(id), &topic) {
                if let Ok(header) = Header::decode(&env.payload) {
                    let _ = client.import_header(header);
                }
            }
        }
    }

    /// Transactions displaced from any node's pool and routed back for
    /// re-pricing.
    pub fn pool_evicted(&self) -> u64 {
        self.pool_evicted
    }

    /// True once every slot reached a terminal state.
    fn all_settled(&self) -> bool {
        self.slots
            .iter()
            .all(|s| matches!(s.state, NetSlotState::Done | NetSlotState::Failed))
    }

    /// The soonest wake target among waiting slots.
    fn earliest_wait(&self) -> Option<u64> {
        self.slots
            .iter()
            .filter_map(|s| match s.state {
                NetSlotState::Waiting(t) => Some(t),
                _ => None,
            })
            .min()
    }

    /// One scheduler round: advance the network, wake and step sessions,
    /// flush per-node outboxes, gossip admissions, then let the elected
    /// miners seal. When the whole network is idle (no frames, no pooled
    /// work, every session asleep), the clocks jump to the earliest wake
    /// target so hour-long contract windows cost nothing.
    fn tick(&mut self) {
        self.network.round += 1;
        self.network.stats.rounds += 1;
        self.network.partition_step();
        self.network.deliver_due();
        self.network.process_inboxes();
        // Light clients catch up on headers *after* the round's imports
        // land and *before* sessions step, so a light session observes
        // its relay's head at exactly the point a full-node session
        // would read its own — which is what keeps the two modes'
        // reports bit-identical under the same seed.
        self.sync_light_clients();

        let now_by_node: Vec<u64> = self.network.nodes.iter().map(|n| n.now()).collect();
        for slot in &mut self.slots {
            if matches!(slot.state, NetSlotState::Waiting(t) if now_by_node[slot.home] >= t) {
                slot.state = NetSlotState::Runnable;
            }
        }

        // Step every runnable slot in fixed index order, each against
        // its home node, queueing into that node's round outbox.
        let n = self.network.nodes.len();
        let mut outboxes: Vec<Vec<(Address, SignedTransaction)>> = vec![Vec::new(); n];
        {
            let Network { nodes, bus, .. } = &mut self.network;
            let rejections = &mut self.rejections;
            for slot in self.slots.iter_mut() {
                while slot.state == NetSlotState::Runnable {
                    // Full-node slots step through `ChainPort::Node`
                    // against their home chain; light slots step through
                    // a `LightPort` wrapping their own header client,
                    // with that same home chain demoted to an untrusted
                    // witness relay. Both are `dyn ChainAccess`, so the
                    // session cannot tell which it got.
                    let step = match slot.client.as_mut() {
                        Some(client) => {
                            let mut port = LightPort {
                                client,
                                relay: &mut nodes[slot.home],
                                faults: &mut slot.chain_faults,
                                light_faults: &mut slot.light_faults,
                                outbox: &mut outboxes[slot.home],
                                rejections,
                                stats: &mut slot.light_stats,
                            };
                            let mut ctx = SessionCtx {
                                chain: &mut port,
                                bus: BusPort::Shared {
                                    bus,
                                    faults: &mut slot.whisper_faults,
                                },
                            };
                            slot.session.step(&mut ctx)
                        }
                        None => {
                            let mut port = ChainPort::Node {
                                net: &mut nodes[slot.home],
                                faults: &mut slot.chain_faults,
                                outbox: &mut outboxes[slot.home],
                                rejections,
                            };
                            let mut ctx = SessionCtx {
                                chain: &mut port,
                                bus: BusPort::Shared {
                                    bus,
                                    faults: &mut slot.whisper_faults,
                                },
                            };
                            slot.session.step(&mut ctx)
                        }
                    };
                    match step {
                        Ok(StepOutcome::Progress) => {}
                        Ok(StepOutcome::Pending) => slot.state = NetSlotState::Pending,
                        Ok(StepOutcome::WaitUntil(t)) => slot.state = NetSlotState::Waiting(t),
                        Ok(StepOutcome::Done) => slot.state = NetSlotState::Done,
                        Err(e) => {
                            slot.state = NetSlotState::Failed;
                            slot.error = Some(e.to_string());
                        }
                    }
                }
            }
        }

        // Flush each node's outbox into its own pool, route admission
        // errors back by hash, and gossip what was admitted.
        for (i, outbox) in outboxes.into_iter().enumerate() {
            if outbox.is_empty() {
                continue;
            }
            let txs: Vec<SignedTransaction> = outbox.into_iter().map(|(_, tx)| tx).collect();
            let hashes: Vec<H256> = txs.iter().map(|tx| tx.hash()).collect();
            let encoded: Vec<Vec<u8>> = txs.iter().map(|tx| tx.encode()).collect();
            let results = self.network.nodes[i].submit_batch(txs);
            for ((hash, bytes), result) in hashes.into_iter().zip(encoded).zip(results) {
                match result {
                    Ok(_) => {
                        self.network.mine_blocked[i] = false;
                        self.network.broadcast(i, false, bytes);
                    }
                    Err(e) => {
                        self.rejections.insert(hash, e);
                    }
                }
            }
            for hash in self.network.nodes[i].drain_evicted() {
                self.rejections.insert(hash, TxError::Evicted);
                self.pool_evicted += 1;
            }
        }

        self.network.mine();
        self.network.sync_clocks();

        let pooled: usize = self.network.nodes.iter().map(|n| n.pending_count()).sum();
        if pooled == 0 && self.network.frames.is_empty() {
            // Pending slots can only be waiting on a routed rejection or
            // an orphaned transaction — release them to observe it.
            let mut released = false;
            for slot in &mut self.slots {
                if slot.state == NetSlotState::Pending {
                    slot.state = NetSlotState::Runnable;
                    released = true;
                }
            }
            if !released {
                // Everyone is asleep: jump every clock to the earliest
                // wake target.
                if let Some(target) = self.earliest_wait() {
                    for node in &mut self.network.nodes {
                        let now = node.now();
                        if target > now {
                            node.advance_time(target - now);
                        }
                    }
                }
            }
        }
    }

    /// Drives every session to completion *and* the network to one
    /// canonical head, then returns the session reports in slot order.
    /// Once the last session settles the fault schedule stops cutting
    /// new partitions, so convergence is guaranteed; panics (with a
    /// state dump) only if the round budget runs out — a liveness bug,
    /// never a legitimate schedule.
    pub fn run(&mut self) -> Vec<SessionReport> {
        loop {
            if self.all_settled() {
                self.network.quiesce();
                if self.network.converged() && self.network.frames.is_empty() {
                    break;
                }
            }
            self.tick();
            assert!(
                self.network.round < MAX_ROUNDS,
                "network scheduler stalled after {} rounds; slot states: {:?}; heads: {:?}",
                self.network.round,
                self.slots.iter().map(|s| s.state).collect::<Vec<_>>(),
                self.network.heads()
            );
        }
        self.slots
            .iter()
            .enumerate()
            .map(|(id, slot)| SessionReport {
                id,
                kind: slot.kind,
                outcome: slot.session.outcome_label(),
                error: slot.error.clone(),
                total_gas: slot.session.total_gas(),
                stage_gas: slot.session.gas_by_stage(),
                txs: slot.session.tx_trace(),
                messages_posted: slot.session.messages_posted(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::{check_conservation, check_state_commitments};
    use crate::session::BettingSpec;

    fn betting_specs(n: usize) -> Vec<SessionSpec> {
        (0..n)
            .map(|_| SessionSpec::Betting(BettingSpec::default()))
            .collect()
    }

    #[test]
    fn sessions_complete_and_nodes_converge_on_a_quiet_network() {
        let mut sched = NetworkScheduler::new(betting_specs(4), 3, PoolConfig::default(), None);
        let reports = sched.run();
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(
                r.outcome.is_some(),
                "session {} failed: {:?}",
                r.id,
                r.error
            );
        }
        let net = sched.network();
        assert!(net.converged(), "heads diverged: {:?}", net.heads());
        assert!(net.node(0).head().number > 0, "no blocks were mined");
        for i in 0..net.len() {
            check_conservation(net.node(i)).unwrap();
            check_state_commitments(net.node(i)).unwrap();
        }
        // Gossip actually moved blocks: every node knows every receipt.
        assert!(net.stats().imports_extended + net.stats().reorgs > 0);
    }

    #[test]
    fn forced_partition_forks_and_heals_into_one_chain() {
        let mut sched = NetworkScheduler::new(betting_specs(4), 4, PoolConfig::default(), None);
        sched.network.force_partition(vec![0, 1], 6);
        let reports = sched.run();
        let net = sched.network();
        assert!(net.converged(), "heads diverged: {:?}", net.heads());
        for r in &reports {
            assert!(
                r.outcome.is_some(),
                "session {} failed: {:?}",
                r.id,
                r.error
            );
        }
        for i in 0..net.len() {
            check_conservation(net.node(i)).unwrap();
            check_state_commitments(net.node(i)).unwrap();
        }
        // Both sides mined during the cut, so healing must have forced
        // at least one node through a reorg.
        assert!(net.stats().reorgs > 0, "partition healed without a reorg");
    }

    #[test]
    fn runs_are_bit_identical_per_seed() {
        let run = || {
            let mut sched = NetworkScheduler::new(
                betting_specs(3),
                3,
                PoolConfig::default(),
                Some(0x5EED_0001),
            );
            let reports = sched.run();
            let outcomes: Vec<_> = reports.iter().map(|r| r.outcome).collect();
            (sched.network().heads(), sched.network().stats(), outcomes)
        };
        let (heads_a, stats_a, outcomes_a) = run();
        let (heads_b, stats_b, outcomes_b) = run();
        assert_eq!(heads_a, heads_b);
        assert_eq!(stats_a, stats_b);
        assert_eq!(outcomes_a, outcomes_b);
    }

    #[test]
    fn byzantine_frames_waste_bandwidth_but_never_corrupt_state() {
        let mut sched = NetworkScheduler::new(betting_specs(2), 2, PoolConfig::default(), None);
        // Garbage and a structurally-valid-but-unsigned frame into both
        // inboxes before the run.
        for i in 0..2 {
            sched.network.bus.post(
                node_addr(9),
                &Topic::node_scoped(i, "blocks"),
                vec![0xff; 40],
            );
            sched
                .network
                .bus
                .post(node_addr(9), &Topic::node_scoped(i, "txs"), vec![0xc0]);
        }
        let reports = sched.run();
        for r in &reports {
            assert!(
                r.outcome.is_some(),
                "session {} failed: {:?}",
                r.id,
                r.error
            );
        }
        let net = sched.network();
        assert!(net.converged());
        assert!(net.stats().imports_rejected >= 2);
        for i in 0..net.len() {
            check_conservation(net.node(i)).unwrap();
            check_state_commitments(net.node(i)).unwrap();
        }
    }
}
