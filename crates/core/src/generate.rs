//! Automatic generation of the on/off-chain contract pair
//! (the split/generate stage as a program transformation).
//!
//! Given a *whole* contract (like the paper's Fig. 1 example or our
//! monolithic betting contract), this module:
//!
//! 1. classifies its functions with [`crate::splitter`];
//! 2. decomposes the settlement function (the `MixedDecompose` pattern
//!    `T result = heavyFn(); rest…`) into an off-chain computation and an
//!    on-chain enforcement body;
//! 3. partitions state variables and splits the constructor by which
//!    side's variables each statement initializes;
//! 4. pads both sides with the paper's three extra functions
//!    (`deployVerifiedInstance`, `enforceDisputeResolution`,
//!    `returnDisputeResolution`), generated from templates;
//! 5. renders both contracts back to MiniSol source and compiles them.
//!
//! The result is a deployable pair: the generated on-chain contract and
//! the signable off-chain initcode, produced *mechanically* from the
//! monolithic source.

use crate::splitter::{split, FunctionClass};
use sc_lang::ast::*;
use sc_lang::printer::print_program;
use sc_lang::{compile, CompiledContract};
use std::collections::BTreeSet;
use std::fmt;

/// Errors from pair generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerateError(pub String);

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pair generation failed: {}", self.0)
    }
}

impl std::error::Error for GenerateError {}

fn err<T>(msg: impl Into<String>) -> Result<T, GenerateError> {
    Err(GenerateError(msg.into()))
}

/// The generated pair: MiniSol sources plus compiled artifacts.
pub struct GeneratedPair {
    /// Source of the generated on-chain contract.
    pub onchain_source: String,
    /// Source of the generated off-chain contract.
    pub offchain_source: String,
    /// Compiled on-chain contract.
    pub onchain: CompiledContract,
    /// Compiled off-chain contract.
    pub offchain: CompiledContract,
    /// Names of functions that went off-chain.
    pub offchain_functions: Vec<String>,
}

/// Splits a whole contract into the generated on/off-chain pair.
///
/// Requirements (validated):
/// * an `address[2] participant` state variable (the two-party protocol
///   convention used for signature checks);
/// * at most one `MixedDecompose` settlement function, whose body starts
///   with `T result = heavyFn(...);` for a private heavy function.
pub fn generate_pair(whole: &Contract) -> Result<GeneratedPair, GenerateError> {
    // Convention checks.
    let participant_ok = whole.state.iter().any(|sv| {
        sv.name == "participant" && matches!(&sv.ty, Type::FixedArray(t, 2) if **t == Type::Address)
    });
    if !participant_ok {
        return err("contract must declare `address[2] participant`");
    }
    let plan = split(whole);

    // Partition functions.
    let mut light = Vec::new();
    let mut heavy = Vec::new();
    let mut mixed = Vec::new();
    for f in &whole.functions {
        match plan.class_of(&f.name) {
            Some(FunctionClass::LightPublic) => light.push(f.clone()),
            Some(FunctionClass::HeavyPrivate) => heavy.push(f.clone()),
            Some(FunctionClass::MixedDecompose) => mixed.push(f.clone()),
            None => return err(format!("unclassified function `{}`", f.name)),
        }
    }
    if mixed.len() > 1 {
        return err("more than one settlement function to decompose");
    }

    // Decompose the settlement function: `T r = heavy(...); rest…`.
    let (result_ty, enforce_body, result_fn_name) = match mixed.pop() {
        Some(settle) => {
            let mut body = settle.body.clone();
            if body.is_empty() {
                return err(format!("settlement `{}` has an empty body", settle.name));
            }
            let first = body.remove(0);
            match first {
                Stmt::VarDecl(p, Expr::InternalCall(callee, args)) if args.is_empty() => {
                    if !heavy.iter().any(|f| f.name == callee) {
                        return err(format!(
                            "settlement `{}` must start by calling a heavy function, found `{callee}`",
                            settle.name
                        ));
                    }
                    // The declared variable becomes the enforcement
                    // function's parameter.
                    let param = Param {
                        ty: p.ty.clone(),
                        name: p.name.clone(),
                    };
                    (Some((param, callee.clone())), body, Some(callee))
                }
                _ => {
                    return err(format!(
                        "settlement `{}` must start with `T r = heavyFn();`",
                        settle.name
                    ))
                }
            }
        }
        None => (None, Vec::new(), None),
    };
    let Some((result_param, result_fn)) = result_ty else {
        return err("no settlement function found to decompose (nothing to enforce on-chain)");
    };
    let _ = result_fn_name;

    // State-variable usage per side.
    let onchain_fn_names: Vec<&Function> = light.iter().collect();
    let mut onchain_vars: BTreeSet<String> = BTreeSet::new();
    for f in &onchain_fn_names {
        collect_idents(&f.body, &mut onchain_vars);
        for m in &f.modifiers {
            if let Some(md) = whole.modifiers.iter().find(|md| &md.name == m) {
                collect_idents(&md.body, &mut onchain_vars);
            }
        }
    }
    collect_idents(&enforce_body, &mut onchain_vars);
    let mut offchain_vars: BTreeSet<String> = BTreeSet::new();
    for f in &heavy {
        collect_idents(&f.body, &mut offchain_vars);
    }
    // Both sides keep `participant` (signature checks / certification).
    onchain_vars.insert("participant".into());
    offchain_vars.insert("participant".into());

    let state_of = |names: &BTreeSet<String>| -> Vec<StateVar> {
        whole
            .state
            .iter()
            .filter(|sv| names.contains(&sv.name))
            .cloned()
            .collect()
    };

    // Constructor splitting: keep statements that assign each side's
    // variables; parameters are those the kept statements reference.
    let (ctor_params, ctor_payable, ctor_body) =
        whole
            .constructor
            .clone()
            .unwrap_or((Vec::new(), false, Vec::new()));
    if ctor_payable {
        return err("payable constructors are not supported by the splitter");
    }
    let split_ctor = |vars: &BTreeSet<String>| -> Result<(Vec<Param>, Vec<Stmt>), GenerateError> {
        let mut body = Vec::new();
        let mut used: BTreeSet<String> = BTreeSet::new();
        for s in &ctor_body {
            let target = match s {
                Stmt::Assign(LValue::Ident(n), _) => n.clone(),
                Stmt::Assign(LValue::Index(b, _), _) => match &**b {
                    Expr::Ident(n) => n.clone(),
                    _ => return err("constructor assignments must target state variables"),
                },
                _ => return err("constructor must contain only assignments"),
            };
            if vars.contains(&target) {
                let mut ids = BTreeSet::new();
                if let Stmt::Assign(lv, e) = s {
                    collect_expr_idents(e, &mut ids);
                    if let LValue::Index(_, i) = lv {
                        collect_expr_idents(i, &mut ids);
                    }
                }
                used.extend(ids);
                body.push(s.clone());
            }
        }
        let params: Vec<Param> = ctor_params
            .iter()
            .filter(|p| used.contains(&p.name))
            .cloned()
            .collect();
        Ok((params, body))
    };
    let (on_ctor_params, on_ctor_body) = split_ctor(&onchain_vars)?;
    let (off_ctor_params, off_ctor_body) = split_ctor(&offchain_vars)?;

    // Modifiers: copy those referenced by each side's functions, and make
    // sure `certifiedparticipantOnly` exists off-chain.
    let modifiers_for = |fns: &[Function]| -> Vec<Modifier> {
        let used: BTreeSet<&String> = fns.iter().flat_map(|f| f.modifiers.iter()).collect();
        whole
            .modifiers
            .iter()
            .filter(|m| used.contains(&m.name))
            .cloned()
            .collect()
    };

    // ---- the on-chain contract ----
    let onchain_name = format!("{}OnChain", whole.name);
    let mut onchain = Contract {
        name: onchain_name.clone(),
        state: state_of(&onchain_vars),
        constructor: Some((on_ctor_params, false, on_ctor_body)),
        modifiers: modifiers_for(&light),
        functions: light.clone(),
        events: Vec::new(),
    };
    // Padding: deployedAddr + deployedAddrOnly + the two extra functions.
    onchain.state.push(StateVar {
        name: "deployedAddr".into(),
        ty: Type::Address,
        slot: 0,
    });
    onchain.modifiers.push(Modifier {
        name: "deployedAddrOnly".into(),
        body: vec![
            Stmt::Require(Expr::Bin(
                BinOp::Eq,
                Box::new(Expr::MsgSender),
                Box::new(Expr::Ident("deployedAddr".into())),
            )),
            Stmt::Placeholder,
        ],
    });
    onchain.functions.push(deploy_verified_instance_template());
    onchain.functions.push(Function {
        name: "enforceDisputeResolution".into(),
        params: vec![result_param.clone()],
        visibility: Visibility::External,
        payable: false,
        modifiers: vec!["deployedAddrOnly".into()],
        returns: None,
        body: enforce_body,
    });

    // ---- the off-chain contract ----
    let offchain_name = format!("{}OffChain", whole.name);
    let callback_iface = format!("{}Callback", whole.name);
    let mut off_modifiers = modifiers_for(&heavy);
    if !off_modifiers
        .iter()
        .any(|m| m.name == "certifiedparticipantOnly")
    {
        off_modifiers.push(certified_modifier_template());
    }
    let offchain = Contract {
        name: offchain_name.clone(),
        state: state_of(&offchain_vars),
        constructor: Some((off_ctor_params, false, off_ctor_body)),
        modifiers: off_modifiers,
        functions: {
            let mut fns = heavy.clone();
            fns.push(Function {
                name: "returnDisputeResolution".into(),
                params: vec![Param {
                    ty: Type::Address,
                    name: "addr".into(),
                }],
                visibility: Visibility::Public,
                payable: false,
                modifiers: vec!["certifiedparticipantOnly".into()],
                returns: None,
                body: vec![Stmt::ExprStmt(Expr::ExternalCall {
                    iface: callback_iface.clone(),
                    addr: Box::new(Expr::Ident("addr".into())),
                    method: "enforceDisputeResolution".into(),
                    args: vec![Expr::InternalCall(result_fn.clone(), vec![])],
                })],
            });
            fns
        },
        events: Vec::new(),
    };

    // Render and compile both.
    let onchain_program = Program {
        interfaces: vec![],
        contracts: vec![onchain],
    };
    let offchain_program = Program {
        interfaces: vec![Interface {
            name: callback_iface,
            methods: vec![IfaceMethod {
                name: "enforceDisputeResolution".into(),
                params: vec![result_param.ty.clone()],
                returns: None,
            }],
        }],
        contracts: vec![offchain],
    };
    let onchain_source = print_program(&onchain_program);
    let offchain_source = print_program(&offchain_program);
    let onchain = compile(&onchain_source, &onchain_name).map_err(|e| {
        GenerateError(format!(
            "generated on-chain does not compile: {e}\n{onchain_source}"
        ))
    })?;
    let offchain = compile(&offchain_source, &offchain_name).map_err(|e| {
        GenerateError(format!(
            "generated off-chain does not compile: {e}\n{offchain_source}"
        ))
    })?;

    Ok(GeneratedPair {
        onchain_source,
        offchain_source,
        onchain,
        offchain,
        offchain_functions: heavy.iter().map(|f| f.name.clone()).collect(),
    })
}

/// The `deployVerifiedInstance` padding function, built by parsing a
/// canonical template (two participants, one ecrecover each).
fn deploy_verified_instance_template() -> Function {
    let template = r#"
        contract t {
            address[2] participant;
            address deployedAddr;
            function deployVerifiedInstance(bytes memory bytecode, uint8 va, bytes32 ra, bytes32 sa, uint8 vb, bytes32 rb, bytes32 sb) public {
                bytes32 h_bytecode = keccak256(bytecode);
                address a = ecrecover(h_bytecode, va, ra, sa);
                address b = ecrecover(h_bytecode, vb, rb, sb);
                require(a == participant[0] && b == participant[1]);
                address addr = create(bytecode);
                require(addr != address(0));
                deployedAddr = addr;
            }
        }
    "#;
    sc_lang::parse(template)
        .expect("static template parses")
        .contracts[0]
        .functions[0]
        .clone()
}

/// The `certifiedparticipantOnly` modifier template.
fn certified_modifier_template() -> Modifier {
    let template = r#"
        contract t {
            address[2] participant;
            modifier certifiedparticipantOnly {
                require(msg.sender == participant[0] || msg.sender == participant[1]);
                _;
            }
        }
    "#;
    sc_lang::parse(template)
        .expect("static template parses")
        .contracts[0]
        .modifiers[0]
        .clone()
}

fn collect_idents(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for s in stmts {
        match s {
            Stmt::VarDecl(_, e) | Stmt::Require(e) | Stmt::Return(Some(e)) | Stmt::ExprStmt(e) => {
                collect_expr_idents(e, out)
            }
            Stmt::Assign(lv, e) => {
                match lv {
                    LValue::Ident(n) => {
                        out.insert(n.clone());
                    }
                    LValue::Index(b, i) => {
                        collect_expr_idents(b, out);
                        collect_expr_idents(i, out);
                    }
                }
                collect_expr_idents(e, out);
            }
            Stmt::Transfer(a, v) => {
                collect_expr_idents(a, out);
                collect_expr_idents(v, out);
            }
            Stmt::If(c, a, b) => {
                collect_expr_idents(c, out);
                collect_idents(a, out);
                collect_idents(b, out);
            }
            Stmt::While(c, b) => {
                collect_expr_idents(c, out);
                collect_idents(b, out);
            }
            _ => {}
        }
    }
}

fn collect_expr_idents(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Ident(n) => {
            out.insert(n.clone());
        }
        Expr::Balance(x)
        | Expr::Not(x)
        | Expr::Neg(x)
        | Expr::Keccak(x)
        | Expr::Create(x)
        | Expr::ArrayLength(x)
        | Expr::Cast(_, x) => collect_expr_idents(x, out),
        Expr::Index(a, b) | Expr::Bin(_, a, b) => {
            collect_expr_idents(a, out);
            collect_expr_idents(b, out);
        }
        Expr::EcRecover(a, b, c, d) => {
            for x in [a, b, c, d] {
                collect_expr_idents(x, out);
            }
        }
        Expr::InternalCall(_, args) => {
            for a in args {
                collect_expr_idents(a, out);
            }
        }
        Expr::ExternalCall { addr, args, .. } => {
            collect_expr_idents(addr, out);
            for a in args {
                collect_expr_idents(a, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_contracts::MONOLITHIC_SRC;
    use sc_lang::parse;

    fn whole() -> Contract {
        parse(MONOLITHIC_SRC).unwrap().contracts[0].clone()
    }

    #[test]
    fn generates_a_compiling_pair_from_the_monolithic_contract() {
        let pair = generate_pair(&whole()).expect("pair generated");
        assert!(!pair.onchain.runtime.is_empty());
        assert!(!pair.offchain.runtime.is_empty());
        assert_eq!(pair.offchain_functions, vec!["reveal".to_string()]);
        // The generated on-chain side exposes the light functions and the
        // padding; reveal is nowhere dispatchable.
        for f in [
            "deposit",
            "refundRoundOne",
            "refundRoundTwo",
            "deployVerifiedInstance",
        ] {
            assert!(
                pair.onchain.analyzed.selector_of(f).is_some(),
                "missing {f}\n{}",
                pair.onchain_source
            );
        }
        assert!(pair.onchain.analyzed.selector_of("reveal").is_none());
        assert!(pair.onchain.analyzed.selector_of("settle").is_none());
        assert!(pair
            .offchain
            .analyzed
            .selector_of("returnDisputeResolution")
            .is_some());
    }

    #[test]
    fn generated_offchain_hides_the_timeline() {
        // The off-chain contract only carries what reveal() needs: the
        // secrets and weight, not T1–T3.
        let pair = generate_pair(&whole()).unwrap();
        assert!(!pair.offchain_source.contains("T1"));
        assert!(pair.offchain_source.contains("secretA"));
        assert!(pair.offchain_source.contains("weight"));
    }

    #[test]
    fn generated_onchain_hides_the_secrets() {
        let pair = generate_pair(&whole()).unwrap();
        assert!(!pair.onchain_source.contains("secretA"));
        assert!(!pair.onchain_source.contains("weight"));
        assert!(pair.onchain_source.contains("deployedAddr"));
    }

    #[test]
    fn rejects_contract_without_participants() {
        let c = parse("contract c { uint256 x; function f() public { x = 1; } }")
            .unwrap()
            .contracts[0]
            .clone();
        assert!(generate_pair(&c).is_err());
    }

    #[test]
    fn rejects_settlement_without_heavy_call_prefix() {
        let src = r#"
            contract c {
                address[2] participant;
                mapping(address => uint256) b;
                function heavyish() private returns (bool) {
                    uint256 i = 0;
                    while (i < 10) { i = i + 1; }
                    return true;
                }
                function settle() public {
                    b[msg.sender] = 0;
                    msg.sender.transfer(1);
                    bool w = heavyish();
                    require(w);
                }
            }
        "#;
        let c = parse(src).unwrap().contracts[0].clone();
        let e = match generate_pair(&c) {
            Err(e) => e,
            Ok(_) => panic!("expected an error"),
        };
        assert!(e.0.contains("must start"), "{e}");
    }
}
