//! Signed copies of the off-chain contract (deploy/sign stage).
//!
//! A *signed copy* is the off-chain contract's bytecode together with one
//! recoverable ECDSA signature per participant over
//! `keccak256(bytecode)` — exactly the `(v, r, s)` tuples that
//! Algorithm 4 produces with `ethereumjs-util` and that Algorithm 5's
//! `deployVerifiedInstance` verifies with `ecrecover`.

use sc_crypto::ecdsa::{recover_address, PrivateKey, Signature};
use sc_crypto::keccak256;
use sc_primitives::{Address, H256};
use std::fmt;

/// A bytecode + signature bundle exchanged between participants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedCopy {
    /// The off-chain contract's initcode (what `CREATE` will run).
    pub bytecode: Vec<u8>,
    /// One signature per participant, in participant order.
    pub signatures: Vec<Signature>,
}

/// Verification failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignedCopyError {
    /// Signature count differs from the participant count.
    WrongSignatureCount {
        /// Expected (participants).
        expected: usize,
        /// Provided.
        got: usize,
    },
    /// Signature `i` does not recover to participant `i`.
    BadSignature(usize),
}

impl fmt::Display for SignedCopyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignedCopyError::WrongSignatureCount { expected, got } => {
                write!(f, "expected {expected} signatures, got {got}")
            }
            SignedCopyError::BadSignature(i) => {
                write!(f, "signature {i} does not match participant {i}")
            }
        }
    }
}

impl std::error::Error for SignedCopyError {}

/// The digest that participants sign: `keccak256(bytecode)`.
pub fn bytecode_hash(bytecode: &[u8]) -> H256 {
    keccak256(bytecode)
}

/// Produces one participant's signature over the bytecode (Algorithm 4).
pub fn sign_bytecode(key: &PrivateKey, bytecode: &[u8]) -> Signature {
    key.sign(bytecode_hash(bytecode))
}

impl SignedCopy {
    /// Assembles a fully-signed copy from each participant's key, in
    /// order. (In the protocol the signatures travel over Whisper; this
    /// is the trusted-path constructor used by honest participants and
    /// tests.)
    pub fn create(bytecode: Vec<u8>, keys: &[&PrivateKey]) -> SignedCopy {
        let signatures = keys.iter().map(|k| sign_bytecode(k, &bytecode)).collect();
        SignedCopy {
            bytecode,
            signatures,
        }
    }

    /// Verifies every signature against the expected participant set —
    /// the off-chain mirror of `deployVerifiedInstance`'s checks.
    pub fn verify(&self, participants: &[Address]) -> Result<(), SignedCopyError> {
        if self.signatures.len() != participants.len() {
            return Err(SignedCopyError::WrongSignatureCount {
                expected: participants.len(),
                got: self.signatures.len(),
            });
        }
        let digest = bytecode_hash(&self.bytecode);
        for (i, (sig, expected)) in self.signatures.iter().zip(participants).enumerate() {
            match recover_address(digest, sig) {
                Ok(addr) if addr == *expected => {}
                _ => return Err(SignedCopyError::BadSignature(i)),
            }
        }
        Ok(())
    }

    /// Wire format for the Whisper channel:
    /// `len(bytecode) as u32 BE || bytecode || 65-byte sigs…`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.bytecode.len() + 65 * self.signatures.len());
        out.extend_from_slice(&(self.bytecode.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.bytecode);
        for sig in &self.signatures {
            out.extend_from_slice(&sig.to_bytes());
        }
        out
    }

    /// Parses the wire format.
    pub fn from_bytes(data: &[u8]) -> Option<SignedCopy> {
        if data.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes([data[0], data[1], data[2], data[3]]) as usize;
        let rest = &data[4..];
        if rest.len() < len || !(rest.len() - len).is_multiple_of(65) {
            return None;
        }
        let bytecode = rest[..len].to_vec();
        let signatures = rest[len..]
            .chunks_exact(65)
            .map(|c| Signature::from_bytes(c).ok())
            .collect::<Option<Vec<_>>>()?;
        Some(SignedCopy {
            bytecode,
            signatures,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> (PrivateKey, PrivateKey) {
        (PrivateKey::from_seed("alice"), PrivateKey::from_seed("bob"))
    }

    #[test]
    fn create_and_verify() {
        let (a, b) = keys();
        let copy = SignedCopy::create(vec![1, 2, 3, 4], &[&a, &b]);
        copy.verify(&[a.address(), b.address()]).unwrap();
    }

    #[test]
    fn verify_rejects_wrong_order() {
        let (a, b) = keys();
        let copy = SignedCopy::create(vec![1, 2, 3], &[&a, &b]);
        assert_eq!(
            copy.verify(&[b.address(), a.address()]),
            Err(SignedCopyError::BadSignature(0))
        );
    }

    #[test]
    fn verify_rejects_tampered_bytecode() {
        let (a, b) = keys();
        let mut copy = SignedCopy::create(vec![1, 2, 3], &[&a, &b]);
        copy.bytecode[0] = 9;
        assert!(matches!(
            copy.verify(&[a.address(), b.address()]),
            Err(SignedCopyError::BadSignature(0))
        ));
    }

    #[test]
    fn verify_rejects_missing_signature() {
        let (a, b) = keys();
        let mut copy = SignedCopy::create(vec![1, 2, 3], &[&a, &b]);
        copy.signatures.pop();
        assert_eq!(
            copy.verify(&[a.address(), b.address()]),
            Err(SignedCopyError::WrongSignatureCount {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn verify_rejects_outsider_signature() {
        let (a, b) = keys();
        let mallory = PrivateKey::from_seed("mallory");
        let bytecode = vec![7; 40];
        let copy = SignedCopy {
            bytecode: bytecode.clone(),
            signatures: vec![
                sign_bytecode(&a, &bytecode),
                sign_bytecode(&mallory, &bytecode),
            ],
        };
        assert_eq!(
            copy.verify(&[a.address(), b.address()]),
            Err(SignedCopyError::BadSignature(1))
        );
    }

    #[test]
    fn wire_roundtrip() {
        let (a, b) = keys();
        let copy = SignedCopy::create(vec![0xab; 300], &[&a, &b]);
        let parsed = SignedCopy::from_bytes(&copy.to_bytes()).unwrap();
        assert_eq!(parsed, copy);
    }

    #[test]
    fn wire_rejects_garbage() {
        assert!(SignedCopy::from_bytes(&[]).is_none());
        assert!(SignedCopy::from_bytes(&[0, 0, 0, 10, 1, 2]).is_none());
        let (a, b) = keys();
        let mut wire = SignedCopy::create(vec![1], &[&a, &b]).to_bytes();
        wire.pop(); // truncate a signature
        assert!(SignedCopy::from_bytes(&wire).is_none());
    }

    #[test]
    fn n_party_copies() {
        let keys: Vec<PrivateKey> = (0..6)
            .map(|i| PrivateKey::from_seed(&format!("p{i}")))
            .collect();
        let refs: Vec<&PrivateKey> = keys.iter().collect();
        let copy = SignedCopy::create(vec![0x60; 64], &refs);
        let addrs: Vec<Address> = keys.iter().map(|k| k.address()).collect();
        copy.verify(&addrs).unwrap();
    }
}
