//! Post-run invariants of the protocol: what must hold after every game
//! no matter which faults were injected or which strategies were played.
//!
//! Four claims are checked by the chaos suite after each run:
//!
//! 1. **Ether conservation** — the EVM and gas settlement only ever
//!    *move* wei, so the sum over all accounts equals the chain's total
//!    minted supply.
//! 2. **Honest floor** — an honest participant never ends worse than
//!    `initial − deposit − gas`: the worst admissible outcome is losing
//!    the staked deposit plus the gas they chose to spend, never more.
//! 3. **Termination** — the driver returned a valid `Outcome` at all
//!    (enforced by the type system; the suite additionally checks the
//!    report is self-consistent).
//! 4. **State commitments** — every sealed header's `receipts_root` and
//!    `gas_used` match a recomputation from the stored receipts, and the
//!    head's `state_root` matches a state trie rebuilt from scratch
//!    through the host boundary ([`check_state_commitments`]).

use sc_chain::{block, encode_account, Testnet};
use sc_evm::host::Host;
use sc_primitives::{Address, U256};
use sc_trie::SecureTrie;
use std::fmt;

/// A violated invariant, with enough context to debug the seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation(pub String);

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant violated: {}", self.0)
    }
}

impl std::error::Error for InvariantViolation {}

/// Ether conservation: Σ balances == total minted. Holds after every
/// block because execution and gas settlement are pure transfers.
pub fn check_conservation(net: &Testnet) -> Result<(), InvariantViolation> {
    let total = net.state.total_balance();
    let minted = net.total_minted();
    if total == minted {
        Ok(())
    } else {
        Err(InvariantViolation(format!(
            "ether not conserved: accounts hold {total}, minted {minted}"
        )))
    }
}

/// State commitments: every header's Merkle roots are honest.
///
/// Per block, the `receipts_root` and `gas_used` sealed into the header
/// must match a recomputation over the receipts the chain stored. At
/// the head, the `state_root` must match an *independent* rebuild of
/// the full account and storage tries — walked through the public host
/// boundary (`addresses` / account fields / `storage_entries`), never
/// trusting the chain's own incremental tries or cached storage roots.
///
/// Historical states are not retained by the simulator, so only the
/// head's state root is recomputable; it is meaningful at block
/// boundaries (faucet mints after the last seal would legitimately move
/// the live state ahead of the sealed commitment — callers check after
/// runs, when every effect has been mined).
pub fn check_state_commitments(net: &Testnet) -> Result<(), InvariantViolation> {
    let head = net.head().number;
    for number in 0..=head {
        let header = net.block(number).expect("block in range");
        let receipts = net.receipts_in_block(number);
        let recomputed = block::receipts_root(receipts.iter().copied());
        if recomputed != header.receipts_root {
            return Err(InvariantViolation(format!(
                "block {number}: header receipts_root {} != recomputed {recomputed}",
                header.receipts_root
            )));
        }
        let gas: u64 = receipts.iter().map(|r| r.gas_used).sum();
        if gas != header.gas_used {
            return Err(InvariantViolation(format!(
                "block {number}: header gas_used {} != receipt sum {gas}",
                header.gas_used
            )));
        }
    }

    let mut account_trie = SecureTrie::new();
    for a in net.state.addresses() {
        let Some(acct) = net.state.account(a) else {
            continue;
        };
        if !acct.exists() {
            continue;
        }
        let mut storage_trie = SecureTrie::new();
        for (slot, value) in net.state.storage_entries(a) {
            storage_trie.insert(
                &slot.to_be_bytes(),
                sc_chain::state::encode_storage_value(value),
            );
        }
        account_trie.insert(
            a.as_bytes(),
            encode_account(
                acct.nonce,
                acct.balance,
                storage_trie.root(),
                acct.code_hash,
            ),
        );
    }
    let rebuilt = account_trie.root();
    let sealed = net.head().state_root;
    if rebuilt != sealed {
        return Err(InvariantViolation(format!(
            "head block {head}: header state_root {sealed} != scratch rebuild {rebuilt}"
        )));
    }
    Ok(())
}

/// The honest floor: `final >= initial − deposit − gas_spent`.
///
/// `deposit` is the maximum stake the participant ever had at risk
/// (1 ether for the betting game, 1.1 ether for the challenge variant);
/// `gas_spent` is the wei they paid miners across their transactions.
pub fn check_honest_floor(
    who: &str,
    initial: U256,
    final_balance: U256,
    deposit: U256,
    gas_spent: U256,
) -> Result<(), InvariantViolation> {
    let floor = initial.wrapping_sub(deposit).wrapping_sub(gas_spent);
    if final_balance >= floor {
        Ok(())
    } else {
        Err(InvariantViolation(format!(
            "honest participant {who} below the floor: final {final_balance} < \
             initial {initial} − deposit {deposit} − gas {gas_spent}"
        )))
    }
}

/// Wei paid to miners for a set of `(sender, gas_used)` transaction
/// records at a uniform gas price.
pub fn gas_spent_by<'a>(
    txs: impl IntoIterator<Item = (Address, &'a u64)>,
    who: Address,
    gas_price: U256,
) -> U256 {
    let total: u64 = txs
        .into_iter()
        .filter(|(sender, _)| *sender == who)
        .map(|(_, gas)| *gas)
        .sum();
    U256::from_u64(total).wrapping_mul(gas_price)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_primitives::ether;

    #[test]
    fn conservation_holds_on_a_fresh_chain_and_after_transfers() {
        let mut net = Testnet::new();
        check_conservation(&net).unwrap();
        let a = net.funded_wallet("a", ether(5));
        check_conservation(&net).unwrap();
        let r = net
            .execute(&a, Address([9; 20]), ether(1), Vec::new(), 21_000)
            .unwrap();
        assert!(r.success);
        check_conservation(&net).unwrap();
    }

    #[test]
    fn state_commitments_hold_across_transfers_and_storage_writes() {
        let mut net = Testnet::new();
        check_state_commitments(&net).unwrap();
        let a = net.funded_wallet("a", ether(5));
        // `PUSH1 42 PUSH1 1 SSTORE STOP` as initcode: the deployed
        // contract is empty but slot 1 of its account holds 42, so the
        // rebuild exercises a non-empty storage trie.
        let initcode = vec![0x60, 0x2a, 0x60, 0x01, 0x55, 0x00];
        let r = net.deploy(&a, initcode, U256::ZERO, 200_000).unwrap();
        assert!(r.success);
        net.execute(&a, Address([9; 20]), ether(1), Vec::new(), 21_000)
            .unwrap();
        check_state_commitments(&net).unwrap();
    }

    #[test]
    fn floor_accepts_the_worst_legal_outcome_and_rejects_worse() {
        let initial = ether(1000);
        let deposit = ether(1);
        let gas = U256::from_u64(100_000);
        // Exactly at the floor: lost the deposit plus gas.
        let floor = initial.wrapping_sub(deposit).wrapping_sub(gas);
        check_honest_floor("p", initial, floor, deposit, gas).unwrap();
        // One wei below is a violation.
        let below = floor.wrapping_sub(U256::ONE);
        assert!(check_honest_floor("p", initial, below, deposit, gas).is_err());
        // Winning is obviously fine.
        check_honest_floor("p", initial, initial.wrapping_add(deposit), deposit, gas).unwrap();
    }

    #[test]
    fn gas_attribution_filters_by_sender() {
        let alice = Address([1; 20]);
        let bob = Address([2; 20]);
        let txs = [(alice, 100u64), (bob, 50), (alice, 25)];
        let spent = gas_spent_by(txs.iter().map(|(s, g)| (*s, g)), alice, U256::from_u64(2));
        assert_eq!(spent, U256::from_u64(250));
    }
}
