//! The four-stage hybrid on/off-chain protocol engine (Fig. 2).
//!
//! Drives a complete betting game between two participants on the chain
//! simulator:
//!
//! 1. **Split/generate** — compile the on/off-chain pair; build the
//!    off-chain initcode with the private bet baked in.
//! 2. **Deploy/sign** — deploy the on-chain contract; exchange
//!    signatures over `keccak256(offchain bytecode)` via Whisper; each
//!    honest participant verifies the full signed copy *before* any
//!    deposit (Byzantine signers are caught here and the game aborts).
//! 3. **Submit/challenge** — deposits; off-chain evaluation of
//!    `reveal()`; the honest loser concedes via `reassign()`.
//! 4. **Dispute/resolve** — if the loser stalls past T3, the winner
//!    submits the signed copy to `deployVerifiedInstance`, the verified
//!    instance is CREATEd on-chain, and `returnDisputeResolution` makes
//!    miners recompute `reveal()` and enforce the transfer.
//!
//! Since the session-engine refactor the event loop itself lives in
//! [`BettingSession`](crate::session::BettingSession): a resumable
//! state machine over the T1–T3 deadlines whose every wait — signature
//! rounds, retry backoff, contract windows — is yielded to the caller.
//! [`BettingGame`] is the preserved legacy entry point: it owns a
//! session-private chain and bus and drives the machine in *immediate*
//! mode (one block per transaction, waits applied to the private
//! clock), which reproduces the blocking `run()` behaviour exactly.
//! The same machine, driven by a
//! [`SessionScheduler`](crate::session::SessionScheduler), shares one
//! chain with N other sessions instead.

use crate::faults::{FaultPlan, FaultyWhisper, FlakyNet};
use crate::participant::Participant;
use crate::session::{
    BettingSession, BettingSessionParams, BusPort, ChainPort, SessionCtx, StepOutcome,
};
use sc_contracts::{BetSecrets, OffChainContract, OnChainContract, Timeline};
use sc_primitives::{ether, Address, U256};
use std::fmt;
use std::ops::{Deref, DerefMut};

/// Whisper topic used to exchange signatures.
pub const SIGNATURE_TOPIC: &str = "betting/signed-copy";

/// Protocol stages (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Classify functions, generate the pair, build off-chain initcode.
    SplitGenerate,
    /// Deploy the on-chain contract; exchange and verify signed copies.
    DeploySign,
    /// Deposits, off-chain execution, voluntary settlement.
    SubmitChallenge,
    /// Signed-copy submission and miner-enforced resolution.
    DisputeResolve,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::SplitGenerate => "split/generate",
            Stage::DeploySign => "deploy/sign",
            Stage::SubmitChallenge => "submit/challenge",
            Stage::DisputeResolve => "dispute/resolve",
        };
        write!(f, "{s}")
    }
}

/// One on-chain transaction made by the protocol.
#[derive(Debug, Clone)]
pub struct TxRecord {
    /// Stage it belongs to.
    pub stage: Stage,
    /// What it was (e.g. `"deployVerifiedInstance"`).
    pub label: String,
    /// Who sent it.
    pub sender: Address,
    /// Gas charged.
    pub gas_used: u64,
    /// Whether it succeeded.
    pub success: bool,
}

/// How the game ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Aborted during deploy/sign (bad or missing signatures); no funds
    /// were ever at risk.
    AbortedAtSigning,
    /// Dissolved via refunds (a participant never deposited).
    Refunded,
    /// The loser conceded; settled without revealing anything.
    SettledHonestly,
    /// Settled through the dispute/resolve stage.
    SettledByDispute,
}

/// Full record of one protocol run.
#[derive(Debug, Clone)]
pub struct ProtocolReport {
    /// Every on-chain transaction, in order.
    pub txs: Vec<TxRecord>,
    /// The game's outcome.
    pub outcome: Outcome,
    /// True iff the dispute path ran.
    pub dispute: bool,
    /// Result of the off-chain computation (true → Bob wins).
    pub winner_is_bob: bool,
    /// Bytes of off-chain contract code that became publicly visible
    /// on-chain (0 on the honest path; the privacy metric of Fig. 1).
    pub offchain_bytes_revealed: usize,
    /// Off-chain messages exchanged (Whisper traffic).
    pub offchain_messages: usize,
}

impl ProtocolReport {
    /// Total gas across all transactions (miner-executed work).
    pub fn total_gas(&self) -> u64 {
        self.txs.iter().map(|t| t.gas_used).sum()
    }

    /// Gas attributable to one stage.
    pub fn stage_gas(&self, stage: Stage) -> u64 {
        self.txs
            .iter()
            .filter(|t| t.stage == stage)
            .map(|t| t.gas_used)
            .sum()
    }

    /// Gas of the first successful transaction with this label.
    pub fn gas_of(&self, label: &str) -> Option<u64> {
        self.txs
            .iter()
            .find(|t| t.label == label && t.success)
            .map(|t| t.gas_used)
    }

    /// Total gas units sent by one address (successful or not — failed
    /// transactions are paid for too).
    pub fn gas_spent_by(&self, who: Address) -> u64 {
        self.txs
            .iter()
            .filter(|t| t.sender == who)
            .map(|t| t.gas_used)
            .sum()
    }
}

/// Protocol-level failures (distinct from failed-but-expected txs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A transaction that must succeed was rejected or reverted.
    TxFailed(String),
    /// The verified instance address was not recorded on-chain.
    NoVerifiedInstance,
    /// A state read could not be authenticated against the chain's
    /// `state_root` commitment (bad Merkle proof or value mismatch).
    StateUnverified(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::TxFailed(l) => write!(f, "required transaction failed: {l}"),
            ProtocolError::NoVerifiedInstance => write!(f, "deployedAddr not set"),
            ProtocolError::StateUnverified(l) => {
                write!(f, "state read failed Merkle verification: {l}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Configuration of one betting game.
#[derive(Clone, Debug)]
pub struct GameConfig {
    /// Phase length in seconds between T0→T1→T2→T3.
    pub phase_seconds: u64,
    /// The private bet.
    pub secrets: BetSecrets,
}

impl Default for GameConfig {
    fn default() -> Self {
        GameConfig {
            phase_seconds: 3600,
            secrets: BetSecrets {
                secret_a: U256::from_u64(0xa11ce),
                secret_b: U256::from_u64(0xb0b),
                weight: 64,
            },
        }
    }
}

/// The protocol engine for one two-party betting game.
///
/// A thin wrapper since the session-engine refactor: the event loop is
/// a [`BettingSession`] state machine, and this type owns the
/// session-private (possibly flaky) chain and bus it runs against.
/// Session state — participants, timeline, the deployed address, the
/// agreed bytecode — is reachable directly through [`Deref`].
pub struct BettingGame {
    /// The chain (possibly flaky — [`FaultPlan::none`] makes it perfect).
    pub net: FlakyNet,
    /// The off-chain message bus (possibly faulty).
    pub whisper: FaultyWhisper,
    session: BettingSession,
}

impl Deref for BettingGame {
    type Target = BettingSession;
    fn deref(&self) -> &BettingSession {
        &self.session
    }
}

impl DerefMut for BettingGame {
    fn deref_mut(&mut self) -> &mut BettingSession {
        &mut self.session
    }
}

impl BettingGame {
    /// Stage 1 — split/generate on a perfect network: sets up the
    /// chain, compiles both contracts and builds the off-chain initcode.
    pub fn new(alice: Participant, bob: Participant, config: GameConfig) -> BettingGame {
        BettingGame::with_faults(alice, bob, config, &FaultPlan::none())
    }

    /// Stage 1 under a fault schedule: same setup, but every whisper
    /// message and chain submission passes through the seeded fault
    /// injectors.
    pub fn with_faults(
        alice: Participant,
        bob: Participant,
        config: GameConfig,
        plan: &FaultPlan,
    ) -> BettingGame {
        let mut net = FlakyNet::new(sc_chain::Testnet::new(), plan);
        net.faucet(alice.wallet.address, ether(1000));
        net.faucet(bob.wallet.address, ether(1000));
        let timeline = Timeline::starting_at(net.now(), config.phase_seconds);
        let session = BettingSession::new(BettingSessionParams {
            alice,
            bob,
            config,
            topic: SIGNATURE_TOPIC.into(),
            contracts: (OnChainContract::new(), OffChainContract::new()),
            timeline: Some(timeline),
            start_delay: 0,
            funding: None,
        });
        BettingGame {
            net,
            whisper: FaultyWhisper::new(plan),
            session,
        }
    }

    /// Runs the complete game and produces the report.
    ///
    /// Drives the state machine in immediate mode: every yielded wait
    /// advances the private chain clock (exactly what the old blocking
    /// loop did in place), every transaction mines its own block.
    pub fn run(mut self) -> Result<(BettingGame, ProtocolReport), ProtocolError> {
        loop {
            let outcome = {
                let mut port = ChainPort::Immediate(&mut self.net);
                let mut ctx = SessionCtx {
                    chain: &mut port,
                    bus: BusPort::Owned(&mut self.whisper),
                };
                self.session.step(&mut ctx)?
            };
            match outcome {
                StepOutcome::Progress => {}
                StepOutcome::WaitUntil(t) => {
                    let now = self.net.now();
                    if t > now {
                        self.net.advance_time(t - now);
                    }
                }
                StepOutcome::Pending => unreachable!("immediate mode never queues"),
                StepOutcome::Done => break,
            }
        }
        let report = self.session.report(self.whisper.message_count());
        Ok((self, report))
    }
}
