//! The four-stage hybrid on/off-chain protocol engine (Fig. 2).
//!
//! Drives a complete betting game between two participants on the chain
//! simulator:
//!
//! 1. **Split/generate** — compile the on/off-chain pair; build the
//!    off-chain initcode with the private bet baked in.
//! 2. **Deploy/sign** — deploy the on-chain contract; exchange
//!    signatures over `keccak256(offchain bytecode)` via Whisper; each
//!    honest participant verifies the full signed copy *before* any
//!    deposit (Byzantine signers are caught here and the game aborts).
//! 3. **Submit/challenge** — deposits; off-chain evaluation of
//!    `reveal()`; the honest loser concedes via `reassign()`.
//! 4. **Dispute/resolve** — if the loser stalls past T3, the winner
//!    submits the signed copy to `deployVerifiedInstance`, the verified
//!    instance is CREATEd on-chain, and `returnDisputeResolution` makes
//!    miners recompute `reveal()` and enforce the transfer.
//!
//! The driver is an event loop over the T1–T3 deadlines, not a straight
//! script: whisper messages are re-posted in bounded rounds until both
//! sides hold a valid signed copy or the T1 deadline forces an abort;
//! every on-chain send retries transient network failures with capped
//! exponential backoff; and a step that misses its contract window
//! degrades to the next safe path (missed signatures → abort before any
//! deposit, missed deposits → round-two refunds, missed `reassign` →
//! the winner escalates to `deployVerifiedInstance`). Under a
//! [`FaultPlan`] with its finite budgets this guarantees every game
//! terminates in a valid [`Outcome`].

use crate::faults::{FaultPlan, FaultyWhisper, FlakyNet, NetError, MAX_INJECTED_SECS};
use crate::participant::{Participant, Strategy};
use crate::signedcopy::{bytecode_hash, sign_bytecode, SignedCopy};
use sc_chain::{Receipt, TxError, Wallet};
use sc_contracts::{BetSecrets, OffChainContract, OnChainContract, Timeline, DEPLOYED_ADDR_SLOT};
use sc_crypto::ecdsa::{recover_address, Signature};
use sc_primitives::{ether, Address, U256};
use std::fmt;

/// Whisper topic used to exchange signatures.
pub const SIGNATURE_TOPIC: &str = "betting/signed-copy";

/// Most on-chain sends attempted per step. Far above any fault budget,
/// so exhaustion implies a deterministic failure, not bad luck.
const MAX_ATTEMPTS: u32 = 64;

/// First retry backoff in seconds (doubles, capped at
/// [`MAX_INJECTED_SECS`]).
const BACKOFF_BASE_SECS: u64 = 15;

/// Simulated seconds between signature-exchange rounds.
const SIGN_ROUND_SECS: u64 = 30;

/// Signature-exchange rounds before an honest participant gives up.
/// Exceeds any whisper fault budget's ability to suppress a re-posted
/// signature, and `16 × 30s` stays well inside the pre-T1 phase.
const MAX_SIGN_ROUNDS: u32 = 16;

/// Protocol stages (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Classify functions, generate the pair, build off-chain initcode.
    SplitGenerate,
    /// Deploy the on-chain contract; exchange and verify signed copies.
    DeploySign,
    /// Deposits, off-chain execution, voluntary settlement.
    SubmitChallenge,
    /// Signed-copy submission and miner-enforced resolution.
    DisputeResolve,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::SplitGenerate => "split/generate",
            Stage::DeploySign => "deploy/sign",
            Stage::SubmitChallenge => "submit/challenge",
            Stage::DisputeResolve => "dispute/resolve",
        };
        write!(f, "{s}")
    }
}

/// One on-chain transaction made by the protocol.
#[derive(Debug, Clone)]
pub struct TxRecord {
    /// Stage it belongs to.
    pub stage: Stage,
    /// What it was (e.g. `"deployVerifiedInstance"`).
    pub label: String,
    /// Who sent it.
    pub sender: Address,
    /// Gas charged.
    pub gas_used: u64,
    /// Whether it succeeded.
    pub success: bool,
}

/// How the game ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Aborted during deploy/sign (bad or missing signatures); no funds
    /// were ever at risk.
    AbortedAtSigning,
    /// Dissolved via refunds (a participant never deposited).
    Refunded,
    /// The loser conceded; settled without revealing anything.
    SettledHonestly,
    /// Settled through the dispute/resolve stage.
    SettledByDispute,
}

/// Full record of one protocol run.
#[derive(Debug, Clone)]
pub struct ProtocolReport {
    /// Every on-chain transaction, in order.
    pub txs: Vec<TxRecord>,
    /// The game's outcome.
    pub outcome: Outcome,
    /// True iff the dispute path ran.
    pub dispute: bool,
    /// Result of the off-chain computation (true → Bob wins).
    pub winner_is_bob: bool,
    /// Bytes of off-chain contract code that became publicly visible
    /// on-chain (0 on the honest path; the privacy metric of Fig. 1).
    pub offchain_bytes_revealed: usize,
    /// Off-chain messages exchanged (Whisper traffic).
    pub offchain_messages: usize,
}

impl ProtocolReport {
    /// Total gas across all transactions (miner-executed work).
    pub fn total_gas(&self) -> u64 {
        self.txs.iter().map(|t| t.gas_used).sum()
    }

    /// Gas attributable to one stage.
    pub fn stage_gas(&self, stage: Stage) -> u64 {
        self.txs
            .iter()
            .filter(|t| t.stage == stage)
            .map(|t| t.gas_used)
            .sum()
    }

    /// Gas of the first successful transaction with this label.
    pub fn gas_of(&self, label: &str) -> Option<u64> {
        self.txs
            .iter()
            .find(|t| t.label == label && t.success)
            .map(|t| t.gas_used)
    }

    /// Total gas units sent by one address (successful or not — failed
    /// transactions are paid for too).
    pub fn gas_spent_by(&self, who: Address) -> u64 {
        self.txs
            .iter()
            .filter(|t| t.sender == who)
            .map(|t| t.gas_used)
            .sum()
    }
}

/// Protocol-level failures (distinct from failed-but-expected txs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A transaction that must succeed was rejected or reverted.
    TxFailed(String),
    /// The verified instance address was not recorded on-chain.
    NoVerifiedInstance,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::TxFailed(l) => write!(f, "required transaction failed: {l}"),
            ProtocolError::NoVerifiedInstance => write!(f, "deployedAddr not set"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Configuration of one betting game.
#[derive(Clone, Debug)]
pub struct GameConfig {
    /// Phase length in seconds between T0→T1→T2→T3.
    pub phase_seconds: u64,
    /// The private bet.
    pub secrets: BetSecrets,
}

impl Default for GameConfig {
    fn default() -> Self {
        GameConfig {
            phase_seconds: 3600,
            secrets: BetSecrets {
                secret_a: U256::from_u64(0xa11ce),
                secret_b: U256::from_u64(0xb0b),
                weight: 64,
            },
        }
    }
}

/// Result of one retrying send: the transaction either landed (possibly
/// reverting), missed its contract window, or was rejected outright.
enum TxAttempt {
    Landed(Receipt),
    DeadlineMissed,
    Rejected(TxError),
}

/// The protocol engine for one two-party betting game.
pub struct BettingGame {
    /// The chain (possibly flaky — [`FaultPlan::none`] makes it perfect).
    pub net: FlakyNet,
    /// The off-chain message bus (possibly faulty).
    pub whisper: FaultyWhisper,
    /// Compiled on-chain contract + ABI.
    pub onchain_abi: OnChainContract,
    /// Compiled off-chain contract + ABI.
    pub offchain_abi: OffChainContract,
    /// Participant 0.
    pub alice: Participant,
    /// Participant 1.
    pub bob: Participant,
    /// The game's windows.
    pub timeline: Timeline,
    config: GameConfig,
    /// Address of the deployed on-chain contract (after deploy/sign).
    pub onchain_addr: Option<Address>,
    /// The agreed off-chain initcode.
    pub offchain_bytecode: Vec<u8>,
    txs: Vec<TxRecord>,
    offchain_bytes_revealed: usize,
}

impl BettingGame {
    /// Stage 1 — split/generate on a perfect network: sets up the
    /// chain, compiles both contracts and builds the off-chain initcode.
    pub fn new(alice: Participant, bob: Participant, config: GameConfig) -> BettingGame {
        BettingGame::with_faults(alice, bob, config, &FaultPlan::none())
    }

    /// Stage 1 under a fault schedule: same setup, but every whisper
    /// message and chain submission passes through the seeded fault
    /// injectors.
    pub fn with_faults(
        alice: Participant,
        bob: Participant,
        config: GameConfig,
        plan: &FaultPlan,
    ) -> BettingGame {
        let mut net = FlakyNet::new(sc_chain::Testnet::new(), plan);
        net.faucet(alice.wallet.address, ether(1000));
        net.faucet(bob.wallet.address, ether(1000));
        let timeline = Timeline::starting_at(net.now(), config.phase_seconds);
        let onchain_abi = OnChainContract::new();
        let offchain_abi = OffChainContract::new();
        let offchain_bytecode =
            offchain_abi.initcode(alice.wallet.address, bob.wallet.address, config.secrets);
        BettingGame {
            net,
            whisper: FaultyWhisper::new(plan),
            onchain_abi,
            offchain_abi,
            alice,
            bob,
            timeline,
            config,
            onchain_addr: None,
            offchain_bytecode,
            txs: Vec::new(),
            offchain_bytes_revealed: 0,
        }
    }

    fn record(&mut self, stage: Stage, label: &str, sender: Address, receipt: &Receipt) {
        self.txs.push(TxRecord {
            stage,
            label: label.to_string(),
            sender,
            gas_used: receipt.gas_used,
            success: receipt.success,
        });
    }

    /// Sends a transaction, retrying transient network failures with
    /// capped exponential backoff until it lands, the window closes, or
    /// the node returns a deterministic rejection. Every landed receipt
    /// (even a revert) is recorded in the ledger.
    #[allow(clippy::too_many_arguments)] // mirrors the tx fields one-to-one
    fn send_with_retry(
        &mut self,
        stage: Stage,
        label: &str,
        wallet: &Wallet,
        to: Option<Address>,
        value: U256,
        data: Vec<u8>,
        gas: u64,
        deadline: Option<u64>,
    ) -> TxAttempt {
        let mut backoff = BACKOFF_BASE_SECS;
        for _ in 0..MAX_ATTEMPTS {
            if let Some(d) = deadline {
                if self.net.now() >= d {
                    return TxAttempt::DeadlineMissed;
                }
            }
            let sent = match to {
                Some(to) => self.net.execute(wallet, to, value, data.clone(), gas),
                None => self.net.deploy(wallet, data.clone(), value, gas),
            };
            match sent {
                Ok(receipt) => {
                    self.record(stage, label, wallet.address, &receipt);
                    return TxAttempt::Landed(receipt);
                }
                Err(NetError::Transient(_)) => {
                    // The injected failure consumed fault budget; wait it
                    // out and try again.
                    self.net.advance_time(backoff);
                    backoff = (backoff * 2).min(MAX_INJECTED_SECS);
                }
                Err(NetError::Rejected(e)) => return TxAttempt::Rejected(e),
            }
        }
        // Unreachable while MAX_ATTEMPTS exceeds every fault budget, but
        // bounded regardless: a stage can stall, never hang.
        TxAttempt::DeadlineMissed
    }

    /// Stage 2 — deploy/sign. Returns `false` when an honest participant
    /// aborts because the signature exchange failed (missing, tampered,
    /// or undeliverable signatures by the T1 deadline).
    pub fn deploy_and_sign(&mut self) -> Result<bool, ProtocolError> {
        // Alice deploys the on-chain contract. Must land before T1 or
        // the game cannot proceed to deposits.
        let initcode = self.onchain_abi.initcode(
            self.alice.wallet.address,
            self.bob.wallet.address,
            self.timeline,
        );
        let wallet = self.alice.wallet.clone();
        match self.send_with_retry(
            Stage::DeploySign,
            "deploy onChain",
            &wallet,
            None,
            U256::ZERO,
            initcode,
            5_000_000,
            Some(self.timeline.t1),
        ) {
            TxAttempt::Landed(r) if r.success => self.onchain_addr = r.contract_address,
            TxAttempt::Landed(_) => {
                return Err(ProtocolError::TxFailed("deploy onChain".into()));
            }
            TxAttempt::DeadlineMissed => return Ok(false),
            TxAttempt::Rejected(e) => {
                return Err(ProtocolError::TxFailed(format!("deploy onChain: {e}")));
            }
        }

        // Signature exchange: bounded rounds of re-post + poll until
        // both participants hold a valid signature from each side, the
        // rounds run out, or T1 arrives. A Byzantine signer posts
        // garbage (or nothing) every round; an honest signer's message
        // may be dropped, delayed or corrupted in transit — re-posting
        // plus per-candidate verification recovers from all of it.
        let expected = [self.alice.wallet.address, self.bob.wallet.address];
        let digest = bytecode_hash(&self.offchain_bytecode);
        let mut seen: [[Option<Signature>; 2]; 2] = [[None, None], [None, None]];
        let complete =
            |seen: &[[Option<Signature>; 2]; 2]| seen.iter().flatten().all(Option::is_some);
        for round in 0..MAX_SIGN_ROUNDS {
            if self.net.now() + SIGN_ROUND_SECS >= self.timeline.t1 {
                break;
            }
            for p in [self.alice.clone(), self.bob.clone()] {
                match p.strategy {
                    Strategy::RefusesToSign => {} // posts nothing, every round
                    Strategy::SignsTampered => {
                        let mut tampered = self.offchain_bytecode.clone();
                        // Flip the last byte of the baked-in secret.
                        let last = tampered.len() - 1;
                        tampered[last] ^= 0xff;
                        let sig = sign_bytecode(&p.wallet.key, &tampered);
                        self.whisper.post(
                            p.wallet.address,
                            SIGNATURE_TOPIC,
                            sig.to_bytes().to_vec(),
                        );
                    }
                    _ => {
                        let sig = sign_bytecode(&p.wallet.key, &self.offchain_bytecode);
                        self.whisper.post(
                            p.wallet.address,
                            SIGNATURE_TOPIC,
                            sig.to_bytes().to_vec(),
                        );
                    }
                }
            }
            for (reader, me) in expected.into_iter().enumerate() {
                for env in self.whisper.poll(me, SIGNATURE_TOPIC) {
                    let Ok(sig) = Signature::from_bytes(&env.payload) else {
                        continue; // truncated or corrupted beyond parsing
                    };
                    for (i, &who) in expected.iter().enumerate() {
                        // A candidate counts only if it claims the right
                        // sender AND cryptographically recovers to them —
                        // corruption and tampering both fail here.
                        if env.from == who
                            && seen[reader][i].is_none()
                            && recover_address(digest, &sig) == Ok(who)
                        {
                            seen[reader][i] = Some(sig);
                        }
                    }
                }
            }
            if complete(&seen) {
                break;
            }
            if round + 1 < MAX_SIGN_ROUNDS {
                self.net.advance_time(SIGN_ROUND_SECS);
            }
        }
        if !complete(&seen) {
            return Ok(false); // abort: missing/invalid signatures by the deadline
        }

        // Each participant's assembled copy passes full verification
        // (the off-chain mirror of deployVerifiedInstance's checks).
        for assembled in seen {
            let copy = SignedCopy {
                bytecode: self.offchain_bytecode.clone(),
                signatures: assembled.into_iter().flatten().collect(),
            };
            if copy.verify(&expected).is_err() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The fully-signed copy (valid only when deploy/sign succeeded).
    pub fn signed_copy(&self) -> SignedCopy {
        SignedCopy::create(
            self.offchain_bytecode.clone(),
            &[&self.alice.wallet.key, &self.bob.wallet.key],
        )
    }

    /// Stage 3 (first half) — deposits, each retried up to the T1
    /// deadline. Returns the participants whose deposit landed.
    pub fn deposits(&mut self) -> (bool, bool) {
        let mut made = [false, false];
        let onchain = self.onchain_addr.expect("deployed");
        for (i, p) in [self.alice.clone(), self.bob.clone()]
            .into_iter()
            .enumerate()
        {
            if matches!(p.strategy, Strategy::NoShow) {
                continue;
            }
            let data = self.onchain_abi.deposit();
            made[i] = matches!(
                self.send_with_retry(
                    Stage::SubmitChallenge,
                    "deposit",
                    &p.wallet,
                    Some(onchain),
                    ether(1),
                    data,
                    300_000,
                    Some(self.timeline.t1),
                ),
                TxAttempt::Landed(r) if r.success
            );
        }
        (made[0], made[1])
    }

    /// Refund path when deposits were incomplete (Table I rules 2–3).
    /// Round-two refunds must land inside the (T1, T2) window; a refund
    /// that misses it leaves the wei in the contract (the depositor is
    /// still no worse off than deposit-minus-gas).
    pub fn refund_incomplete(&mut self, alice_deposited: bool, bob_deposited: bool) {
        let onchain = self.onchain_addr.expect("deployed");
        // Move into (T1, T2).
        self.advance_past(self.timeline.t1);
        for (p, deposited) in [
            (self.alice.clone(), alice_deposited),
            (self.bob.clone(), bob_deposited),
        ] {
            if deposited {
                let data = self.onchain_abi.refund_round_two();
                self.send_with_retry(
                    Stage::SubmitChallenge,
                    "refundRoundTwo",
                    &p.wallet,
                    Some(onchain),
                    U256::ZERO,
                    data,
                    300_000,
                    Some(self.timeline.t2),
                );
            }
        }
    }

    fn advance_past(&mut self, t: u64) {
        let now = self.net.now();
        if now <= t {
            self.net.advance_time(t - now + 60);
        }
    }

    /// Runs the complete game and produces the report.
    pub fn run(mut self) -> Result<(BettingGame, ProtocolReport), ProtocolError> {
        let winner_is_bob = self.config.secrets.winner_is_bob();

        // Stage 2.
        if !self.deploy_and_sign()? {
            let report = self.build_report(Outcome::AbortedAtSigning, false, winner_is_bob);
            return Ok((self, report));
        }

        // Stage 3: deposits.
        let (a_dep, b_dep) = self.deposits();
        if !(a_dep && b_dep) {
            self.refund_incomplete(a_dep, b_dep);
            let report = self.build_report(Outcome::Refunded, false, winner_is_bob);
            return Ok((self, report));
        }

        // Off-chain execution: both parties privately evaluate reveal().
        // (Represented by the native reference computation — no chain
        // interaction, which is exactly the point.)
        let loser = if winner_is_bob {
            self.alice.clone()
        } else {
            self.bob.clone()
        };
        let winner = if winner_is_bob {
            self.bob.clone()
        } else {
            self.alice.clone()
        };

        // Move into (T2, T3).
        self.advance_past(self.timeline.t2);

        if !loser.strategy.disputes_result() {
            // Honest loser concedes — but reassign only counts if it
            // lands inside (T2, T3). A missed window (injected delays)
            // degrades to the dispute path below.
            let onchain = self.onchain_addr.expect("deployed");
            let data = self.onchain_abi.reassign();
            match self.send_with_retry(
                Stage::SubmitChallenge,
                "reassign",
                &loser.wallet,
                Some(onchain),
                U256::ZERO,
                data,
                300_000,
                Some(self.timeline.t3),
            ) {
                TxAttempt::Landed(r) if r.success => {
                    let report = self.build_report(Outcome::SettledHonestly, false, winner_is_bob);
                    return Ok((self, report));
                }
                TxAttempt::Rejected(e) => {
                    return Err(ProtocolError::TxFailed(format!("reassign: {e}")));
                }
                // A reverted reassign (e.g. a mining delay pushed the
                // block past T3) or a missed deadline: fall through to
                // the dispute path — the winner can always enforce.
                TxAttempt::Landed(_) | TxAttempt::DeadlineMissed => {}
            }
        }

        // Stage 4: dispute/resolve after T3. The window is unbounded, so
        // with a finite fault budget these sends always land eventually.
        self.advance_past(self.timeline.t3);
        let onchain = self.onchain_addr.expect("deployed");

        if matches!(loser.strategy, Strategy::ForgingLoser) {
            // The dishonest loser tries a forged bytecode first: a copy
            // whose baked-in secrets favour them, signed only by
            // themselves (they cannot produce the winner's signature).
            let mut forged = self.offchain_bytecode.clone();
            let last = forged.len() - 1;
            forged[last] ^= 0x01;
            let own_sig = sign_bytecode(&loser.wallet.key, &forged);
            let data = self
                .onchain_abi
                .deploy_verified_instance(&forged, &own_sig, &own_sig);
            if let TxAttempt::Landed(r) = self.send_with_retry(
                Stage::DisputeResolve,
                "deployVerifiedInstance (forged)",
                &loser.wallet,
                Some(onchain),
                U256::ZERO,
                data,
                8_000_000,
                None,
            ) {
                assert!(
                    !r.success,
                    "forged bytecode must fail on-chain signature verification"
                );
            }
        }

        // The honest winner submits the true signed copy.
        let copy = self.signed_copy();
        self.offchain_bytes_revealed = copy.bytecode.len();
        let data = self.onchain_abi.deploy_verified_instance(
            &copy.bytecode,
            &copy.signatures[0],
            &copy.signatures[1],
        );
        match self.send_with_retry(
            Stage::DisputeResolve,
            "deployVerifiedInstance",
            &winner.wallet,
            Some(onchain),
            U256::ZERO,
            data,
            8_000_000,
            None,
        ) {
            TxAttempt::Landed(r) if r.success => {}
            _ => return Err(ProtocolError::TxFailed("deployVerifiedInstance".into())),
        }

        // Read deployedAddr from the on-chain contract's storage.
        let instance = Address::from_u256(
            self.net
                .storage_at(onchain, U256::from_u64(DEPLOYED_ADDR_SLOT)),
        );
        if instance.is_zero() {
            return Err(ProtocolError::NoVerifiedInstance);
        }

        // Anyone certified can now trigger the miner-enforced resolution.
        let data = self.offchain_abi.return_dispute_resolution(onchain);
        match self.send_with_retry(
            Stage::DisputeResolve,
            "returnDisputeResolution",
            &winner.wallet,
            Some(instance),
            U256::ZERO,
            data,
            8_000_000,
            None,
        ) {
            TxAttempt::Landed(r) if r.success => {}
            _ => return Err(ProtocolError::TxFailed("returnDisputeResolution".into())),
        }

        let report = self.build_report(Outcome::SettledByDispute, true, winner_is_bob);
        Ok((self, report))
    }

    fn build_report(&self, outcome: Outcome, dispute: bool, winner_is_bob: bool) -> ProtocolReport {
        ProtocolReport {
            txs: self.txs.clone(),
            outcome,
            dispute,
            winner_is_bob,
            offchain_bytes_revealed: self.offchain_bytes_revealed,
            offchain_messages: self.whisper.message_count(),
        }
    }
}
