//! The four-stage hybrid on/off-chain protocol engine (Fig. 2).
//!
//! Drives a complete betting game between two participants on the chain
//! simulator:
//!
//! 1. **Split/generate** — compile the on/off-chain pair; build the
//!    off-chain initcode with the private bet baked in.
//! 2. **Deploy/sign** — deploy the on-chain contract; exchange
//!    signatures over `keccak256(offchain bytecode)` via Whisper; each
//!    honest participant verifies the full signed copy *before* any
//!    deposit (Byzantine signers are caught here and the game aborts).
//! 3. **Submit/challenge** — deposits; off-chain evaluation of
//!    `reveal()`; the honest loser concedes via `reassign()`.
//! 4. **Dispute/resolve** — if the loser stalls past T3, the winner
//!    submits the signed copy to `deployVerifiedInstance`, the verified
//!    instance is CREATEd on-chain, and `returnDisputeResolution` makes
//!    miners recompute `reveal()` and enforce the transfer.

use crate::participant::{Participant, Strategy};
use crate::signedcopy::{sign_bytecode, SignedCopy};
use crate::whisper::Whisper;
use sc_chain::{Receipt, Testnet, Wallet};
use sc_contracts::{BetSecrets, OffChainContract, OnChainContract, Timeline, DEPLOYED_ADDR_SLOT};
use sc_primitives::{ether, Address, U256};
use std::fmt;

/// Whisper topic used to exchange signatures.
pub const SIGNATURE_TOPIC: &str = "betting/signed-copy";

/// Protocol stages (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Classify functions, generate the pair, build off-chain initcode.
    SplitGenerate,
    /// Deploy the on-chain contract; exchange and verify signed copies.
    DeploySign,
    /// Deposits, off-chain execution, voluntary settlement.
    SubmitChallenge,
    /// Signed-copy submission and miner-enforced resolution.
    DisputeResolve,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::SplitGenerate => "split/generate",
            Stage::DeploySign => "deploy/sign",
            Stage::SubmitChallenge => "submit/challenge",
            Stage::DisputeResolve => "dispute/resolve",
        };
        write!(f, "{s}")
    }
}

/// One on-chain transaction made by the protocol.
#[derive(Debug, Clone)]
pub struct TxRecord {
    /// Stage it belongs to.
    pub stage: Stage,
    /// What it was (e.g. `"deployVerifiedInstance"`).
    pub label: String,
    /// Who sent it.
    pub sender: Address,
    /// Gas charged.
    pub gas_used: u64,
    /// Whether it succeeded.
    pub success: bool,
}

/// How the game ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Aborted during deploy/sign (bad or missing signatures); no funds
    /// were ever at risk.
    AbortedAtSigning,
    /// Dissolved via refunds (a participant never deposited).
    Refunded,
    /// The loser conceded; settled without revealing anything.
    SettledHonestly,
    /// Settled through the dispute/resolve stage.
    SettledByDispute,
}

/// Full record of one protocol run.
#[derive(Debug, Clone)]
pub struct ProtocolReport {
    /// Every on-chain transaction, in order.
    pub txs: Vec<TxRecord>,
    /// The game's outcome.
    pub outcome: Outcome,
    /// True iff the dispute path ran.
    pub dispute: bool,
    /// Result of the off-chain computation (true → Bob wins).
    pub winner_is_bob: bool,
    /// Bytes of off-chain contract code that became publicly visible
    /// on-chain (0 on the honest path; the privacy metric of Fig. 1).
    pub offchain_bytes_revealed: usize,
    /// Off-chain messages exchanged (Whisper traffic).
    pub offchain_messages: usize,
}

impl ProtocolReport {
    /// Total gas across all transactions (miner-executed work).
    pub fn total_gas(&self) -> u64 {
        self.txs.iter().map(|t| t.gas_used).sum()
    }

    /// Gas attributable to one stage.
    pub fn stage_gas(&self, stage: Stage) -> u64 {
        self.txs
            .iter()
            .filter(|t| t.stage == stage)
            .map(|t| t.gas_used)
            .sum()
    }

    /// Gas of the first successful transaction with this label.
    pub fn gas_of(&self, label: &str) -> Option<u64> {
        self.txs
            .iter()
            .find(|t| t.label == label && t.success)
            .map(|t| t.gas_used)
    }
}

/// Protocol-level failures (distinct from failed-but-expected txs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A transaction that must succeed was rejected or reverted.
    TxFailed(String),
    /// The verified instance address was not recorded on-chain.
    NoVerifiedInstance,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::TxFailed(l) => write!(f, "required transaction failed: {l}"),
            ProtocolError::NoVerifiedInstance => write!(f, "deployedAddr not set"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Configuration of one betting game.
#[derive(Clone, Debug)]
pub struct GameConfig {
    /// Phase length in seconds between T0→T1→T2→T3.
    pub phase_seconds: u64,
    /// The private bet.
    pub secrets: BetSecrets,
}

impl Default for GameConfig {
    fn default() -> Self {
        GameConfig {
            phase_seconds: 3600,
            secrets: BetSecrets {
                secret_a: U256::from_u64(0xa11ce),
                secret_b: U256::from_u64(0xb0b),
                weight: 64,
            },
        }
    }
}

/// The protocol engine for one two-party betting game.
pub struct BettingGame {
    /// The chain.
    pub net: Testnet,
    /// The off-chain message bus.
    pub whisper: Whisper,
    /// Compiled on-chain contract + ABI.
    pub onchain_abi: OnChainContract,
    /// Compiled off-chain contract + ABI.
    pub offchain_abi: OffChainContract,
    /// Participant 0.
    pub alice: Participant,
    /// Participant 1.
    pub bob: Participant,
    /// The game's windows.
    pub timeline: Timeline,
    config: GameConfig,
    /// Address of the deployed on-chain contract (after deploy/sign).
    pub onchain_addr: Option<Address>,
    /// The agreed off-chain initcode.
    pub offchain_bytecode: Vec<u8>,
    txs: Vec<TxRecord>,
    offchain_bytes_revealed: usize,
}

impl BettingGame {
    /// Stage 1 — split/generate: sets up the chain, compiles both
    /// contracts and builds the off-chain initcode.
    pub fn new(alice: Participant, bob: Participant, config: GameConfig) -> BettingGame {
        let mut net = Testnet::new();
        net.faucet(alice.wallet.address, ether(1000));
        net.faucet(bob.wallet.address, ether(1000));
        let timeline = Timeline::starting_at(net.now(), config.phase_seconds);
        let onchain_abi = OnChainContract::new();
        let offchain_abi = OffChainContract::new();
        let offchain_bytecode =
            offchain_abi.initcode(alice.wallet.address, bob.wallet.address, config.secrets);
        BettingGame {
            net,
            whisper: Whisper::new(),
            onchain_abi,
            offchain_abi,
            alice,
            bob,
            timeline,
            config,
            onchain_addr: None,
            offchain_bytecode,
            txs: Vec::new(),
            offchain_bytes_revealed: 0,
        }
    }

    fn record(&mut self, stage: Stage, label: &str, sender: Address, receipt: &Receipt) {
        self.txs.push(TxRecord {
            stage,
            label: label.to_string(),
            sender,
            gas_used: receipt.gas_used,
            success: receipt.success,
        });
    }

    #[allow(clippy::too_many_arguments)] // mirrors the tx fields one-to-one
    fn execute(
        &mut self,
        stage: Stage,
        label: &str,
        wallet: &Wallet,
        to: Address,
        value: U256,
        data: Vec<u8>,
        gas: u64,
    ) -> Receipt {
        let receipt = self
            .net
            .execute(wallet, to, value, data, gas)
            .expect("tx admission");
        self.record(stage, label, wallet.address, &receipt);
        receipt
    }

    /// Stage 2 — deploy/sign. Returns `false` when an honest participant
    /// aborts because the signature exchange failed.
    pub fn deploy_and_sign(&mut self) -> Result<bool, ProtocolError> {
        // Alice deploys the on-chain contract.
        let initcode = self.onchain_abi.initcode(
            self.alice.wallet.address,
            self.bob.wallet.address,
            self.timeline,
        );
        let wallet = self.alice.wallet.clone();
        let receipt = self
            .net
            .deploy(&wallet, initcode, U256::ZERO, 5_000_000)
            .expect("deploy admission");
        self.record(
            Stage::DeploySign,
            "deploy onChain",
            wallet.address,
            &receipt,
        );
        if !receipt.success {
            return Err(ProtocolError::TxFailed("deploy onChain".into()));
        }
        self.onchain_addr = receipt.contract_address;

        // Signature exchange over Whisper.
        for p in [self.alice.clone(), self.bob.clone()] {
            match p.strategy {
                Strategy::RefusesToSign => {} // posts nothing
                Strategy::SignsTampered => {
                    let mut tampered = self.offchain_bytecode.clone();
                    // Flip the last byte of the baked-in secret.
                    let last = tampered.len() - 1;
                    tampered[last] ^= 0xff;
                    let sig = sign_bytecode(&p.wallet.key, &tampered);
                    self.whisper
                        .post(p.wallet.address, SIGNATURE_TOPIC, sig.to_bytes().to_vec());
                }
                _ => {
                    let sig = sign_bytecode(&p.wallet.key, &self.offchain_bytecode);
                    self.whisper
                        .post(p.wallet.address, SIGNATURE_TOPIC, sig.to_bytes().to_vec());
                }
            }
        }

        // Each honest participant assembles and verifies the signed copy.
        let expected = [self.alice.wallet.address, self.bob.wallet.address];
        for me in [self.alice.wallet.address, self.bob.wallet.address] {
            let envelopes = self.whisper.poll(me, SIGNATURE_TOPIC);
            // Order signatures by participant index.
            let mut sigs = vec![None, None];
            for env in envelopes {
                if let Ok(sig) = sc_crypto::Signature::from_bytes(&env.payload) {
                    if env.from == expected[0] {
                        sigs[0] = Some(sig);
                    } else if env.from == expected[1] {
                        sigs[1] = Some(sig);
                    }
                }
            }
            let Some(copy) = sigs
                .into_iter()
                .collect::<Option<Vec<_>>>()
                .map(|signatures| SignedCopy {
                    bytecode: self.offchain_bytecode.clone(),
                    signatures,
                })
            else {
                return Ok(false); // missing signature: abort before deposits
            };
            if copy.verify(&expected).is_err() {
                return Ok(false); // tampered signature detected off-chain
            }
        }
        Ok(true)
    }

    /// The fully-signed copy (valid only when deploy/sign succeeded).
    pub fn signed_copy(&self) -> SignedCopy {
        SignedCopy::create(
            self.offchain_bytecode.clone(),
            &[&self.alice.wallet.key, &self.bob.wallet.key],
        )
    }

    /// Stage 3 (first half) — deposits. Returns the participants that
    /// actually deposited.
    pub fn deposits(&mut self) -> (bool, bool) {
        let mut made = [false, false];
        let onchain = self.onchain_addr.expect("deployed");
        for (i, p) in [self.alice.clone(), self.bob.clone()]
            .into_iter()
            .enumerate()
        {
            if matches!(p.strategy, Strategy::NoShow) {
                continue;
            }
            let data = self.onchain_abi.deposit();
            let r = self.execute(
                Stage::SubmitChallenge,
                "deposit",
                &p.wallet,
                onchain,
                ether(1),
                data,
                300_000,
            );
            made[i] = r.success;
        }
        (made[0], made[1])
    }

    /// Refund path when deposits were incomplete (Table I rules 2–3).
    pub fn refund_incomplete(&mut self, alice_deposited: bool, bob_deposited: bool) {
        let onchain = self.onchain_addr.expect("deployed");
        // Move into (T1, T2).
        self.advance_past(self.timeline.t1);
        for (p, deposited) in [
            (self.alice.clone(), alice_deposited),
            (self.bob.clone(), bob_deposited),
        ] {
            if deposited {
                let data = self.onchain_abi.refund_round_two();
                let r = self.execute(
                    Stage::SubmitChallenge,
                    "refundRoundTwo",
                    &p.wallet,
                    onchain,
                    U256::ZERO,
                    data,
                    300_000,
                );
                debug_assert!(r.success);
            }
        }
    }

    fn advance_past(&mut self, t: u64) {
        let now = self.net.now();
        if now <= t {
            self.net.advance_time(t - now + 60);
        }
    }

    /// Runs the complete game and produces the report.
    pub fn run(mut self) -> Result<(BettingGame, ProtocolReport), ProtocolError> {
        let winner_is_bob = self.config.secrets.winner_is_bob();

        // Stage 2.
        if !self.deploy_and_sign()? {
            let report = self.build_report(Outcome::AbortedAtSigning, false, winner_is_bob);
            return Ok((self, report));
        }

        // Stage 3: deposits.
        let (a_dep, b_dep) = self.deposits();
        if !(a_dep && b_dep) {
            self.refund_incomplete(a_dep, b_dep);
            let report = self.build_report(Outcome::Refunded, false, winner_is_bob);
            return Ok((self, report));
        }

        // Off-chain execution: both parties privately evaluate reveal().
        // (Represented by the native reference computation — no chain
        // interaction, which is exactly the point.)
        let loser = if winner_is_bob {
            self.alice.clone()
        } else {
            self.bob.clone()
        };
        let winner = if winner_is_bob {
            self.bob.clone()
        } else {
            self.alice.clone()
        };

        // Move into (T2, T3).
        self.advance_past(self.timeline.t2);

        if !loser.strategy.disputes_result() {
            // Honest loser concedes.
            let onchain = self.onchain_addr.expect("deployed");
            let data = self.onchain_abi.reassign();
            let r = self.execute(
                Stage::SubmitChallenge,
                "reassign",
                &loser.wallet,
                onchain,
                U256::ZERO,
                data,
                300_000,
            );
            if !r.success {
                return Err(ProtocolError::TxFailed("reassign".into()));
            }
            let report = self.build_report(Outcome::SettledHonestly, false, winner_is_bob);
            return Ok((self, report));
        }

        // Stage 4: dispute/resolve after T3.
        self.advance_past(self.timeline.t3);
        let onchain = self.onchain_addr.expect("deployed");

        if matches!(loser.strategy, Strategy::ForgingLoser) {
            // The dishonest loser tries a forged bytecode first: a copy
            // whose baked-in secrets favour them, signed only by
            // themselves (they cannot produce the winner's signature).
            let mut forged = self.offchain_bytecode.clone();
            let last = forged.len() - 1;
            forged[last] ^= 0x01;
            let own_sig = sign_bytecode(&loser.wallet.key, &forged);
            let data = self
                .onchain_abi
                .deploy_verified_instance(&forged, &own_sig, &own_sig);
            let r = self.execute(
                Stage::DisputeResolve,
                "deployVerifiedInstance (forged)",
                &loser.wallet,
                onchain,
                U256::ZERO,
                data,
                8_000_000,
            );
            assert!(
                !r.success,
                "forged bytecode must fail on-chain signature verification"
            );
        }

        // The honest winner submits the true signed copy.
        let copy = self.signed_copy();
        self.offchain_bytes_revealed = copy.bytecode.len();
        let data = self.onchain_abi.deploy_verified_instance(
            &copy.bytecode,
            &copy.signatures[0],
            &copy.signatures[1],
        );
        let r = self.execute(
            Stage::DisputeResolve,
            "deployVerifiedInstance",
            &winner.wallet,
            onchain,
            U256::ZERO,
            data,
            8_000_000,
        );
        if !r.success {
            return Err(ProtocolError::TxFailed("deployVerifiedInstance".into()));
        }

        // Read deployedAddr from the on-chain contract's storage.
        let instance = Address::from_u256(
            self.net
                .storage_at(onchain, U256::from_u64(DEPLOYED_ADDR_SLOT)),
        );
        if instance.is_zero() {
            return Err(ProtocolError::NoVerifiedInstance);
        }

        // Anyone certified can now trigger the miner-enforced resolution.
        let data = self.offchain_abi.return_dispute_resolution(onchain);
        let r = self.execute(
            Stage::DisputeResolve,
            "returnDisputeResolution",
            &winner.wallet,
            instance,
            U256::ZERO,
            data,
            8_000_000,
        );
        if !r.success {
            return Err(ProtocolError::TxFailed("returnDisputeResolution".into()));
        }

        let report = self.build_report(Outcome::SettledByDispute, true, winner_is_bob);
        Ok((self, report))
    }

    fn build_report(&self, outcome: Outcome, dispute: bool, winner_is_bob: bool) -> ProtocolReport {
        ProtocolReport {
            txs: self.txs.clone(),
            outcome,
            dispute,
            winner_is_bob,
            offchain_bytes_revealed: self.offchain_bytes_revealed,
            offchain_messages: self.whisper.message_count(),
        }
    }
}
