//! Cross-crate invariants: properties that tie two or more layers of the
//! stack together (native crypto vs in-EVM crypto, compiler determinism
//! across processes of the protocol, gas-schedule pins, splitter vs the
//! shipped contract pair).

use onoffchain::chain::Testnet;
use onoffchain::contracts::{BetSecrets, OffChainContract, OnChainContract, Timeline};
use onoffchain::core::{bytecode_hash, sign_bytecode, split, SignedCopy};
use onoffchain::crypto::ecdsa::PrivateKey;
use onoffchain::lang::{compile, parse};
use onoffchain::primitives::abi::Value;
use onoffchain::primitives::{ether, U256};

#[test]
fn in_evm_keccak_agrees_with_native_on_the_real_bytecode() {
    // The integrity check hinges on keccak256(bytecode) being identical
    // off-chain (Rust) and on-chain (EVM opcode). Check with the actual
    // off-chain contract initcode.
    let off = OffChainContract::new();
    let alice = PrivateKey::from_seed("alice");
    let bob = PrivateKey::from_seed("bob");
    let bytecode = off.initcode(
        alice.address(),
        bob.address(),
        BetSecrets {
            secret_a: U256::ONE,
            secret_b: U256::from_u64(2),
            weight: 3,
        },
    );
    let native = bytecode_hash(&bytecode);

    // On-chain: a throwaway contract hashing its bytes argument.
    let hasher = compile(
        "contract h { function f(bytes memory d) public returns (bytes32) { return keccak256(d); } }",
        "h",
    )
    .unwrap();
    let mut net = Testnet::new();
    let w = net.funded_wallet("w", ether(10));
    let addr = net
        .deploy(&w, hasher.initcode(&[]).unwrap(), U256::ZERO, 2_000_000)
        .unwrap()
        .contract_address
        .unwrap();
    let out = net.call(
        w.address,
        addr,
        hasher.calldata("f", &[Value::Bytes(bytecode)]).unwrap(),
    );
    assert!(!out.reverted);
    assert_eq!(out.output, native.as_bytes());
}

#[test]
fn in_evm_ecrecover_agrees_with_native_signature() {
    let key = PrivateKey::from_seed("signer");
    let payload = vec![0x42u8; 777];
    let sig = sign_bytecode(&key, &payload);
    // Native recovery.
    let native = onoffchain::crypto::recover_address(bytecode_hash(&payload), &sig).unwrap();
    assert_eq!(native, key.address());

    // In-EVM recovery through a compiled contract.
    let src = r#"
        contract r {
            function f(bytes memory d, uint8 v, bytes32 rr, bytes32 ss) public returns (address) {
                return ecrecover(keccak256(d), v, rr, ss);
            }
        }
    "#;
    let c = compile(src, "r").unwrap();
    let mut net = Testnet::new();
    let w = net.funded_wallet("w", ether(10));
    let addr = net
        .deploy(&w, c.initcode(&[]).unwrap(), U256::ZERO, 2_000_000)
        .unwrap()
        .contract_address
        .unwrap();
    let out = net.call(
        w.address,
        addr,
        c.calldata(
            "f",
            &[
                Value::Bytes(payload),
                Value::Uint(U256::from_u64(sig.v as u64)),
                Value::Bytes32(sig.r),
                Value::Bytes32(sig.s),
            ],
        )
        .unwrap(),
    );
    assert!(!out.reverted);
    assert_eq!(&out.output[12..], key.address().as_bytes());
}

#[test]
fn both_participants_compile_identical_bytecode() {
    // The paper: "all the participants should use the same version of
    // compiler for the purpose of getting same bytecode." Two fully
    // independent compilations (as Alice and Bob would run) must agree.
    let secrets = BetSecrets {
        secret_a: U256::from_u64(10),
        secret_b: U256::from_u64(20),
        weight: 99,
    };
    let alice_addr = PrivateKey::from_seed("alice").address();
    let bob_addr = PrivateKey::from_seed("bob").address();
    let alice_compiles = OffChainContract::new().initcode(alice_addr, bob_addr, secrets);
    let bob_compiles = OffChainContract::new().initcode(alice_addr, bob_addr, secrets);
    assert_eq!(alice_compiles, bob_compiles);
    // And both produce signatures the other accepts.
    let copy = SignedCopy::create(
        alice_compiles,
        &[
            &PrivateKey::from_seed("alice"),
            &PrivateKey::from_seed("bob"),
        ],
    );
    copy.verify(&[alice_addr, bob_addr]).unwrap();
}

#[test]
fn gas_schedule_pins() {
    // Absolute gas pins that EXPERIMENTS.md quotes; failing this test
    // means the documented numbers are stale.
    let mut net = Testnet::new();
    let w = net.funded_wallet("w", ether(10));
    let r = net
        .execute(
            &w,
            PrivateKey::from_seed("x").address(),
            ether(1),
            vec![],
            50_000,
        )
        .unwrap();
    assert_eq!(r.gas_used, 21_000, "plain transfer is exactly Gtransaction");
}

#[test]
fn splitter_plan_matches_shipped_pair() {
    // The split of the monolithic contract must be consistent with the
    // hand-written pair the crate ships (the paper's Algorithms 2–3).
    let program = parse(onoffchain::contracts::MONOLITHIC_SRC).unwrap();
    let plan = split(&program.contracts[0]);

    let onchain = OnChainContract::new();
    let offchain = OffChainContract::new();
    // Every light/public function of the plan is dispatchable in the
    // shipped on-chain contract.
    for name in ["deposit", "refundRoundOne", "refundRoundTwo"] {
        assert!(plan.onchain_functions.iter().any(|f| f.contains(name)));
        assert!(
            onchain.compiled.analyzed.selector_of(name).is_some(),
            "{name} must be dispatchable on-chain"
        );
    }
    // The heavy/private reveal is NOT dispatchable anywhere on-chain; it
    // exists only inside the off-chain contract (inlined, private).
    assert!(onchain.compiled.analyzed.selector_of("reveal").is_none());
    assert!(offchain.compiled.analyzed.selector_of("reveal").is_none());
    // The padding functions exist exactly where the plan says.
    for name in plan.onchain_padding {
        assert!(
            onchain.compiled.analyzed.selector_of(name).is_some()
                || name == "enforceDisputeResolution",
            "on-chain padding {name}"
        );
    }
    for name in plan.offchain_padding {
        assert!(
            offchain.compiled.analyzed.selector_of(name).is_some(),
            "off-chain padding {name}"
        );
    }
}

#[test]
fn whole_game_is_reproducible() {
    // Two runs of the same configuration produce identical gas ledgers —
    // the determinism claim of DESIGN.md.
    use onoffchain::core::{BettingGame, GameConfig, Participant, Strategy};
    let run = || {
        let game = BettingGame::new(
            Participant::with_strategy("alice", Strategy::SilentLoser),
            Participant::honest("bob"),
            GameConfig::default(),
        );
        let (_g, report) = game.run().unwrap();
        report
            .txs
            .iter()
            .map(|t| (t.label.clone(), t.gas_used, t.success))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn onchain_contract_size_is_reported() {
    // Deployment footprint of both sides of the split (documentation
    // numbers; keep within sane bounds so docs stay truthful).
    let on = OnChainContract::new();
    let off = OffChainContract::new();
    assert!(
        on.compiled.runtime.len() > off.compiled.runtime.len(),
        "the on-chain side (with the padded machinery) is the bigger artifact"
    );
    assert!(on.compiled.runtime.len() < 4096);
    assert!(off.compiled.runtime.len() < 1024);
}

#[test]
fn timeline_arithmetic() {
    let tl = Timeline::starting_at(1_000, 100);
    assert_eq!((tl.t1, tl.t2, tl.t3), (1_100, 1_200, 1_300));
}
