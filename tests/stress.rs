//! Stress and robustness: long chains, many games on one chain instance,
//! multi-transaction blocks, and adversarial calldata fuzzing.

use onoffchain::chain::{Testnet, Transaction, Wallet};
use onoffchain::contracts::{BetSecrets, OnChainContract, Timeline};
use onoffchain::core::SignedCopy;
use onoffchain::primitives::{ether, Address, U256};

#[test]
fn fifty_sequential_games_on_one_chain() {
    // One chain instance hosts 50 consecutive betting games; every game
    // settles by dispute; state stays consistent throughout.
    let mut net = Testnet::new();
    let alice = net.funded_wallet("alice", ether(10_000));
    let bob = net.funded_wallet("bob", ether(10_000));
    let on = OnChainContract::new();
    let off = onoffchain::contracts::OffChainContract::new();

    for round in 0..50u64 {
        let tl = Timeline::starting_at(net.now(), 600);
        let onchain = net
            .deploy(
                &alice,
                on.initcode(alice.address, bob.address, tl),
                U256::ZERO,
                5_000_000,
            )
            .unwrap()
            .contract_address
            .unwrap_or_else(|| panic!("round {round}: deploy"));
        for w in [&alice, &bob] {
            let r = net
                .execute(w, onchain, ether(1), on.deposit(), 300_000)
                .unwrap();
            assert!(r.success, "round {round}: deposit");
        }
        let mut secrets = BetSecrets {
            secret_a: U256::from_u64(round),
            secret_b: U256::from_u64(round * 31 + 7),
            weight: 8,
        };
        while !secrets.winner_is_bob() {
            secrets.secret_a = secrets.secret_a.wrapping_add(U256::ONE);
        }
        let bytecode = off.initcode(alice.address, bob.address, secrets);
        let copy = SignedCopy::create(bytecode, &[&alice.key, &bob.key]);

        let now = net.now();
        net.advance_time(tl.t3 - now + 60);
        let data =
            on.deploy_verified_instance(&copy.bytecode, &copy.signatures[0], &copy.signatures[1]);
        let r = net
            .execute(&bob, onchain, U256::ZERO, data, 7_900_000)
            .unwrap();
        assert!(r.success, "round {round}: dispute deploy {:?}", r.failure);
        let instance = Address::from_u256(net.storage_at(
            onchain,
            U256::from_u64(onoffchain::contracts::DEPLOYED_ADDR_SLOT),
        ));
        let r = net
            .execute(
                &bob,
                instance,
                U256::ZERO,
                off.return_dispute_resolution(onchain),
                7_900_000,
            )
            .unwrap();
        assert!(r.success, "round {round}: resolution");
        assert_eq!(
            net.balance_of(onchain),
            U256::ZERO,
            "round {round}: drained"
        );
    }
    // 50 games × (deploy + 2 deposits + 2 dispute txs) = 250 blocks + genesis.
    assert_eq!(net.head().number, 250);
    // Bob won every pot; Alice paid every pot. Gas went to the coinbase.
    assert!(net.balance_of(bob.address) > ether(10_040));
    assert!(net.balance_of(alice.address) < ether(9_960));
    let total = net
        .balance_of(alice.address)
        .wrapping_add(net.balance_of(bob.address))
        .wrapping_add(net.balance_of(net.config().coinbase));
    assert_eq!(total, ether(20_000), "wei conserved across 250 blocks");
}

#[test]
fn one_block_with_many_interacting_transactions() {
    // Queue deploy-less txs from 8 senders in a single block and verify
    // ordering, nonces, and balances.
    let mut net = Testnet::new();
    let wallets: Vec<Wallet> = (0..8)
        .map(|i| net.funded_wallet(&format!("s{i}"), ether(10)))
        .collect();
    let sink = Address([0x99; 20]);
    // Each sender queues 5 transfers of 0.1 ether before any block is
    // mined.
    for w in &wallets {
        for k in 0..5u64 {
            let tx = Transaction {
                nonce: k,
                gas_price: onoffchain::primitives::gwei(1),
                gas_limit: 21_000,
                to: Some(sink),
                value: ether(1) / U256::from_u64(10),
                data: vec![],
            };
            net.submit(tx.sign(&w.key)).expect("queued");
        }
    }
    let block = net.mine_block();
    assert_eq!(block.transactions.len(), 40);
    assert_eq!(block.gas_used, 40 * 21_000);
    assert_eq!(net.balance_of(sink), ether(4));
    for w in &wallets {
        assert_eq!(net.nonce_of(w.address), 5);
    }
}

#[test]
fn random_calldata_never_breaks_the_contract() {
    // Adversarial fuzz: throw structured garbage at the on-chain betting
    // contract. Every call must cleanly succeed or revert — storage
    // stays coherent, no deposits are mintable from garbage.
    let mut net = Testnet::new();
    let alice = net.funded_wallet("alice", ether(100));
    let bob = net.funded_wallet("bob", ether(100));
    let attacker = net.funded_wallet("mallory", ether(100));
    let on = OnChainContract::new();
    let tl = Timeline::starting_at(net.now(), 3600);
    let onchain = net
        .deploy(
            &alice,
            on.initcode(alice.address, bob.address, tl),
            U256::ZERO,
            5_000_000,
        )
        .unwrap()
        .contract_address
        .unwrap();
    for w in [&alice, &bob] {
        assert!(
            net.execute(w, onchain, ether(1), on.deposit(), 300_000)
                .unwrap()
                .success
        );
    }

    // Deterministic pseudo-random calldata: real selectors with mangled
    // args, plus pure noise.
    let selectors: Vec<[u8; 4]> = [
        "deposit",
        "refundRoundOne",
        "refundRoundTwo",
        "reassign",
        "deployVerifiedInstance",
        "enforceDisputeResolution",
    ]
    .iter()
    .map(|f| on.compiled.analyzed.selector_of(f).unwrap())
    .collect();
    let mut seed = 0x1234_5678_9abc_def0u64;
    let mut rand_byte = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as u8
    };
    for i in 0..120 {
        let mut data = Vec::new();
        if i % 3 != 0 {
            data.extend_from_slice(&selectors[i % selectors.len()]);
        }
        let arg_len = (i * 13) % 300;
        for _ in 0..arg_len {
            data.push(rand_byte());
        }
        let value = if i % 7 == 0 { ether(1) } else { U256::ZERO };
        let r = net
            .execute(&attacker, onchain, value, data, 7_000_000)
            .expect("admitted");
        // Nothing an outsider sends may move funds out of the contract.
        assert_eq!(
            net.balance_of(onchain),
            ether(2),
            "iteration {i}: deposits must be untouchable"
        );
        let _ = r;
    }
    // The legitimate flow still works afterwards.
    net.advance_time(2 * 3600 + 60);
    let r = net
        .execute(&alice, onchain, U256::ZERO, on.reassign(), 300_000)
        .unwrap();
    assert!(
        r.success,
        "contract still functional after the fuzz barrage"
    );
}

#[test]
fn long_chain_blockhash_window_holds() {
    let mut net = Testnet::new();
    for _ in 0..300 {
        net.mine_block();
    }
    assert_eq!(net.head().number, 300);
    // Hash linkage intact across the whole chain.
    for n in 1..=300 {
        let b = net.block(n).unwrap();
        assert_eq!(b.parent_hash, net.block(n - 1).unwrap().hash);
    }
}

/// The pooled-mining scale target: 1024 heterogeneous sessions
/// multiplexed over one shared chain with the fee-market mempool
/// packing blocks. Expensive (minutes in release), so it is ignored in
/// the default run and exercised by the scheduled CI stress job:
/// `cargo test --release -- --ignored pooled_scale`.
#[test]
#[ignore = "scheduled stress job: minutes of wall clock at N = 1024"]
fn pooled_scale_1024_sessions_settle_and_share_blocks() {
    use onoffchain::core::{
        check_conservation, BettingSpec, ChallengeSpec, CrashPoint, SessionScheduler, SessionSpec,
        Strategy, SubmitStrategy, WatchStrategy,
    };
    use onoffchain::mempool::PoolConfig;

    let mut secrets = BetSecrets {
        secret_a: U256::from_u64(41),
        secret_b: U256::from_u64(42),
        weight: 16,
    };
    while !secrets.winner_is_bob() {
        secrets.secret_a = secrets.secret_a.wrapping_add(U256::ONE);
    }

    let specs: Vec<SessionSpec> = (0..1024u32)
        .map(|i| {
            let fault_seed = (i % 4 == 0).then_some(0x1024_0000_u64 + u64::from(i));
            let start_delay = u64::from(i % 128) * 30;
            match i % 10 {
                0 => SessionSpec::Betting(BettingSpec {
                    secrets,
                    fault_seed,
                    start_delay,
                    ..BettingSpec::default()
                }),
                1 => SessionSpec::Betting(BettingSpec {
                    alice: Strategy::SilentLoser,
                    secrets,
                    fault_seed,
                    start_delay,
                    ..BettingSpec::default()
                }),
                2 => SessionSpec::Betting(BettingSpec {
                    alice: Strategy::ForgingLoser,
                    secrets,
                    fault_seed,
                    start_delay,
                    ..BettingSpec::default()
                }),
                3 => SessionSpec::Betting(BettingSpec {
                    bob: Strategy::NoShow,
                    secrets,
                    fault_seed,
                    start_delay,
                    ..BettingSpec::default()
                }),
                4 => SessionSpec::Betting(BettingSpec {
                    bob: Strategy::RefusesToSign,
                    secrets,
                    fault_seed,
                    start_delay,
                    ..BettingSpec::default()
                }),
                5 => SessionSpec::Betting(BettingSpec {
                    alice: Strategy::SignsTampered,
                    secrets,
                    fault_seed,
                    start_delay,
                    ..BettingSpec::default()
                }),
                6 => SessionSpec::Challenge(ChallengeSpec {
                    secrets,
                    fault_seed,
                    start_delay,
                    ..ChallengeSpec::default()
                }),
                7 => SessionSpec::Challenge(ChallengeSpec {
                    secrets,
                    submit: SubmitStrategy::False,
                    fault_seed,
                    start_delay,
                    ..ChallengeSpec::default()
                }),
                8 => SessionSpec::Challenge(ChallengeSpec {
                    secrets,
                    submit: SubmitStrategy::False,
                    watch: WatchStrategy::Asleep,
                    fault_seed,
                    start_delay,
                    ..ChallengeSpec::default()
                }),
                _ => SessionSpec::Challenge(ChallengeSpec {
                    secrets,
                    crash: CrashPoint::BeforeSubmit,
                    fault_seed,
                    start_delay,
                    ..ChallengeSpec::default()
                }),
            }
        })
        .collect();

    let mut sched = SessionScheduler::new_pooled(specs, PoolConfig::default());
    let reports = sched.run();
    let stats = sched.stats();

    assert_eq!(reports.len(), 1024);
    for r in &reports {
        assert!(
            r.error.is_none() && r.outcome.is_some(),
            "session {} ({}): outcome {:?}, error {:?}",
            r.id,
            r.kind,
            r.outcome,
            r.error
        );
    }
    check_conservation(sched.net()).unwrap();
    assert!(
        stats.mean_txs_per_block() > 4.0,
        "pooled mining must pack shared blocks at scale: {} txs over {} blocks",
        stats.txs_mined,
        stats.blocks_mined
    );
}

/// The flat-state engine at full paper scale: a million funded accounts
/// (every 16th holding storage) built, folded, churned under the
/// pruning archive and snapshot-round-tripped. Expensive (a trie fold
/// over 10^6 accounts), so it is ignored in the default run and
/// exercised by the scheduled CI stress job:
/// `cargo test --release -- --ignored million_account`.
#[test]
#[ignore = "scheduled stress job: million-account state build, churn and snapshot"]
fn million_account_state_reads_flat_and_archives_bounded() {
    use onoffchain::chain::WorldState;
    use onoffchain::evm::Host;
    use std::time::Instant;

    // splitmix64 so the address set doesn't correlate with map layout.
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }
    fn acct(i: u64) -> Address {
        let mut a = [0u8; 20];
        a[..8].copy_from_slice(&mix(i).to_be_bytes());
        a[8..16].copy_from_slice(&mix(i ^ 0xabcd).to_be_bytes());
        Address(a)
    }
    fn populate(n: u64) -> WorldState {
        let mut s = WorldState::new();
        for i in 0..n {
            s.mint(acct(i), U256::from_u64(i + 1));
            if i % 16 == 0 {
                s.set_storage(acct(i), U256::from_u64(i % 4), U256::from_u64(i + 7));
            }
        }
        s.clear_tx_scratch();
        s
    }
    fn mean_read_ns(s: &WorldState, n: u64, reads: u64) -> f64 {
        let start = Instant::now();
        let mut sink = U256::ZERO;
        for r in 0..reads {
            sink = sink.wrapping_add(s.storage(acct(mix(r) % n), U256::from_u64(r % 4)));
        }
        let ns = start.elapsed().as_nanos() as f64;
        std::hint::black_box(sink);
        ns / reads as f64
    }

    const N: u64 = 1_000_000;
    let mut s = populate(N);
    s.enable_pruning(64);
    assert_eq!(s.account_count(), N as usize);

    // Flat reads must not scale with account count: the full-scale
    // state vs a 10k control, generous 3x bound (shared CI machines).
    let small = populate(10_000);
    let small_ns = mean_read_ns(&small, 10_000, 2_000_000);
    let big_ns = mean_read_ns(&s, N, 2_000_000);
    assert!(
        big_ns <= small_ns * 3.0,
        "reads scaled with state: {small_ns:.1}ns @ 10k -> {big_ns:.1}ns @ 1M"
    );

    // One full fold over the million accounts, then churn sealed blocks
    // with the archive armed: the archived node count at the end must
    // stay close to its level right after the window first fills.
    let root = s.state_root();
    s.commit_archive();
    let mut at_window_full = 0usize;
    for b in 0..256u64 {
        for w in 0..16u64 {
            s.set_storage(
                acct(mix(b * 16 + w) % 512),
                U256::from_u64(mix(b + w) % 64),
                U256::from_u64(b + w + 1),
            );
        }
        s.clear_tx_scratch();
        s.state_root();
        s.commit_archive();
        if b == 64 {
            at_window_full = s.archived_node_count();
        }
    }
    let at_end = s.archived_node_count();
    assert!(
        at_end <= at_window_full * 3 / 2,
        "archive leaked under churn: {at_window_full} nodes at window-full, {at_end} at end"
    );
    assert!(
        !s.archived_root_available(root),
        "the pre-churn root must have been pruned out of the 64-root window"
    );

    // Snapshot round-trip at full scale: the flat content alone must
    // reproduce the exact commitment.
    let churned_root = s.state_root();
    let blob = s.export_snapshot();
    let mut imported = WorldState::import_snapshot(&blob).expect("canonical million-account blob");
    assert_eq!(imported.account_count(), N as usize);
    assert_eq!(
        imported.state_root(),
        churned_root,
        "imported fold lands on the identical root"
    );
}
