//! E4 — Table I of the paper as an executable scenario: each numbered
//! betting rule driven manually against the chain simulator, with the
//! timing windows enforced by `block.timestamp`.

use onoffchain::chain::{Testnet, Wallet};
use onoffchain::contracts::{
    BetSecrets, OffChainContract, OnChainContract, Timeline, DEPLOYED_ADDR_SLOT,
};
use onoffchain::core::SignedCopy;
use onoffchain::evm::contract_address;
use onoffchain::primitives::{ether, Address, U256};

struct Scenario {
    net: Testnet,
    alice: Wallet,
    bob: Wallet,
    on: OnChainContract,
    off: OffChainContract,
    onchain: Address,
    copy: SignedCopy,
    tl: Timeline,
    secrets: BetSecrets,
}

/// Table I rule 1: before T0, deploy the on-chain contract and give both
/// participants a signed copy of the off-chain contract.
fn rule1_setup() -> Scenario {
    let mut net = Testnet::new();
    let alice = net.funded_wallet("alice", ether(1000));
    let bob = net.funded_wallet("bob", ether(1000));
    let tl = Timeline::starting_at(net.now(), 3600);
    let mut secrets = BetSecrets {
        secret_a: U256::from_u64(41),
        secret_b: U256::from_u64(42),
        weight: 32,
    };
    // Make Bob the winner so Alice is the loser throughout.
    while !secrets.winner_is_bob() {
        secrets.secret_a = secrets.secret_a.wrapping_add(U256::ONE);
    }

    let on = OnChainContract::new();
    let off = OffChainContract::new();
    let r = net
        .deploy(
            &alice,
            on.initcode(alice.address, bob.address, tl),
            U256::ZERO,
            5_000_000,
        )
        .unwrap();
    assert!(r.success, "rule 1: Alice deploys the on-chain contract");
    let onchain = r.contract_address.unwrap();

    let bytecode = off.initcode(alice.address, bob.address, secrets);
    let copy = SignedCopy::create(bytecode, &[&alice.key, &bob.key]);
    copy.verify(&[alice.address, bob.address])
        .expect("rule 1: both keep a verified signed copy");

    Scenario {
        net,
        alice,
        bob,
        on,
        off,
        onchain,
        copy,
        tl,
        secrets,
    }
}

#[test]
fn rule2_deposits_and_first_refund_window() {
    let mut s = rule1_setup();
    // Before T1 both can deposit exactly 1 ether …
    for w in [&s.alice, &s.bob] {
        let r = s
            .net
            .execute(w, s.onchain, ether(1), s.on.deposit(), 300_000)
            .unwrap();
        assert!(r.success, "rule 2: deposit before T1");
    }
    // … and can take the money back through refundRoundOne.
    let r = s
        .net
        .execute(
            &s.alice,
            s.onchain,
            U256::ZERO,
            s.on.refund_round_one(),
            300_000,
        )
        .unwrap();
    assert!(r.success, "rule 2: refund round one");
    assert_eq!(
        s.net.balance_of(s.onchain),
        ether(1),
        "only Bob's stake remains"
    );
    // A second refund for the same party fails (balance is zero).
    let r = s
        .net
        .execute(
            &s.alice,
            s.onchain,
            U256::ZERO,
            s.on.refund_round_one(),
            300_000,
        )
        .unwrap();
    assert!(!r.success, "double refund rejected");
}

#[test]
fn rule3_refund_round_two_when_amounts_not_met() {
    let mut s = rule1_setup();
    // Only Bob deposits.
    let r = s
        .net
        .execute(&s.bob, s.onchain, ether(1), s.on.deposit(), 300_000)
        .unwrap();
    assert!(r.success);
    // Between T1 and T2 the balances are not 1 ether each, so Bob
    // retrieves his stake.
    let now = s.net.now();
    s.net.advance_time(s.tl.t1 - now + 60);
    let r = s
        .net
        .execute(
            &s.bob,
            s.onchain,
            U256::ZERO,
            s.on.refund_round_two(),
            300_000,
        )
        .unwrap();
    assert!(r.success, "rule 3: refund round two");
    assert_eq!(s.net.balance_of(s.onchain), U256::ZERO);
}

#[test]
fn rule3_refund_round_two_rejected_when_amounts_met() {
    let mut s = rule1_setup();
    for w in [&s.alice, &s.bob] {
        assert!(
            s.net
                .execute(w, s.onchain, ether(1), s.on.deposit(), 300_000)
                .unwrap()
                .success
        );
    }
    let now = s.net.now();
    s.net.advance_time(s.tl.t1 - now + 60);
    let r = s
        .net
        .execute(
            &s.bob,
            s.onchain,
            U256::ZERO,
            s.on.refund_round_two(),
            300_000,
        )
        .unwrap();
    assert!(!r.success, "amountNotMet gates the second refund round");
}

#[test]
fn rule4_loser_reassigns_between_t2_and_t3() {
    let mut s = rule1_setup();
    for w in [&s.alice, &s.bob] {
        assert!(
            s.net
                .execute(w, s.onchain, ether(1), s.on.deposit(), 300_000)
                .unwrap()
                .success
        );
    }
    // Rule 4: after T2 the result is computable; the loser (Alice)
    // calls reassign() before T3.
    assert!(s.secrets.winner_is_bob());
    let now = s.net.now();
    s.net.advance_time(s.tl.t2 - now + 60);
    let bob_before = s.net.balance_of(s.bob.address);
    let r = s
        .net
        .execute(&s.alice, s.onchain, U256::ZERO, s.on.reassign(), 300_000)
        .unwrap();
    assert!(r.success, "rule 4: loser concedes");
    assert_eq!(
        s.net.balance_of(s.bob.address),
        bob_before.wrapping_add(ether(2)),
        "2 ether transferred to the winner"
    );
}

#[test]
fn rule4_reassign_rejected_outside_window() {
    let mut s = rule1_setup();
    for w in [&s.alice, &s.bob] {
        assert!(
            s.net
                .execute(w, s.onchain, ether(1), s.on.deposit(), 300_000)
                .unwrap()
                .success
        );
    }
    // Still before T2: reassign must revert.
    let r = s
        .net
        .execute(&s.alice, s.onchain, U256::ZERO, s.on.reassign(), 300_000)
        .unwrap();
    assert!(!r.success, "reassign before T2 rejected");
    // After T3: also rejected (the dispute path takes over).
    let now = s.net.now();
    s.net.advance_time(s.tl.t3 - now + 60);
    let r = s
        .net
        .execute(&s.alice, s.onchain, U256::ZERO, s.on.reassign(), 300_000)
        .unwrap();
    assert!(!r.success, "reassign after T3 rejected");
}

#[test]
fn rule5_dispute_resolution_end_to_end() {
    let mut s = rule1_setup();
    for w in [&s.alice, &s.bob] {
        assert!(
            s.net
                .execute(w, s.onchain, ether(1), s.on.deposit(), 300_000)
                .unwrap()
                .success
        );
    }
    // The loser never calls reassign(). After T3 the winner resolves.
    let now = s.net.now();
    s.net.advance_time(s.tl.t3 - now + 60);

    // 5a: deployVerifiedInstance with the signed copy.
    let data = s.on.deploy_verified_instance(
        &s.copy.bytecode,
        &s.copy.signatures[0],
        &s.copy.signatures[1],
    );
    let r = s
        .net
        .execute(&s.bob, s.onchain, U256::ZERO, data, 7_900_000)
        .unwrap();
    assert!(
        r.success,
        "rule 5: verified instance created: {:?}",
        r.failure
    );

    // The instance address is recorded and matches the CREATE derivation.
    let instance = Address::from_u256(
        s.net
            .storage_at(s.onchain, U256::from_u64(DEPLOYED_ADDR_SLOT)),
    );
    assert_eq!(instance, contract_address(s.onchain, 1));

    // 5b: returnDisputeResolution at the verified instance.
    let bob_before = s.net.balance_of(s.bob.address);
    let data = s.off.return_dispute_resolution(s.onchain);
    let r = s
        .net
        .execute(&s.bob, instance, U256::ZERO, data, 7_900_000)
        .unwrap();
    assert!(
        r.success,
        "rule 5: dispute resolution enforced: {:?}",
        r.failure
    );
    assert!(
        s.net.balance_of(s.bob.address) > bob_before,
        "the miners enforced the true result"
    );
    assert_eq!(s.net.balance_of(s.onchain), U256::ZERO);
}

#[test]
fn rule5_rejects_unsigned_bytecode() {
    let mut s = rule1_setup();
    for w in [&s.alice, &s.bob] {
        assert!(
            s.net
                .execute(w, s.onchain, ether(1), s.on.deposit(), 300_000)
                .unwrap()
                .success
        );
    }
    let now = s.net.now();
    s.net.advance_time(s.tl.t3 - now + 60);
    // Tamper one byte of the bytecode: ecrecover returns a different
    // address and the require fails.
    let mut tampered = s.copy.bytecode.clone();
    tampered[100] ^= 0x01;
    let data =
        s.on.deploy_verified_instance(&tampered, &s.copy.signatures[0], &s.copy.signatures[1]);
    let r = s
        .net
        .execute(&s.bob, s.onchain, U256::ZERO, data, 7_900_000)
        .unwrap();
    assert!(!r.success, "tampered bytecode must be rejected");
    assert_eq!(
        s.net
            .storage_at(s.onchain, U256::from_u64(DEPLOYED_ADDR_SLOT)),
        U256::ZERO,
        "no instance recorded"
    );
}

#[test]
fn rule5_requires_waiting_for_t3() {
    let mut s = rule1_setup();
    for w in [&s.alice, &s.bob] {
        assert!(
            s.net
                .execute(w, s.onchain, ether(1), s.on.deposit(), 300_000)
                .unwrap()
                .success
        );
    }
    // Between T2 and T3 the voluntary path still has priority; the extra
    // function is time-locked.
    let now = s.net.now();
    s.net.advance_time(s.tl.t2 - now + 60);
    let data = s.on.deploy_verified_instance(
        &s.copy.bytecode,
        &s.copy.signatures[0],
        &s.copy.signatures[1],
    );
    let r = s
        .net
        .execute(&s.bob, s.onchain, U256::ZERO, data, 7_900_000)
        .unwrap();
    assert!(!r.success, "deployVerifiedInstance before T3 rejected");
}
